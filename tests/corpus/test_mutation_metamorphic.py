"""Metamorphic validation of the template-mutation corpus engine.

Properties enforced here, per mutant:

* **label preservation** — rename/workload/reorder/buffer mutations keep the
  race reproducing at the labeled symbols, the human fix validating clean,
  and the category/diagnosis invariant;
* **tracked label flips** — ``sync_inject`` mutants are genuinely race-free
  (build, pass tests, produce no race report and hence no diagnosis), and
  ``sync_remove`` restores the racy sources byte for byte;
* **seed determinism** — the same seed yields byte-identical case sources and
  ids, including across processes with different ``PYTHONHASHSEED`` (asserted
  via :func:`repro.fingerprint.digest`);
* **mix hygiene** — malformed category mixes are rejected in one place with a
  clear :class:`~repro.errors.CorpusError`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.mutate import (
    LABEL_FLIPPING_OPS,
    LABEL_PRESERVING_OPS,
    TemplateMutator,
    all_operators,
    mutate_corpus,
)
from repro.corpus.templates import TEMPLATE_REGISTRY
from repro.corpus.templates.capture_by_ref import make_ctx_select_err_case
from repro.corpus.templates.new_families import (
    make_bulk_wgadd_case,
    make_syncmap_entry_case,
)
from repro.corpus.validate import validate_case, validate_corpus
from repro.diagnosis.categories import RaceCategory
from repro.errors import CorpusError
from repro.fingerprint import digest
from repro.runtime.harness import run_package_tests

_SRC = Path(__file__).resolve().parents[2] / "src"


def _sources(case):
    return [(f.name, f.source) for f in case.package.files]


@pytest.fixture(scope="module")
def mutant_corpus():
    generator = CorpusGenerator(CorpusConfig(seed=4242, noise_level=1))
    return generator.generate_mutant_corpus(36, mutants_per_base=3, flip_fraction=0.25)


class TestMutationOperators:
    def test_unknown_operator_rejected(self):
        case = make_bulk_wgadd_case(41, 0)
        with pytest.raises(CorpusError, match="unknown mutation operator"):
            TemplateMutator(1).mutate(case, ["transmogrify"])

    def test_operator_registry_is_complete(self):
        assert set(all_operators()) == set(LABEL_PRESERVING_OPS) | set(LABEL_FLIPPING_OPS)

    def test_rename_rederives_ground_truth_through_the_map(self):
        base = make_syncmap_entry_case(97, 1)
        mutant = TemplateMutator(3).mutate(base, ["rename_symbols"], salt=5)
        assert mutant.mutations and mutant.mutations[0].startswith("rename_symbols(")
        assert mutant.base_case_id == base.case_id
        # The racy function was renamed, and the new name is what the mutant's
        # ground truth carries — in both the racy and the fixed source.
        assert mutant.racy_function != base.racy_function
        assert f"func (b *" in mutant.racy_source()
        assert mutant.racy_function in mutant.racy_source()
        assert mutant.racy_function in mutant.fixed_source()
        # The old name survives only as a prefix of its replacement.
        assert not re.search(rf"\b{base.racy_function}\b(?![A-Za-z])", mutant.racy_source())
        validation = validate_case(mutant, runs=8)
        assert validation.ok, validation.render()

    def test_vary_workload_touches_only_the_test_file(self):
        base = make_bulk_wgadd_case(41, 1)
        mutant = TemplateMutator(3).mutate(base, ["vary_workload"], salt=2)
        assert any(m.startswith("vary_workload(") for m in mutant.mutations)
        for racy_file, mutant_file in zip(base.package.files, mutant.package.files):
            if racy_file.name.endswith("_test.go"):
                assert racy_file.source != mutant_file.source
            else:
                assert racy_file.source == mutant_file.source
        validation = validate_case(mutant, runs=8)
        assert validation.ok, validation.render()

    def test_reorder_decls_preserves_the_function_set(self):
        base = make_bulk_wgadd_case(55, 1)
        mutant = TemplateMutator(9).mutate(base, ["reorder_decls"], salt=1)
        assert any(m.startswith("reorder_decls(") for m in mutant.mutations)
        assert mutant.racy_source() != base.racy_source()
        validation = validate_case(mutant, runs=8)
        assert validation.ok, validation.render()

    def test_buffer_channels_varies_topology(self):
        base = make_ctx_select_err_case(321, 1)
        mutant = TemplateMutator(7).mutate(base, ["buffer_channels"], salt=1)
        assert any(m.startswith("buffer_channels(") for m in mutant.mutations)
        assert mutant.racy_source() != base.racy_source()
        assert "make(chan " in mutant.racy_source()
        validation = validate_case(mutant, runs=8)
        assert validation.ok, validation.render()

    def test_inject_then_remove_round_trips_to_the_racy_label(self):
        base = make_bulk_wgadd_case(68, 1)
        mutant = TemplateMutator(7).mutate(base, ["sync_inject", "sync_remove"], salt=2)
        assert mutant.expected_race
        assert mutant.mutations == ["sync_inject", "sync_remove"]
        assert [f.source for f in mutant.package.files] == \
            [f.source for f in base.package.files]

    def test_mutant_ids_are_unique_and_trace_their_base(self, mutant_corpus):
        ids = [case.case_id for case in mutant_corpus]
        assert len(set(ids)) == len(ids)
        for case in mutant_corpus:
            if case.base_case_id:
                assert case.case_id.startswith(case.base_case_id + "-m")


class TestLabelFlips:
    def test_sync_injected_mutant_is_race_free_and_undiagnosed(self):
        base = make_syncmap_entry_case(77, 1)
        mutant = TemplateMutator(5).mutate(base, ["rename_symbols", "sync_inject"], salt=9)
        assert not mutant.expected_race
        detection = run_package_tests(mutant.package, runs=10)
        assert detection.built
        # No race report means there is nothing to diagnose: the negative
        # ground truth of a sync-injected mutant.
        assert not detection.reports
        assert not detection.test_failures
        validation = validate_case(mutant, runs=8)
        assert validation.ok, validation.render()

    def test_validator_flags_a_racy_package_labeled_race_free(self):
        base = make_bulk_wgadd_case(90, 1)
        mislabeled = dataclasses.replace(base, expected_race=False, _detection_cache=None)
        validation = validate_case(mislabeled, runs=10)
        assert not validation.ok
        assert any("still races" in problem for problem in validation.problems)

    def test_validator_flags_a_racy_human_fix(self):
        base = make_bulk_wgadd_case(90, 1)
        broken = dataclasses.replace(base, fixed_package=base.package, _detection_cache=None)
        validation = validate_case(broken, runs=10)
        assert not validation.ok
        assert any("human fix" in problem for problem in validation.problems)


class TestMetamorphicCorpus:
    def test_generated_corpus_passes_metamorphic_validation(self, mutant_corpus):
        validation = validate_corpus(mutant_corpus, runs=8)
        assert validation.ok, validation.summary()

    def test_mutants_inherit_category_strategy_and_difficulty(self, mutant_corpus):
        bases = {case.case_id: case for case in mutant_corpus if not case.base_case_id}
        mutants = [case for case in mutant_corpus if case.base_case_id]
        assert mutants, "corpus contains no mutants"
        for mutant in mutants:
            base = bases.get(mutant.base_case_id)
            if base is None:  # base trimmed by the corpus size cap
                continue
            assert mutant.category is base.category
            assert mutant.fix_strategy == base.fix_strategy
            assert mutant.difficulty is base.difficulty

    def test_corpus_mixes_racy_and_race_free_labels(self, mutant_corpus):
        racy = [case for case in mutant_corpus if case.expected_race]
        race_free = [case for case in mutant_corpus if not case.expected_race]
        assert racy and race_free
        for case in race_free:
            assert "sync_inject" in case.mutations

    def test_mutate_corpus_helper_fans_out_per_case(self):
        bases = [make_bulk_wgadd_case(41, 0), make_syncmap_entry_case(55, 0)]
        mutants = mutate_corpus(bases, mutants_per_case=2, seed=11)
        assert len(mutants) == 4
        assert {m.base_case_id for m in mutants} == {b.case_id for b in bases}


class TestSeedDeterminism:
    def test_same_seed_is_byte_identical_in_process(self):
        first = CorpusGenerator(CorpusConfig(seed=777, noise_level=1))
        second = CorpusGenerator(CorpusConfig(seed=777, noise_level=1))
        a = first.generate_mutant_corpus(24)
        b = second.generate_mutant_corpus(24)
        assert [c.case_id for c in a] == [c.case_id for c in b]
        assert [_sources(c) for c in a] == [_sources(c) for c in b]

    def test_different_seed_differs(self):
        a = CorpusGenerator(CorpusConfig(seed=777, noise_level=1)).generate_mutant_corpus(12)
        b = CorpusGenerator(CorpusConfig(seed=778, noise_level=1)).generate_mutant_corpus(12)
        assert [c.case_id for c in a] != [c.case_id for c in b]

    def test_cross_process_determinism_under_varying_hash_seeds(self):
        """Same seed ⇒ byte-identical ids and sources in fresh interpreters.

        ``PYTHONHASHSEED`` varies between the two child processes, so any
        reliance on ``hash()`` ordering or set iteration would break this."""
        script = (
            "import json, sys\n"
            "from repro.corpus.generator import CorpusConfig, CorpusGenerator\n"
            "from repro.fingerprint import digest\n"
            "gen = CorpusGenerator(CorpusConfig(seed=2025, noise_level=1))\n"
            "cases = gen.generate_mutant_corpus(20)\n"
            "payload = {\n"
            "    'ids': [c.case_id for c in cases],\n"
            "    'sources': digest({c.case_id: [[f.name, f.source] for f in c.package.files]\n"
            "                       for c in cases}),\n"
            "    'mutations': [c.mutations for c in cases],\n"
            "}\n"
            "print(json.dumps(payload, sort_keys=True))\n"
        )
        outputs = []
        for hash_seed in ("1", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert len(outputs[0]["ids"]) == 20


class TestMixValidation:
    def test_default_and_paper_mixes_pass(self):
        config = CorpusConfig()
        assert config.validate() is config
        assert config.scaled(0.1).validate() is not None

    def test_rejects_unnormalized_mix(self):
        config = CorpusConfig(eval_mix={RaceCategory.OTHERS: 0.5})
        with pytest.raises(CorpusError, match="sum to 0.5"):
            CorpusGenerator(config)

    def test_rejects_negative_weight(self):
        config = CorpusConfig(
            eval_mix={RaceCategory.OTHERS: 1.2, RaceCategory.LOOP_VARIABLE_CAPTURE: -0.2}
        )
        with pytest.raises(CorpusError, match="negative weight"):
            CorpusGenerator(config)

    def test_rejects_weight_on_category_without_templates(self, monkeypatch):
        monkeypatch.setitem(TEMPLATE_REGISTRY, RaceCategory.OTHERS, [])
        with pytest.raises(CorpusError, match="no template is registered"):
            CorpusConfig().validate()

    def test_db_mix_is_validated_too(self):
        config = CorpusConfig(db_mix={RaceCategory.OTHERS: 2.0})
        with pytest.raises(CorpusError, match="db_mix"):
            config.validate()

    def test_mutant_corpus_rejects_nonpositive_count(self):
        generator = CorpusGenerator(CorpusConfig(seed=1))
        with pytest.raises(CorpusError, match="positive"):
            generator.generate_mutant_corpus(0)
