"""Tests for the corpus templates, generator, and dataset statistics."""

import pytest

from repro.diagnosis.categories import RaceCategory, UnfixedReason, all_categories
from repro.corpus.generator import CorpusConfig, CorpusGenerator, generate_cases
from repro.corpus.ground_truth import Difficulty
from repro.corpus.noise import make_vocabulary, noise_helper_functions, noise_struct
from repro.corpus.templates import TEMPLATE_REGISTRY, UNFIXABLE_TEMPLATES, all_templates
from repro.golang.parser import parse_file


class TestNoise:
    def test_vocabulary_is_deterministic_per_seed(self):
        assert make_vocabulary(7).type_name() == make_vocabulary(7).type_name()
        assert make_vocabulary(7).domain == make_vocabulary(7).domain

    def test_noise_helpers_parse_as_go(self):
        vocab = make_vocabulary(11)
        source = "package p\n\n" + noise_helper_functions(vocab, 3) + "\n\n" + noise_struct(vocab)
        file = parse_file(source)
        assert len(file.func_decls()) == 3
        assert len(file.type_decls()) == 1

    def test_different_seeds_give_different_vocabularies(self):
        names = {make_vocabulary(seed).type_name() for seed in range(12)}
        assert len(names) > 4


class TestTemplates:
    @pytest.mark.parametrize("template", all_templates(), ids=lambda t: t.__name__)
    def test_every_template_races_and_its_ground_truth_is_clean(self, template):
        case = template(321, 1)
        assert case.reproduces(runs=12), f"{case.case_id} did not reproduce"
        assert case.ground_truth_eliminates_race(runs=12), f"{case.case_id} ground truth still races"

    @pytest.mark.parametrize("template", all_templates(), ids=lambda t: t.__name__)
    def test_templates_parse_and_carry_consistent_metadata(self, template):
        case = template(654, 2)
        for file in case.package.files + case.fixed_package.files:
            parse_file(file.source, file.name)
        assert case.package.file(case.racy_file) is not None
        assert case.test_function.startswith("Test")
        assert case.human_fix_loc() > 0

    def test_noise_level_changes_size_but_not_the_race(self):
        template = TEMPLATE_REGISTRY[RaceCategory.CAPTURE_BY_REFERENCE][0]
        small = template(42, 0)
        large = template(42, 3)
        assert large.package.total_lines() > small.package.total_lines()
        assert small.racy_variable == large.racy_variable

    def test_unfixable_templates_have_reasons(self):
        for template in UNFIXABLE_TEMPLATES:
            case = template(77, 1)
            assert case.expected_unfixed_reason is not None
            assert isinstance(case.expected_unfixed_reason, UnfixedReason)

    def test_registry_covers_every_category(self):
        assert set(TEMPLATE_REGISTRY) == set(all_categories())


class TestGenerator:
    def test_generation_is_deterministic(self):
        config = CorpusConfig(db_examples=10, eval_fixable=10, eval_unfixable=4, seed=77)
        first = CorpusGenerator(config).generate()
        second = CorpusGenerator(config).generate()
        assert [c.case_id for c in first.evaluation] == [c.case_id for c in second.evaluation]

    def test_splits_are_disjoint(self):
        dataset = CorpusGenerator(
            CorpusConfig(db_examples=12, eval_fixable=12, eval_unfixable=4, seed=5)
        ).generate()
        db_ids = {c.case_id for c in dataset.db_examples}
        eval_ids = {c.case_id for c in dataset.evaluation}
        assert not (db_ids & eval_ids)

    def test_category_mix_follows_table3(self):
        dataset = CorpusGenerator(
            CorpusConfig(db_examples=40, eval_fixable=41, eval_unfixable=0, seed=9)
        ).generate()
        distribution = dataset.category_distribution(dataset.evaluation)
        assert distribution.fraction(RaceCategory.CAPTURE_BY_REFERENCE) == pytest.approx(0.41, abs=0.06)
        assert distribution.fraction(RaceCategory.MISSING_SYNCHRONIZATION) == pytest.approx(0.26, abs=0.06)

    def test_unfixable_count_matches_config(self):
        dataset = CorpusGenerator(
            CorpusConfig(db_examples=6, eval_fixable=8, eval_unfixable=5, seed=3)
        ).generate()
        assert len(dataset.unfixable_eval_cases()) == 5
        assert len(dataset.fixable_eval_cases()) == 8

    def test_scaled_config(self):
        config = CorpusConfig(db_examples=60, eval_fixable=70, eval_unfixable=30)
        scaled = config.scaled(0.1)
        assert scaled.db_examples == 6 and scaled.eval_fixable == 7

    def test_generate_cases_helper(self):
        cases = generate_cases([RaceCategory.LOOP_VARIABLE_CAPTURE], 2, seed=1)
        assert len(cases) == 2
        assert all(c.category is RaceCategory.LOOP_VARIABLE_CAPTURE for c in cases)

    def test_statistics_reflect_the_corpus(self):
        dataset = CorpusGenerator(
            CorpusConfig(db_examples=6, eval_fixable=6, eval_unfixable=2, seed=13)
        ).generate()
        stats = dataset.statistics()
        assert stats.files > 20
        assert stats.lines > 500
        assert stats.test_files > 0 and stats.product_files > 0
        assert stats.concurrency_files > 0
        rows = stats.as_rows()
        assert rows[0][0] == "Files" and rows[1][0] == "Lines of code"

    def test_difficulty_annotations_exist(self):
        cases = generate_cases(all_categories(), 1, seed=21)
        assert {c.difficulty for c in cases} >= {Difficulty.SIMPLE, Difficulty.COMPLEX}
