"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (offline environments
# fall back to a .pth file or PYTHONPATH; this covers a bare checkout too).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DrFixConfig  # noqa: E402
from repro.corpus.templates.capture_by_ref import make_err_capture_case  # noqa: E402
from repro.corpus.templates.concurrent_map import make_shard_map_case  # noqa: E402
from repro.corpus.templates.loop_var import make_loop_var_case  # noqa: E402
from repro.corpus.templates.missing_sync import make_waitgroup_add_case  # noqa: E402
from repro.runtime.harness import GoFile, GoPackage  # noqa: E402


LISTING1_SOURCE = """
package svc

import "sync"

func someWork() error { return nil }
func task1() error { return nil }
func task2() error { return nil }

func SomeFunction() error {
	err := someWork()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = task1(); err != nil {
			return
		}
	}()
	if err = task2(); err != nil {
		return err
	}
	wg.Wait()
	return err
}
"""

LISTING1_TEST = """
package svc

import "testing"

func TestSomeFunction(t *testing.T) {
	if err := SomeFunction(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
"""

LISTING1_FIXED = LISTING1_SOURCE.replace("if err = task1()", "if err := task1()")


@pytest.fixture
def listing1_package() -> GoPackage:
    """The paper's Listing 1 (write-write race on a captured ``err``)."""
    return GoPackage(
        name="svc",
        files=[GoFile("service.go", LISTING1_SOURCE), GoFile("service_test.go", LISTING1_TEST)],
    )


@pytest.fixture
def listing1_fixed_package(listing1_package: GoPackage) -> GoPackage:
    return listing1_package.replace_file("service.go", LISTING1_FIXED)


@pytest.fixture
def drfix_config() -> DrFixConfig:
    return DrFixConfig(model="gpt-4o", validator_runs=8, detection_runs=10)


@pytest.fixture(scope="session")
def err_capture_case():
    return make_err_capture_case(4242, 1)


@pytest.fixture(scope="session")
def waitgroup_case():
    return make_waitgroup_add_case(4242, 1)


@pytest.fixture(scope="session")
def loop_var_case():
    return make_loop_var_case(4242, 1)


@pytest.fixture(scope="session")
def shard_map_case():
    return make_shard_map_case(4242, 1)
