"""Schedule-class dedup ON ≡ OFF: corpus-wide detection equivalence + units.

Dedup never changes which interleavings a sweep executes (the PCT avoid set
only redraws *exact duplicate* change-point plans, and plan-time signatures
essentially never collide), and in-call memo reuse substitutes reports the
merge would have deduplicated anyway — so unlike the slicing suite, this one
asserts the strongest property available: with saturation disabled, every
observable of :func:`repro.testing.detection_outcome` is **identical** per
(case, seed, policy) between dedup ON and OFF, across every template, the
mutation corpus, and all five scheduler policies.  Saturation early-stop
(opt-in) is covered separately: a saturated repeat sweep must reproduce the
full-budget sweep's verdict, racy-variable set, and bug hashes.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.runtime.harness import DEFAULT_POLICIES, GoTestHarness, run_package_tests
from repro.runtime.schedule_index import (
    SCHEDULE_CLASS_REGISTRY,
    ClassOutcome,
    ScheduleClassIndex,
    ScheduleClassRegistry,
)
from repro.runtime.scheduler import (
    DEFAULT_PCT_MAX_TRIES,
    Scheduler,
    SchedulerPolicy,
    change_signature,
    pct_plan_signature,
    sample_change_points,
)
from repro.testing import detection_outcome, reset_addresses

SEEDS = (0, 11)


def _sweep(cases, mode, seeds, runs):
    reset_addresses()
    return [
        (case.case_id, seed,
         detection_outcome(case.package, seed, "compiled", runs=runs, dedup=mode))
        for case in cases
        for seed in seeds
    ]


def _assert_detection_identical(cases, seeds, runs):
    off_rows = _sweep(cases, "off", seeds, runs)
    on_rows = _sweep(cases, "on", seeds, runs)
    for (case_id, seed, off), (_, _, on) in zip(off_rows, on_rows):
        assert off == on, f"dedup divergence on case={case_id} seed={seed}"


@pytest.fixture(scope="module")
def dataset():
    return CorpusGenerator(CorpusConfig()).generate()


@pytest.fixture
def clean_registry():
    SCHEDULE_CLASS_REGISTRY.clear()
    yield SCHEDULE_CLASS_REGISTRY
    SCHEDULE_CLASS_REGISTRY.clear()


class TestDedupDetectionEquivalence:
    def test_full_corpus_detection_identical(self, dataset):
        """Every template × seed × all five scheduler policies: dedup ON is
        observable-for-observable identical to OFF (verdicts, racy vars, bug
        hashes, failures, output, steps, run counts)."""
        _assert_detection_identical(
            dataset.evaluation + dataset.db_examples, SEEDS, runs=5
        )

    def test_mutant_corpus_detection_identical(self):
        """The mutation corpus (renames, reorders, workload/channel variants,
        sync-injected negatives) under both dedup modes."""
        generator = CorpusGenerator(CorpusConfig(seed=606, noise_level=1))
        cases = generator.generate_mutant_corpus(32, mutants_per_base=4)
        assert len(cases) >= 30
        _assert_detection_identical(cases, (7, 19), runs=3)


class TestDedupAccounting:
    def test_sweep_counts_classes_and_dedups(self, listing1_package, clean_registry):
        result = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        assert result.dedup_enabled
        assert result.runs_attempted == 12
        assert result.runs == 12  # saturation off: full budget always spent
        assert result.runs_skipped == 0
        assert not result.saturation_stopped
        # A fresh index: every executed run either explored a novel class or
        # re-confirmed one explored earlier in the same sweep.
        assert result.runs_deduped == result.runs - result.schedule_classes
        stats = clean_registry.stats()
        assert stats["classes_explored"] == result.schedule_classes
        assert stats["runs_deduped"] == result.runs_deduped
        assert stats["indexes"] == 1
        payload = result.dedup_stats()
        assert payload["enabled"] is True
        assert payload["runs_executed"] == result.runs
        assert payload["runs_deduped"] == result.runs_deduped

    def test_sweep_dedup_rate_is_substantial(self, listing1_package, clean_registry):
        """The motivating statistic: repeated runs collapse into few classes,
        so a meaningful fraction of a full-budget sweep is re-exploration."""
        result = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        assert result.runs_deduped / result.runs >= 0.25

    def test_repeat_invocation_dedups_everything(self, listing1_package, clean_registry):
        first = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        second = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        # Same configuration ⇒ same index ⇒ the repeat sweep replays only
        # known classes — and its observables are identical.
        assert second.runs_deduped == second.runs
        assert second.race_hashes() == first.race_hashes()
        stats = clean_registry.stats()
        assert stats["classes_explored"] == first.schedule_classes
        assert stats["indexes"] == 1

    def test_different_config_uses_a_different_index(self, listing1_package, clean_registry):
        run_package_tests(listing1_package, runs=6, seed=3, dedup="on")
        run_package_tests(listing1_package, runs=6, seed=4, dedup="on")
        assert clean_registry.stats()["indexes"] == 2

    def test_dedup_off_leaves_registry_untouched(self, listing1_package, clean_registry):
        result = run_package_tests(listing1_package, runs=6, seed=3, dedup="off")
        assert not result.dedup_enabled
        assert result.runs_deduped == 0
        stats = clean_registry.stats()
        assert stats["indexes"] == 0
        assert stats["classes_explored"] == 0


class TestSaturationEarlyStop:
    def test_saturated_repeat_sweep_stops_early_with_equal_verdict(
        self, listing1_package, clean_registry
    ):
        full = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        saturated = run_package_tests(
            listing1_package, runs=12, seed=3, dedup="on", saturation_after=2
        )
        assert saturated.saturation_stopped
        assert saturated.runs < saturated.runs_attempted
        assert saturated.runs_skipped == saturated.runs_attempted - saturated.runs
        # The verdict covers the whole explored space via the memoized
        # class outcomes, not just the pre-saturation prefix.
        assert bool(saturated.reports) == bool(full.reports)
        assert set(saturated.race_hashes()) == set(full.race_hashes())
        assert {r.variable for r in saturated.reports} == {
            r.variable for r in full.reports
        }
        assert clean_registry.stats()["saturation_stops"] == 1
        assert clean_registry.stats()["runs_skipped"] == saturated.runs_skipped

    def test_saturation_respects_the_policy_floor(self, listing1_package, clean_registry):
        run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        saturated = run_package_tests(
            listing1_package, runs=12, seed=3, dedup="on", saturation_after=1
        )
        # Never saturate before every policy in the rotation had a run.
        assert saturated.runs >= len(DEFAULT_POLICIES)

    def test_saturation_disabled_by_default(self, listing1_package, clean_registry):
        run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        repeat = run_package_tests(listing1_package, runs=12, seed=3, dedup="on")
        assert repeat.runs == repeat.runs_attempted == 12
        assert not repeat.saturation_stopped


class TestScheduleClassIndex:
    def test_record_is_first_writer_wins(self):
        index = ScheduleClassIndex()
        first = ClassOutcome(steps=1)
        assert index.record(42, first) is True
        assert index.record(42, ClassOutcome(steps=2)) is False
        assert index.lookup(42) is first
        assert len(index) == 1

    def test_lru_bound(self):
        index = ScheduleClassIndex(max_classes=2)
        index.record(1, ClassOutcome())
        index.record(2, ClassOutcome())
        index.record(3, ClassOutcome())
        assert len(index) == 2
        assert index.lookup(1) is None
        assert index.class_hashes() == [2, 3]

    def test_observe_prefixes_counts_novelty(self):
        index = ScheduleClassIndex()
        assert index.observe_prefixes((10, 11, 12)) == 3
        assert index.observe_prefixes((11, 12, 13)) == 1
        assert index.observe_prefixes((10, 11)) == 0

    def test_pct_signatures(self):
        index = ScheduleClassIndex()
        index.note_pct_signature(7)
        index.note_pct_signature(7)
        assert index.pct_signatures() == frozenset({7})

    def test_registry_shares_indexes_by_key_and_bounds_capacity(self):
        registry = ScheduleClassRegistry(capacity=2)
        a = registry.get(("k1",))
        assert registry.get(("k1",)) is a
        registry.get(("k2",))
        registry.get(("k3",))
        assert registry.stats()["indexes"] == 2
        assert registry.get(("k1",)) is not a  # evicted and rebuilt

    def test_registry_counters_and_clear(self):
        registry = ScheduleClassRegistry()
        registry.note_sweep(novel_classes=3, runs_deduped=2, runs_skipped=1,
                            prefix_rejections=4, saturated=True)
        stats = registry.stats()
        assert stats["classes_explored"] == 3
        assert stats["runs_deduped"] == 2
        assert stats["runs_skipped"] == 1
        assert stats["prefix_rejections"] == 4
        assert stats["saturation_stops"] == 1
        registry.clear()
        assert registry.stats()["classes_explored"] == 0
        assert registry.stats()["indexes"] == 0


class TestPCTNoveltyBiasing:
    def test_empty_avoid_set_is_bit_identical_to_the_unbiased_draw(self):
        reference = frozenset(random.Random(99).sample(range(1, 1000), 2))
        offsets, rejections = sample_change_points(random.Random(99), 3, 1000)
        assert offsets == reference
        assert rejections == 0

    def test_rejection_redraws_away_from_avoided_signatures(self):
        avoided, _ = sample_change_points(random.Random(99), 3, 1000)
        offsets, rejections = sample_change_points(
            random.Random(99), 3, 1000, avoid=frozenset({change_signature(avoided)})
        )
        assert rejections >= 1
        assert change_signature(offsets) != change_signature(avoided)

    def test_rejection_is_bounded(self):
        # Avoid every draw the RNG will make: the sampler gives up after
        # max_tries instead of spinning.
        probe = random.Random(99)
        signatures = frozenset(
            change_signature(probe.sample(range(1, 1000), 2))
            for _ in range(DEFAULT_PCT_MAX_TRIES + 1)
        )
        offsets, rejections = sample_change_points(
            random.Random(99), 3, 1000, avoid=signatures
        )
        assert rejections == DEFAULT_PCT_MAX_TRIES
        assert change_signature(offsets) in signatures  # degraded, not stuck

    def test_plan_signature_matches_the_scheduler_draw(self):
        for seed in (0, 7, 123456):
            scheduler = Scheduler(seed=seed, policy=SchedulerPolicy.PCT)
            planned, _ = pct_plan_signature(seed)
            assert planned == change_signature(scheduler._pct_change_points)

    def test_scheduler_counts_rejections(self):
        signature, _ = pct_plan_signature(5)
        scheduler = Scheduler(seed=5, policy=SchedulerPolicy.PCT,
                              avoid_signatures=frozenset({signature}))
        assert scheduler.stats.pct_rejections >= 1
        assert change_signature(scheduler._pct_change_points) != signature

    def test_harness_plan_accumulates_pct_avoid_sets(self, listing1_package):
        harness = GoTestHarness(listing1_package, runs=12, seed=3, dedup=True)
        specs, signatures = harness._plan_specs()
        assert [spec[:2] for spec in specs] == harness.plan_runs()
        pct_specs = [s for s in specs if s[1] is SchedulerPolicy.PCT]
        assert len(signatures) == len(pct_specs)
        assert pct_specs[0][2] == frozenset()
        # Each later PCT run avoids every signature planned before it.
        for position, spec in enumerate(pct_specs[1:], start=1):
            assert spec[2] == frozenset(signatures[:position])
        # Non-PCT runs carry no avoid set.
        for spec in specs:
            if spec[1] is not SchedulerPolicy.PCT:
                assert spec[2] == frozenset()

    def test_plan_is_unbiased_with_dedup_off(self, listing1_package):
        harness = GoTestHarness(listing1_package, runs=12, seed=3, dedup=False)
        specs, signatures = harness._plan_specs()
        assert signatures == []
        assert all(spec[2] == frozenset() for spec in specs)


class TestDedupSelection:
    def test_resolve_dedup_defaults_on(self, monkeypatch):
        from repro.execution import resolve_dedup

        monkeypatch.delenv("DRFIX_DEDUP", raising=False)
        assert resolve_dedup() is True
        assert resolve_dedup("off") is False
        assert resolve_dedup("on") is True
        assert resolve_dedup(False) is False
        assert resolve_dedup(True) is True

    def test_resolve_dedup_env_var(self, monkeypatch):
        from repro.execution import DEDUP_ENV_VAR, resolve_dedup

        monkeypatch.setenv(DEDUP_ENV_VAR, "off")
        assert resolve_dedup() is False
        monkeypatch.setenv(DEDUP_ENV_VAR, "on")
        assert resolve_dedup() is True

    def test_resolve_dedup_rejects_unknown(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.execution import DEDUP_ENV_VAR, resolve_dedup

        with pytest.raises(ConfigError, match=r"\(expected on or off\)"):
            resolve_dedup("maybe")
        monkeypatch.setenv(DEDUP_ENV_VAR, "maybe")
        with pytest.raises(ConfigError, match=r"\(expected on or off\)"):
            resolve_dedup()

    def test_config_dedup_validation_matches_resolver_message(self):
        from repro.core.config import DrFixConfig
        from repro.errors import ConfigError
        from repro.execution import resolve_dedup

        assert DrFixConfig(dedup="off").validated().dedup == "off"
        assert DrFixConfig().with_dedup("on").validated().dedup == "on"
        with pytest.raises(ConfigError) as config_err:
            DrFixConfig(dedup="maybe").validated()
        with pytest.raises(ConfigError) as resolver_err:
            resolve_dedup("maybe")
        assert str(config_err.value) == str(resolver_err.value)

    def test_config_saturation_validation(self):
        from repro.core.config import DrFixConfig
        from repro.errors import ConfigError

        assert DrFixConfig().with_saturation(3).validated().saturation_after == 3
        with pytest.raises(ConfigError, match="saturation_after"):
            DrFixConfig(saturation_after=-1).validated()


class TestMetricsExport:
    def test_service_metrics_snapshot_includes_dedup(self, listing1_package, clean_registry):
        from repro.service.metrics import MetricsRecorder

        run_package_tests(listing1_package, runs=6, seed=3, dedup="on")
        snapshot = MetricsRecorder().snapshot()
        for key in ("classes_explored", "runs_deduped", "runs_skipped",
                    "prefix_rejections", "saturation_stops", "indexes"):
            assert key in snapshot.dedup
        assert snapshot.dedup["classes_explored"] >= 1
        assert snapshot.as_dict()["dedup"] == snapshot.dedup
