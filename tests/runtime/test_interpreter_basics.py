"""Tests for the sequential behaviour of the interpreter."""

import pytest

from repro.golang.parser import parse_file
from repro.runtime.interpreter import Interpreter
from repro.runtime.values import ErrorValue


def run_main(body: str, funcs: str = "", imports: str = '"fmt"') -> tuple:
    """Run ``func main`` with the given body; returns (result, output)."""
    source = f"""
package main

import {imports}

{funcs}

func main() {{
{body}
}}
"""
    interp = Interpreter([parse_file(source, "main.go")])
    result = interp.run_func("main")
    assert not result.failures, result.failures
    return result, interp


def run_expr_program(source: str, entry: str = "main"):
    interp = Interpreter([parse_file(source, "main.go")])
    return interp.run_func(entry), interp


class TestExpressions:
    def test_arithmetic_and_printing(self):
        result, _ = run_main('\tfmt.Println(2+3*4, 10/3, 10%3, 2 == 2)')
        assert result.output == ["14 3 1 true"]

    def test_string_concatenation_and_sprintf(self):
        result, _ = run_main('\tfmt.Println(fmt.Sprintf("%s-%d", "order", 7))')
        assert result.output == ["order-7"]

    def test_boolean_short_circuit(self):
        source = """
package main

import "fmt"

func boom() bool {
	panic("should not be called")
}

func main() {
	if false && boom() {
		fmt.Println("impossible")
	}
	if true || boom() {
		fmt.Println("ok")
	}
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["ok"] and not result.failures

    def test_division_by_zero_panics(self):
        source = """
package main

func main() {
	x := 0
	_ = 5 / x
}
"""
        result, _ = run_expr_program(source)
        assert result.failures and "divide by zero" in result.failures[0]


class TestControlFlow:
    def test_for_loop_and_if(self):
        result, _ = run_main(
            "\ttotal := 0\n\tfor i := 0; i < 5; i++ {\n\t\tif i%2 == 0 {\n\t\t\ttotal += i\n\t\t}\n\t}\n\tfmt.Println(total)"
        )
        assert result.output == ["6"]

    def test_range_over_slice_and_map(self):
        result, _ = run_main(
            '\titems := []int{1, 2, 3}\n\tsum := 0\n\tfor _, v := range items {\n\t\tsum += v\n\t}\n'
            '\tm := map[string]int{"a": 1, "b": 2}\n\tkeys := 0\n\tfor range m {\n\t\tkeys++\n\t}\n'
            "\tfmt.Println(sum, keys)"
        )
        assert result.output == ["6 2"]

    def test_switch_statement(self):
        result, _ = run_main(
            '\tn := 2\n\tswitch n {\n\tcase 1:\n\t\tfmt.Println("one")\n\tcase 2:\n\t\tfmt.Println("two")\n\tdefault:\n\t\tfmt.Println("many")\n\t}'
        )
        assert result.output == ["two"]

    def test_labeled_break(self):
        result, _ = run_main(
            "\tcount := 0\nLoop:\n\tfor i := 0; i < 3; i++ {\n\t\tfor j := 0; j < 3; j++ {\n"
            "\t\t\tcount++\n\t\t\tif j == 1 {\n\t\t\t\tbreak Loop\n\t\t\t}\n\t\t}\n\t}\n\tfmt.Println(count)"
        )
        assert result.output == ["2"]

    def test_defer_runs_after_return_in_lifo_order(self):
        source = """
package main

import "fmt"

func work() {
	defer fmt.Println("first deferred")
	defer fmt.Println("second deferred")
	fmt.Println("body")
}

func main() {
	work()
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["body", "second deferred", "first deferred"]


class TestFunctionsAndStructs:
    def test_multiple_return_values(self):
        source = """
package main

import "fmt"

func divmod(a int, b int) (int, int) {
	return a / b, a % b
}

func main() {
	q, r := divmod(17, 5)
	fmt.Println(q, r)
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["3 2"]

    def test_named_results_and_bare_return(self):
        source = """
package main

import "fmt"

func count(items []int) (total int) {
	for _, v := range items {
		total += v
	}
	return
}

func main() {
	fmt.Println(count([]int{4, 5}))
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["9"]

    def test_methods_with_pointer_receiver_mutate_state(self):
        source = """
package main

import "fmt"

type Counter struct {
	n int
}

func (c *Counter) Add(delta int) {
	c.n = c.n + delta
}

func (c *Counter) Value() int {
	return c.n
}

func main() {
	c := &Counter{}
	c.Add(3)
	c.Add(4)
	fmt.Println(c.Value())
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["7"]

    def test_struct_assignment_copies_value(self):
        source = """
package main

import "fmt"

type Config struct {
	Limit int
}

func main() {
	a := Config{Limit: 1}
	b := a
	b.Limit = 99
	fmt.Println(a.Limit, b.Limit)
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["1 99"]

    def test_pointer_sharing_and_dereference_copy(self):
        source = """
package main

import "fmt"

type Config struct {
	Limit int
}

func main() {
	shared := &Config{Limit: 1}
	alias := shared
	alias.Limit = 5
	copied := *shared
	copied.Limit = 9
	fmt.Println(shared.Limit, copied.Limit)
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["5 9"]

    def test_closures_capture_by_reference(self):
        source = """
package main

import "fmt"

func main() {
	count := 0
	increment := func() {
		count = count + 1
	}
	increment()
	increment()
	fmt.Println(count)
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["2"]

    def test_errors_and_errorf(self):
        source = """
package main

import (
	"errors"
	"fmt"
)

func fail(code int) error {
	if code == 0 {
		return nil
	}
	return fmt.Errorf("code %d: %w", code, errors.New("boom"))
}

func main() {
	if err := fail(3); err != nil {
		fmt.Println(err)
	}
	if err := fail(0); err == nil {
		fmt.Println("nil error")
	}
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["code 3: boom", "nil error"]

    def test_variadic_function(self):
        source = """
package main

import "fmt"

func sum(values ...int) int {
	total := 0
	for _, v := range values {
		total += v
	}
	return total
}

func main() {
	fmt.Println(sum(1, 2, 3), sum())
}
"""
        result, _ = run_expr_program(source)
        assert result.output == ["6 0"]


class TestBuiltins:
    def test_append_len_cap_and_index(self):
        result, _ = run_main(
            "\ts := []int{1}\n\ts = append(s, 2, 3)\n\tfmt.Println(len(s), s[2])"
        )
        assert result.output == ["3 3"]

    def test_map_operations_and_comma_ok(self):
        result, _ = run_main(
            '\tm := map[string]int{}\n\tm["a"] = 1\n\tv, ok := m["a"]\n\t_, missing := m["zzz"]\n'
            '\tdelete(m, "a")\n\tfmt.Println(v, ok, missing, len(m))'
        )
        assert result.output == ["1 true false 0"]

    def test_make_slice_and_copy(self):
        result, _ = run_main(
            "\tdst := make([]int, 2)\n\tsrc := []int{7, 8, 9}\n\tn := copy(dst, src)\n\tfmt.Println(n, dst[0], dst[1])"
        )
        assert result.output == ["2 7 8"]

    def test_index_out_of_range_panics(self):
        source = """
package main

func main() {
	s := []int{1}
	_ = s[5]
}
"""
        result, _ = run_expr_program(source)
        assert result.failures and "index out of range" in result.failures[0]

    def test_nil_map_write_panics(self):
        source = """
package main

func main() {
	var m map[string]int
	m["k"] = 1
}
"""
        result, _ = run_expr_program(source)
        assert result.failures and "nil map" in result.failures[0]

    def test_explicit_panic_is_reported(self):
        source = """
package main

func main() {
	panic("kaboom")
}
"""
        result, _ = run_expr_program(source)
        assert result.failures and "kaboom" in result.failures[0]

    def test_type_conversions(self):
        result, _ = run_main("\tfmt.Println(int64(3), float64(2), string(65))")
        assert result.output == ["3 2 A"]

    def test_undefined_identifier_is_an_error(self):
        source = """
package main

func main() {
	mystery()
}
"""
        result, _ = run_expr_program(source)
        assert result.failures and "undefined" in result.failures[0]
