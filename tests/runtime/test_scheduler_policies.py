"""Tests for scheduler policies (incl. PCT), per-run seed derivation, the
adaptive run-count bound, and the parallel go-test harness."""

from __future__ import annotations

import pytest

from repro.runtime.goroutine import Goroutine, STEP
from repro.runtime.harness import DEFAULT_POLICIES, GoFile, GoPackage, GoTestHarness, run_package_tests
from repro.runtime.scheduler import (
    Scheduler,
    SchedulerPolicy,
    derive_run_seed,
    runs_for_detection_probability,
)

ALL_POLICIES = list(SchedulerPolicy)


def run_fanout(policy: SchedulerPolicy, seed: int, goroutines: int = 3,
               steps: int = 25, **scheduler_kwargs):
    """Drive N plain step-yielding goroutines; return the execution order."""
    scheduler = Scheduler(seed=seed, policy=policy, **scheduler_kwargs)
    order: list[str] = []

    def body(tag: str):
        for _ in range(steps):
            order.append(tag)
            yield STEP

    main = None
    for index in range(goroutines):
        goroutine = Goroutine(gid=scheduler.new_gid(), name=f"g{index}")
        goroutine.generator = body(f"g{index}")
        scheduler.register(goroutine)
        if main is None:
            main = goroutine
    scheduler.run(main)
    return order, scheduler


class TestPolicyDeterminismAndFairness:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_same_seed_replays_the_same_schedule(self, policy):
        first, _ = run_fanout(policy, seed=7)
        second, _ = run_fanout(policy, seed=7)
        assert first == second

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_different_seeds_explore_different_schedules(self, policy):
        if policy is SchedulerPolicy.ROUND_ROBIN:
            pytest.skip("round-robin is seed-independent by design")
        schedules = {tuple(run_fanout(policy, seed=s)[0]) for s in range(12)}
        assert len(schedules) > 1

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_goroutine_runs_to_completion(self, policy):
        order, _ = run_fanout(policy, seed=3, goroutines=4, steps=20)
        counts = {tag: order.count(tag) for tag in set(order)}
        assert counts == {f"g{i}": 20 for i in range(4)}

    @pytest.mark.parametrize(
        "policy", [SchedulerPolicy.RANDOM, SchedulerPolicy.PCT]
    )
    def test_randomized_policies_vary_the_first_scheduled_goroutine(self, policy):
        first_picks = {run_fanout(policy, seed=s)[0][0] for s in range(40)}
        assert first_picks == {"g0", "g1", "g2"}


class TestPCT:
    def test_change_points_are_sampled_within_the_horizon(self):
        scheduler = Scheduler(policy=SchedulerPolicy.PCT, seed=5,
                              pct_depth=4, pct_horizon=50)
        assert len(scheduler._pct_change_points) == 3
        assert all(0 < p < 50 for p in scheduler._pct_change_points)
        # Non-PCT schedulers carry no change points.
        assert Scheduler(policy=SchedulerPolicy.RANDOM, seed=5)._pct_change_points == frozenset()

    def test_change_points_demote_the_running_goroutine(self):
        _, scheduler = run_fanout(
            SchedulerPolicy.PCT, seed=11, goroutines=3, steps=30,
            pct_depth=3, pct_horizon=40,
        )
        # 90 steps span two full 40-step windows, so at least four change
        # points fired (two per window) and demoted priorities into the
        # strictly negative low band.
        assert scheduler._pct_low <= -4.0
        demoted = [p for p in scheduler._pct_priorities.values() if p < 1.0]
        assert demoted and all(p < 0 for p in demoted)

    def test_change_points_are_resampled_past_the_horizon(self):
        # A run much longer than the window keeps demoting: preemptions are
        # reachable throughout the run, not only in the first window.
        _, scheduler = run_fanout(
            SchedulerPolicy.PCT, seed=4, goroutines=2, steps=200,
            pct_depth=2, pct_horizon=50,
        )
        assert scheduler._pct_window_start >= 300  # 400 steps, window 50
        assert scheduler._pct_low <= -6.0

    def test_priorities_are_distinct_and_highest_runs(self):
        _, scheduler = run_fanout(SchedulerPolicy.PCT, seed=2)
        priorities = list(scheduler._pct_priorities.values())
        assert len(set(priorities)) == len(priorities)

    def test_pct_detects_the_listing1_race(self, listing1_package):
        harness = GoTestHarness(
            listing1_package, runs=8, policies=[SchedulerPolicy.PCT]
        )
        assert harness.run().reports


class TestRunSeedDerivation:
    def test_regression_base_seeds_differing_by_7919_diverge(self):
        # The old derivation (base + index * 7919) made harness(seed=0)'s run 1
        # replay harness(seed=7919)'s run 0 exactly.
        policy = SchedulerPolicy.RANDOM
        assert derive_run_seed(0, 1, policy) != derive_run_seed(7919, 0, policy)

    def test_pure_function_of_all_inputs(self):
        policy = SchedulerPolicy.RANDOM
        assert derive_run_seed(1, 2, policy) == derive_run_seed(1, 2, policy)
        assert derive_run_seed(1, 2, policy) != derive_run_seed(2, 2, policy)
        assert derive_run_seed(1, 2, policy) != derive_run_seed(1, 3, policy)
        assert derive_run_seed(1, 2, policy) != derive_run_seed(1, 2, SchedulerPolicy.PCT)

    def test_harness_plan_uses_hashed_seeds(self, listing1_package):
        plan = GoTestHarness(listing1_package, runs=4, seed=9).plan_runs()
        assert len(plan) == 4
        assert [policy for _, policy in plan] == list(DEFAULT_POLICIES)
        assert len({seed for seed, _ in plan}) == 4


class TestAdaptiveRunBound:
    def test_bound_matches_the_closed_form(self):
        # 1 - (1 - 0.5)^r >= 0.999  =>  r >= 10
        assert runs_for_detection_probability(0.5, 0.999, 20) == 10
        assert runs_for_detection_probability(0.55, 0.999, 10) == 9

    def test_bound_is_clamped_and_degenerate_cases(self):
        assert runs_for_detection_probability(0.1, 0.9999, 10) == 10  # clamp to max
        assert runs_for_detection_probability(1.0, 0.999, 10) == 1
        assert runs_for_detection_probability(0.0, 0.999, 10) == 10
        assert runs_for_detection_probability(0.5, 0.999, 1) == 1


class TestParallelHarness:
    def _signature(self, result):
        return (
            result.runs,
            result.tests_discovered,
            [r.bug_hash() for r in result.reports],
            result.test_failures,
            result.output,
            result.output_lines_truncated,
        )

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_run_equals_serial(self, listing1_package, executor):
        serial = run_package_tests(listing1_package, runs=8, jobs=1)
        parallel = run_package_tests(listing1_package, runs=8, jobs=4, executor=executor)
        assert self._signature(serial) == self._signature(parallel)
        assert serial.reports  # the race is found either way

    def test_parallel_clean_package_equals_serial(self, listing1_fixed_package):
        serial = run_package_tests(listing1_fixed_package, runs=8, jobs=1)
        parallel = run_package_tests(listing1_fixed_package, runs=8, jobs=4,
                                     executor="thread")
        assert self._signature(serial) == self._signature(parallel)
        assert parallel.passed

    @pytest.mark.parametrize("jobs,executor", [(1, None), (4, "thread")])
    def test_stop_on_first_race_returns_the_serial_prefix(self, listing1_package,
                                                          jobs, executor):
        full = run_package_tests(listing1_package, runs=12, jobs=1)
        early = run_package_tests(listing1_package, runs=12, jobs=jobs,
                                  executor=executor, stop_on_first_race=True)
        assert early.reports
        assert early.runs <= full.runs
        # The early-exit prefix is deterministic at any worker count.
        serial_early = run_package_tests(listing1_package, runs=12, jobs=1,
                                         stop_on_first_race=True)
        assert self._signature(early) == self._signature(serial_early)

    def test_output_is_capped_per_run_with_marker(self):
        package = GoPackage(
            name="p",
            files=[
                GoFile(
                    "loud_test.go",
                    'package p\n\nimport "testing"\n\n'
                    "func TestLoud(t *testing.T) {\n"
                    '\tt.Logf("one")\n\tt.Logf("two")\n\tt.Logf("three")\n}\n',
                ),
            ],
        )
        result = run_package_tests(package, runs=2, max_output_lines=1)
        assert result.output_lines_truncated == 4  # 2 dropped lines x 2 runs
        markers = [line for line in result.output if "truncated" in line]
        assert markers == ["... [2 output line(s) truncated]"] * 2
        uncapped = run_package_tests(package, runs=2)
        assert uncapped.output_lines_truncated == 0
        assert len(uncapped.output) == 6
