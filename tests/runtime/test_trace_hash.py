"""Unit tests for the HB-trace schedule-class hash itself.

The hash is a Mazurkiewicz-trace digest (see
:class:`repro.runtime.race_detector.RaceDetector`): every sync event is
appended order-sensitively to the rolling chain of each participant it
touches, and the class hash combines the per-chain hashes commutatively.
These tests pin the three properties the dedup layer depends on:

* **commutation** — interleavings that merely swap *independent* events
  (disjoint goroutines, disjoint sync objects) hash to the same class;
* **order sensitivity** — reordering two events on the *same* chain (the
  reorderings that change happens-before) changes the class;
* **process stability** — the hash is pure FNV-1a arithmetic, byte-identical
  across processes whatever ``PYTHONHASHSEED`` they inherit.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.runtime.race_detector import _FNV_OFFSET, RaceDetector
from repro.runtime.vector_clock import SyncVar

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _detector_with_forks() -> RaceDetector:
    detector = RaceDetector()
    detector.register_goroutine(0)
    detector.on_fork(0, 1)
    detector.on_fork(0, 2)
    return detector


class TestCommutingPermutations:
    def test_independent_sync_events_commute(self):
        """Swapping releases by disjoint goroutines on disjoint sync objects
        leaves the class hash unchanged — the two interleavings established
        the same happens-before structure."""
        a = _detector_with_forks()
        a._trace_sync(3, 1, 10)
        a._trace_sync(3, 2, 20)

        b = _detector_with_forks()
        b._trace_sync(3, 2, 20)
        b._trace_sync(3, 1, 10)

        assert a.schedule_class_hash == b.schedule_class_hash

    def test_independent_goroutine_runs_commute_via_public_api(self):
        """Same property through on_release/on_acquire with real sync vars.

        Sync ids are numbered by first appearance, so both detectors pin the
        objects in allocation order first (as a real program does — sync
        objects are created in program order, before the goroutines that use
        them race ahead of one another)."""
        lock_a, lock_b = SyncVar(), SyncVar()

        first = _detector_with_forks()
        first._sync_id(lock_a), first._sync_id(lock_b)
        first.on_release(1, lock_a)
        first.on_acquire(1, lock_a)
        first.on_release(2, lock_b)
        first.on_acquire(2, lock_b)

        second = _detector_with_forks()
        second._sync_id(lock_a), second._sync_id(lock_b)
        second.on_release(2, lock_b)
        second.on_acquire(2, lock_b)
        second.on_release(1, lock_a)
        second.on_acquire(1, lock_a)

        assert first.schedule_class_hash == second.schedule_class_hash

    def test_interleaved_but_chain_equal_orders_commute(self):
        """A full interleaving permutation that preserves every per-chain
        order (t1's events stay ordered, t2's events stay ordered, the two
        never share a chain) is the same class."""
        a = _detector_with_forks()
        for event in [(1, 10), (1, 10), (2, 20), (2, 20)]:
            a._trace_sync(3, *event)
        b = _detector_with_forks()
        for event in [(1, 10), (2, 20), (1, 10), (2, 20)]:
            b._trace_sync(3, *event)
        assert a.schedule_class_hash == b.schedule_class_hash


class TestOrderSensitivity:
    def test_reordered_events_on_shared_sync_differ(self):
        """Two goroutines releasing the *same* sync object in opposite orders
        are different happens-before structures — different classes."""
        a = _detector_with_forks()
        a._trace_sync(3, 1, 10)
        a._trace_sync(3, 2, 10)

        b = _detector_with_forks()
        b._trace_sync(3, 2, 10)
        b._trace_sync(3, 1, 10)

        assert a.schedule_class_hash != b.schedule_class_hash

    def test_reordered_events_on_same_goroutine_differ(self):
        """One goroutine touching two sync objects in opposite orders reorders
        its own chain — different classes."""
        a = _detector_with_forks()
        a._trace_sync(3, 1, 10)
        a._trace_sync(3, 1, 20)

        b = _detector_with_forks()
        b._trace_sync(3, 1, 20)
        b._trace_sync(3, 1, 10)

        assert a.schedule_class_hash != b.schedule_class_hash

    def test_release_and_acquire_are_distinct_events(self):
        a = _detector_with_forks()
        a._trace_sync(3, 1, 10)
        b = _detector_with_forks()
        b._trace_sync(4, 1, 10)
        assert a.schedule_class_hash != b.schedule_class_hash

    def test_thread_and_sync_chains_do_not_collide(self):
        """Chain tags keep a thread chain and a sync chain with the same
        numeric key from contributing identically."""
        a = RaceDetector()
        a._fold_chain(a._thread_chains, 5, 1, 3, 1, 1)
        b = RaceDetector()
        b._fold_chain(b._sync_chains, 6, 1, 3, 1, 1)
        assert a._combined_hash != b._combined_hash


class TestPrefixHashes:
    def test_prefixes_snapshot_at_power_of_two_depths(self):
        detector = _detector_with_forks()  # 2 events so far
        for _ in range(6):
            detector._trace_sync(3, 1, 10)  # 8 events total
        assert len(detector.prefix_hashes) == 4  # depths 1, 2, 4, 8
        assert len(set(detector.prefix_hashes)) == 4

    def test_reset_restores_empty_state(self):
        detector = _detector_with_forks()
        detector._trace_sync(3, 1, 10)
        assert detector.schedule_class_hash != _FNV_OFFSET
        detector._trace_access(9, 1, 0xC000000010)
        detector.reset()
        assert detector.schedule_class_hash == _FNV_OFFSET
        assert detector.prefix_hashes == ()
        assert detector._event_count == 0
        assert detector._thread_chains == {}
        assert detector._sync_chains == {}
        assert detector._var_chains == {}
        assert detector._var_ids == {}


class TestAccessChains:
    """Plain accesses are part of the dependence alphabet: per-cell order is
    class-relevant (it decides which pairs FastTrack reports), cross-cell
    order is not."""

    def test_accesses_to_distinct_cells_commute(self):
        a = _detector_with_forks()
        a._trace_access(10, 1, 0xA0)
        a._trace_access(10, 2, 0xB0)
        b = _detector_with_forks()
        b._trace_access(10, 2, 0xB0)
        b._trace_access(10, 1, 0xA0)
        # Cells are numbered by first appearance, so pin the order first.
        c = _detector_with_forks()
        c._var_ids[0xA0] = 0
        c._var_ids[0xB0] = 1
        c._trace_access(10, 2, 0xB0)
        c._trace_access(10, 1, 0xA0)
        d = _detector_with_forks()
        d._var_ids[0xA0] = 0
        d._var_ids[0xB0] = 1
        d._trace_access(10, 1, 0xA0)
        d._trace_access(10, 2, 0xB0)
        assert c.schedule_class_hash == d.schedule_class_hash

    def test_conflicting_access_reorder_changes_the_class(self):
        a = _detector_with_forks()
        a._trace_access(10, 1, 0xA0)
        a._trace_access(9, 2, 0xA0)
        b = _detector_with_forks()
        b._trace_access(9, 2, 0xA0)
        b._trace_access(10, 1, 0xA0)
        assert a.schedule_class_hash != b.schedule_class_hash

    def test_read_and_write_are_distinct_access_events(self):
        a = _detector_with_forks()
        a._trace_access(9, 1, 0xA0)
        b = _detector_with_forks()
        b._trace_access(10, 1, 0xA0)
        assert a.schedule_class_hash != b.schedule_class_hash

    def test_cell_numbering_is_by_first_access(self):
        """Two runs of the same interleaving see different raw addresses
        (the allocator counter is process-global); appearance-order ids make
        them hash identically anyway."""
        a = _detector_with_forks()
        a._trace_access(10, 1, 0xC000000000)
        a._trace_access(9, 2, 0xC000000000)
        b = _detector_with_forks()
        b._trace_access(10, 1, 0xC000005550)
        b._trace_access(9, 2, 0xC000005550)
        assert a.schedule_class_hash == b.schedule_class_hash


_REPLAY_SCRIPT = """
from repro.runtime.race_detector import RaceDetector

detector = RaceDetector()
detector.register_goroutine(0)
detector.on_fork(0, 1)
detector.on_fork(0, 2)
for kind, tid, sid in [(3, 1, 0), (4, 2, 0), (3, 2, 1), (4, 1, 1), (3, 1, 0)]:
    detector._trace_sync(kind, tid, sid)
detector.on_join(0, 1)
detector.on_join(0, 2)
print(detector.schedule_class_hash)
print(",".join(str(p) for p in detector.prefix_hashes))
"""


class TestProcessStability:
    def test_hash_is_identical_across_hash_seeds(self):
        """The digest is FNV-1a arithmetic, not ``hash()`` — two processes
        with different ``PYTHONHASHSEED`` values produce byte-identical
        class and prefix hashes for the same event sequence."""
        outputs = []
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", _REPLAY_SCRIPT],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed},
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        class_hash, prefixes = outputs[0].splitlines()
        assert int(class_hash) != _FNV_OFFSET
        assert prefixes  # snapshots were taken
