"""Concurrency semantics of the interpreter: goroutines, channels, select,
sync primitives, atomics, and race detection on the paper's patterns."""

import pytest

from repro.golang.parser import parse_file
from repro.runtime.harness import GoFile, GoPackage, run_package_tests
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import Scheduler, SchedulerPolicy


def run_source(source: str, entry: str = "main", seed: int = 3):
    interp = Interpreter([parse_file(source, "main.go")],
                         scheduler=Scheduler(seed=seed))
    return interp.run_func(entry)


class TestGoroutinesAndChannels:
    def test_waitgroup_orders_parent_after_children(self):
        source = """
package main

import (
	"fmt"
	"sync"
)

func main() {
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total = total + i
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Println(total)
}
"""
        result = run_source(source)
        assert result.output == ["6"]
        assert not result.races and not result.failures

    def test_channel_send_receive_transfers_value(self):
        source = """
package main

import "fmt"

func main() {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	fmt.Println(<-ch)
}
"""
        result = run_source(source)
        assert result.output == ["42"] and not result.races

    def test_channel_close_and_comma_ok(self):
        source = """
package main

import "fmt"

func main() {
	ch := make(chan int, 2)
	ch <- 1
	close(ch)
	v, ok := <-ch
	_, ok2 := <-ch
	fmt.Println(v, ok, ok2)
}
"""
        result = run_source(source)
        assert result.output == ["1 true false"]

    def test_range_over_closed_channel(self):
        source = """
package main

import "fmt"

func main() {
	ch := make(chan int, 3)
	ch <- 1
	ch <- 2
	close(ch)
	total := 0
	for _, v := range ch {
		total += v
	}
	fmt.Println(total)
}
"""
        result = run_source(source)
        assert result.output == ["3"]

    def test_select_picks_ready_case(self):
        source = """
package main

import "fmt"

func main() {
	ready := make(chan int, 1)
	ready <- 7
	idle := make(chan int, 1)
	select {
	case v := <-ready:
		fmt.Println("ready", v)
	case <-idle:
		fmt.Println("idle")
	}
}
"""
        result = run_source(source)
        assert result.output == ["ready 7"]

    def test_select_default_when_nothing_ready(self):
        source = """
package main

import "fmt"

func main() {
	idle := make(chan int, 1)
	select {
	case <-idle:
		fmt.Println("never")
	default:
		fmt.Println("default")
	}
}
"""
        result = run_source(source)
        assert result.output == ["default"]

    def test_deadlock_is_reported(self):
        source = """
package main

func main() {
	ch := make(chan int, 1)
	<-ch
}
"""
        result = run_source(source)
        assert result.failures and "blocked" in result.failures[0]

    def test_channel_communication_establishes_happens_before(self):
        source = """
package main

import "fmt"

func main() {
	data := 0
	done := make(chan struct{}, 1)
	go func() {
		data = 42
		done <- struct{}{}
	}()
	<-done
	fmt.Println(data)
}
"""
        result = run_source(source)
        assert result.output == ["42"] and not result.races

    def test_mutex_enforces_mutual_exclusion(self):
        source = """
package main

import (
	"fmt"
	"sync"
)

func main() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			counter = counter + 1
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Println(counter)
}
"""
        result = run_source(source)
        assert result.output == ["5"] and not result.races

    def test_unlock_of_unlocked_mutex_fails(self):
        source = """
package main

import "sync"

func main() {
	var mu sync.Mutex
	mu.Unlock()
}
"""
        result = run_source(source)
        assert result.failures

    def test_atomic_operations_are_race_free(self):
        source = """
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
)

func main() {
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&counter, 2)
		}()
	}
	wg.Wait()
	fmt.Println(atomic.LoadInt64(&counter))
}
"""
        result = run_source(source)
        assert result.output == ["8"] and not result.races

    def test_sync_map_is_internally_synchronized(self):
        source = """
package main

import (
	"fmt"
	"sync"
)

func main() {
	var m sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Store(i, i*10)
		}()
	}
	wg.Wait()
	count := 0
	m.Range(func(key, value interface{}) bool {
		count++
		return true
	})
	fmt.Println(count)
}
"""
        result = run_source(source)
        assert result.output == ["4"] and not result.races

    def test_sync_once_runs_exactly_once(self):
        source = """
package main

import (
	"fmt"
	"sync"
)

func main() {
	var once sync.Once
	var wg sync.WaitGroup
	count := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			once.Do(func() {
				count = count + 1
			})
		}()
	}
	wg.Wait()
	fmt.Println(count)
}
"""
        result = run_source(source)
        assert result.output == ["1"] and not result.races


class TestRaceDetectionOnPaperPatterns:
    def test_captured_err_race_is_detected(self, listing1_package):
        result = run_package_tests(listing1_package, runs=10)
        assert result.reports, "the Listing 1 race must be detected"
        assert "err" in result.reports[0].variable

    def test_redeclaration_fix_eliminates_race(self, listing1_fixed_package):
        result = run_package_tests(listing1_fixed_package, runs=10)
        assert not result.reports

    def test_unsynchronized_counter_races(self):
        source = """
package main

import "sync"

func main() {
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counter = counter + 1
		}()
	}
	wg.Wait()
	_ = counter
}
"""
        races = 0
        for seed in range(6):
            result = run_source(source, seed=seed)
            races += len(result.races)
        assert races > 0

    def test_scheduler_seed_changes_interleavings(self):
        source = """
package main

import "fmt"

func main() {
	ch := make(chan int, 2)
	go func() {
		ch <- 1
	}()
	go func() {
		ch <- 2
	}()
	fmt.Println(<-ch + <-ch)
}
"""
        outputs = set()
        for seed in range(8):
            result = run_source(source, seed=seed)
            outputs.add(tuple(result.output))
        assert outputs == {("3",)}


class TestSchedulerPolicies:
    @pytest.mark.parametrize("policy", list(SchedulerPolicy))
    def test_every_policy_completes_a_fanout_program(self, policy):
        source = """
package main

import (
	"fmt"
	"sync"
)

func main() {
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			hits++
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Println(hits)
}
"""
        interp = Interpreter([parse_file(source, "main.go")],
                             scheduler=Scheduler(seed=1, policy=policy))
        result = interp.run_func("main")
        assert result.output == ["3"] and not result.failures

    def test_step_budget_guards_against_runaway_programs(self):
        source = """
package main

func main() {
	for {
		x := 1
		_ = x
	}
}
"""
        interp = Interpreter([parse_file(source, "main.go")],
                             scheduler=Scheduler(seed=1, max_steps=500))
        result = interp.run_func("main")
        assert result.failures and "budget" in result.failures[0]
