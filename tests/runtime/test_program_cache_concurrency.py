"""Concurrency hammer tests for the process-wide :class:`ProgramCache`.

The serving layer makes this cache truly hot for the first time: a warm-up
burst lands the *same* package on many worker threads at once, and a sustained
mixed workload churns more packages than the LRU holds.  These tests pin the
properties that matter under that load:

* **single-flight builds** — N threads racing one fingerprint produce exactly
  one parse/lower, not N (the waiters block on the per-fingerprint event and
  then take the hit);
* **stable hit accounting** — ``hits + misses`` equals the number of calls,
  at any interleaving;
* **LRU bounds** — the entry count never exceeds the configured capacity, no
  matter how many threads insert concurrently.
"""

import threading
import time

import repro.runtime.compiler as compiler
from repro.runtime.compiler import ProgramCache
from repro.runtime.harness import GoFile, GoPackage

PACKAGE_TEMPLATE = """
package hammer

func Value{tag}() int {{
	total := 0
	for i := 0; i < 3; i++ {{
		total = total + i
	}}
	return total
}}
"""


def _package(tag: str) -> GoPackage:
    return GoPackage(name="hammer", files=[
        GoFile("lib.go", PACKAGE_TEMPLATE.format(tag=tag)),
    ])


class _CountingParse:
    """Wraps ``parse_file`` to count builds and widen the race window."""

    def __init__(self, real, delay: float = 0.0):
        self.real = real
        self.delay = delay
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, source, name):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return self.real(source, name)


def _hammer(thread_count, worker):
    barrier = threading.Barrier(thread_count)
    results = [None] * thread_count
    errors = []

    def run(index):
        try:
            barrier.wait()
            results[index] = worker(index)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestSingleFlight:
    def test_racing_threads_build_once(self, monkeypatch):
        counting = _CountingParse(compiler.parse_file, delay=0.005)
        monkeypatch.setattr(compiler, "parse_file", counting)
        cache = ProgramCache(capacity=8)
        package = _package("A")
        threads = 16

        results = _hammer(threads, lambda _i: cache.get_or_build(package))

        # One build (the package has one file), however many threads raced.
        assert counting.calls == 1
        # Everyone got the same entry object, and accounting is exact:
        # one miss (the builder), hits for every waiter.
        assert all(entry is results[0] for entry in results)
        assert cache.misses == 1
        assert cache.hits == threads - 1
        assert cache.hits + cache.misses == threads

    def test_distinct_fingerprints_build_independently(self, monkeypatch):
        counting = _CountingParse(compiler.parse_file, delay=0.002)
        monkeypatch.setattr(compiler, "parse_file", counting)
        cache = ProgramCache(capacity=8)
        packages = [_package(f"P{i}") for i in range(4)]

        # 12 threads, 3 per package, all released together.
        results = _hammer(12, lambda i: cache.get_or_build(packages[i % 4]))

        assert counting.calls == 4  # one build per fingerprint
        assert cache.misses == 4 and cache.hits == 8
        by_fingerprint = {entry.fingerprint for entry in results}
        assert len(by_fingerprint) == 4

    def test_build_errors_are_single_flight_too(self, monkeypatch):
        counting = _CountingParse(compiler.parse_file, delay=0.002)
        monkeypatch.setattr(compiler, "parse_file", counting)
        cache = ProgramCache(capacity=8)
        broken = GoPackage(name="hammer", files=[GoFile("bad.go", "package hammer\nfunc {")])

        results = _hammer(8, lambda _i: cache.get_or_build(broken))

        assert counting.calls == 1
        assert all(entry.errors for entry in results)
        assert cache.misses == 1 and cache.hits == 7


class TestBoundsUnderLoad:
    def test_lru_capacity_is_never_exceeded(self):
        cache = ProgramCache(capacity=4)
        packages = [_package(f"L{i}") for i in range(12)]
        threads = 8

        def churn(index):
            # Each thread walks the packages from a different offset, so
            # inserts and evictions interleave heavily.
            for step in range(len(packages)):
                package = packages[(index + step) % len(packages)]
                entry = cache.get_or_build(package)
                assert entry.fingerprint == compiler.package_fingerprint(package)
                assert len(cache) <= cache.capacity
            return True

        results = _hammer(threads, churn)
        assert all(results)
        assert len(cache) <= cache.capacity
        # Accounting stayed exact across all evictions and rebuilds.
        assert cache.hits + cache.misses == threads * len(packages)

    def test_mixed_hot_and_cold_traffic(self):
        cache = ProgramCache(capacity=3)
        hot = _package("HOT")
        cold = [_package(f"C{i}") for i in range(6)]

        def traffic(index):
            entries = []
            for step in range(10):
                if step % 2 == 0:
                    entries.append(cache.get_or_build(hot))
                else:
                    entries.append(cache.get_or_build(cold[(index + step) % 6]))
            return entries

        results = _hammer(6, traffic)
        fingerprint = compiler.package_fingerprint(hot)
        for entries in results:
            for entry in entries[::2]:
                assert entry.fingerprint == fingerprint
        assert len(cache) <= 3
        assert cache.hits + cache.misses == 6 * 10
