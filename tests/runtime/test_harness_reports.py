"""Tests for the go-test harness and the ThreadSanitizer-format reports."""

from repro.runtime.harness import GoFile, GoPackage, GoTestHarness, run_package_tests
from repro.runtime.race_report import RaceReport, call_paths, merge_reports, parse_report


class TestGoPackage:
    def test_replace_and_with_file(self, listing1_package):
        replaced = listing1_package.replace_file("service.go", "package svc\n")
        assert replaced.file("service.go").source == "package svc\n"
        added = listing1_package.with_file("extra.go", "package svc\n")
        assert added.file("extra.go") is not None
        # The original package is untouched.
        assert listing1_package.file("extra.go") is None

    def test_test_file_detection_and_lines(self, listing1_package):
        assert listing1_package.file("service_test.go").is_test_file()
        assert not listing1_package.file("service.go").is_test_file()
        assert listing1_package.total_lines() > 20


class TestHarness:
    def test_discovers_test_functions(self, listing1_package):
        harness = GoTestHarness(listing1_package, runs=2)
        files, errors = harness.parse()
        assert not errors
        tests = harness.discover_tests(files)
        assert [t.name for t in tests] == ["TestSomeFunction"]

    def test_build_errors_are_reported(self, listing1_package):
        broken = listing1_package.replace_file("service.go", "package svc\nfunc Broken( {}\n")
        result = run_package_tests(broken, runs=2)
        assert not result.built
        assert result.build_errors
        assert "BUILD FAILED" in result.summary()

    def test_racy_package_summary_mentions_races(self, listing1_package):
        result = run_package_tests(listing1_package, runs=8)
        assert result.reports
        assert "data race" in result.summary()

    def test_clean_package_passes(self, listing1_fixed_package):
        result = run_package_tests(listing1_fixed_package, runs=8)
        assert result.passed
        assert "PASS" in result.summary()

    def test_failing_assertion_is_reported(self):
        package = GoPackage(
            name="p",
            files=[
                GoFile("lib.go", "package p\n\nfunc Answer() int {\n\treturn 41\n}\n"),
                GoFile(
                    "lib_test.go",
                    "package p\n\nimport \"testing\"\n\nfunc TestAnswer(t *testing.T) {\n"
                    "\tif Answer() != 42 {\n\t\tt.Errorf(\"wrong answer %d\", Answer())\n\t}\n}\n",
                ),
            ],
        )
        result = run_package_tests(package, runs=2)
        assert result.test_failures
        assert any("wrong answer" in failure for failure in result.test_failures)

    def test_parallel_subtests_run_after_parent_returns(self):
        package = GoPackage(
            name="p",
            files=[
                GoFile(
                    "par_test.go",
                    """
package p

import "testing"

func TestParallel(t *testing.T) {
	order := make(chan string, 4)
	names := []string{"a", "b"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			order <- name
		})
	}
	order <- "parent-done"
}
""",
                ),
            ],
        )
        result = run_package_tests(package, runs=3)
        assert result.built and not result.test_failures

    def test_empty_package_passes(self):
        package = GoPackage(name="empty", files=[GoFile("lib.go", "package empty\n")])
        result = run_package_tests(package, runs=2)
        assert result.passed and result.tests_discovered == 0


class TestRaceReports:
    def _report(self, listing1_package) -> RaceReport:
        result = run_package_tests(listing1_package, runs=10)
        assert result.reports
        return result.reports[0]

    def test_report_contains_both_stacks_and_creation_site(self, listing1_package):
        report = self._report(listing1_package)
        text = report.render()
        assert "WARNING: DATA RACE" in text
        assert "created at:" in text
        assert "SomeFunction" in text

    def test_render_parse_round_trip(self, listing1_package):
        report = self._report(listing1_package)
        parsed = parse_report(report.render())
        assert {f.function for f in parsed.first.frames} == {f.function for f in report.first.frames}
        assert parsed.second.goroutine_id == report.second.goroutine_id

    def test_bug_hash_is_stable_across_runs(self, listing1_package):
        first = run_package_tests(listing1_package, runs=8, seed=0).reports[0].bug_hash()
        second = run_package_tests(listing1_package, runs=8, seed=99).reports[0].bug_hash()
        assert first == second

    def test_bug_hash_distinguishes_different_races(self, listing1_package, waitgroup_case):
        listing_hash = self._report(listing1_package).bug_hash()
        other_hash = waitgroup_case.race_report(runs=10).bug_hash()
        assert listing_hash != other_hash

    def test_involved_functions_and_files(self, listing1_package):
        report = self._report(listing1_package)
        assert "SomeFunction" in " ".join(report.involved_functions())
        assert "service.go" in report.involved_files()

    def test_merge_reports_deduplicates_by_hash(self, listing1_package):
        report = self._report(listing1_package)
        assert len(merge_reports([report, report])) == 1

    def test_call_paths_are_root_first(self, listing1_package):
        report = self._report(listing1_package)
        first, second = call_paths(report)
        assert first[-1] == report.first.frames[0].function
