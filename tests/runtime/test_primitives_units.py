"""Unit tests for channels, sync primitives, memory cells, and the scheduler."""

import pytest

from repro.errors import DeadlockError, GoPanic, GoRuntimeError
from repro.runtime.channels import Channel
from repro.runtime.goroutine import Goroutine, GoroutineState, STEP, blocked
from repro.runtime.memory import Cell, Environment
from repro.runtime.scheduler import Scheduler, SchedulerPolicy
from repro.runtime.sync_primitives import Mutex, Once, RWMutex, SyncMap, WaitGroup, is_sync_object


class TestChannel:
    def test_buffered_send_receive(self):
        ch = Channel(capacity=2)
        assert ch.can_send()
        ch.send("a")
        ch.send("b")
        assert not ch.can_send()
        assert ch.recv() == ("a", True)
        assert ch.recv() == ("b", True)
        assert not ch.can_recv()

    def test_unbuffered_channel_gets_capacity_one(self):
        assert Channel(capacity=0).capacity == 1

    def test_closed_channel_yields_zero_values(self):
        ch = Channel(capacity=1)
        ch.close()
        assert ch.can_recv()
        assert ch.recv() == (None, False)

    def test_send_on_closed_channel_panics(self):
        ch = Channel(capacity=1)
        ch.close()
        with pytest.raises(GoPanic):
            ch.send(1)

    def test_double_close_panics(self):
        ch = Channel(capacity=1)
        ch.close()
        with pytest.raises(GoPanic):
            ch.close()


class TestSyncPrimitives:
    def test_mutex_lock_unlock_cycle(self):
        mu = Mutex()
        assert mu.can_lock()
        mu.lock(tid=1)
        assert not mu.can_lock()
        mu.unlock()
        assert mu.can_lock()

    def test_unlock_of_unlocked_mutex_raises(self):
        with pytest.raises(GoRuntimeError):
            Mutex().unlock()

    def test_rwmutex_readers_exclude_writer(self):
        mu = RWMutex()
        mu.rlock()
        assert not mu.can_lock()
        assert mu.can_rlock()
        mu.runlock()
        mu.lock(tid=1)
        assert not mu.can_rlock()
        mu.unlock()

    def test_waitgroup_counter(self):
        wg = WaitGroup()
        wg.add(2)
        assert not wg.ready()
        wg.done()
        wg.done()
        assert wg.ready()

    def test_negative_waitgroup_counter_raises(self):
        with pytest.raises(GoRuntimeError):
            WaitGroup().done()

    def test_sync_map_operations(self):
        m = SyncMap()
        m.store("a", 1)
        assert m.load("a") == (1, True)
        assert m.load("missing") == (None, False)
        value, loaded = m.load_or_store("a", 99)
        assert value == 1 and loaded
        m.delete("a")
        assert m.load("a") == (None, False)
        m.store("x", 10)
        assert m.snapshot() == [("x", 10)]

    def test_once_flags(self):
        once = Once()
        assert once.can_enter() and once.should_run()
        once.done = True
        assert not once.should_run()

    def test_is_sync_object(self):
        assert is_sync_object(Mutex()) and is_sync_object(SyncMap())
        assert not is_sync_object(Cell())


class TestMemory:
    def test_environment_lookup_follows_parent_chain(self):
        parent = Environment()
        parent.declare("shared", 1)
        child = parent.child()
        child.declare("local", 2)
        assert child.lookup("shared").value == 1
        assert parent.lookup("local") is None
        assert child.is_local("local") and not child.is_local("shared")

    def test_blank_identifier_is_not_stored(self):
        env = Environment()
        env.declare("_", 5)
        assert env.lookup("_") is None

    def test_cells_have_unique_addresses(self):
        assert Cell().address != Cell().address

    def test_flat_names_prefers_inner_scope(self):
        parent = Environment()
        parent.declare("x", 1)
        child = parent.child()
        child.declare("x", 2)
        assert child.flat_names()["x"].value == 2


class TestScheduler:
    def _goroutine(self, gid, gen):
        return Goroutine(gid=gid, name=f"g{gid}", generator=gen)

    def test_runs_a_single_goroutine_to_completion(self):
        events = []

        def body():
            events.append("start")
            yield STEP
            events.append("end")

        scheduler = Scheduler(seed=1)
        main = self._goroutine(scheduler.new_gid(), body())
        scheduler.register(main)
        scheduler.run(main)
        assert events == ["start", "end"]
        assert main.state is GoroutineState.DONE

    def test_blocked_goroutine_resumes_when_predicate_becomes_true(self):
        flag = {"ready": False}
        order = []

        def waiter():
            while not flag["ready"]:
                yield blocked(lambda: flag["ready"], "waiting for flag")
            order.append("waiter")

        def setter():
            yield STEP
            flag["ready"] = True
            order.append("setter")

        scheduler = Scheduler(seed=5)
        main = self._goroutine(scheduler.new_gid(), waiter())
        other = self._goroutine(scheduler.new_gid(), setter())
        scheduler.register(main)
        scheduler.register(other)
        scheduler.run(main)
        assert order == ["setter", "waiter"]

    def test_global_block_is_a_deadlock(self):
        def stuck():
            while True:
                yield blocked(lambda: False, "stuck forever")

        scheduler = Scheduler(seed=2)
        main = self._goroutine(scheduler.new_gid(), stuck())
        scheduler.register(main)
        with pytest.raises(DeadlockError):
            scheduler.run(main)

    def test_step_budget_is_enforced(self):
        def spin():
            while True:
                yield STEP

        scheduler = Scheduler(seed=2, max_steps=50)
        main = self._goroutine(scheduler.new_gid(), spin())
        scheduler.register(main)
        with pytest.raises(GoRuntimeError):
            scheduler.run(main)

    def test_same_seed_gives_same_schedule(self):
        def make_bodies():
            trace = []

            def worker(name):
                def body():
                    for _ in range(3):
                        trace.append(name)
                        yield STEP
                return body

            return trace, worker

        schedules = []
        for _ in range(2):
            trace, worker = make_bodies()
            scheduler = Scheduler(seed=99, policy=SchedulerPolicy.RANDOM)
            main = self._goroutine(scheduler.new_gid(), worker("a")())
            other = self._goroutine(scheduler.new_gid(), worker("b")())
            scheduler.register(main)
            scheduler.register(other)
            scheduler.run(main)
            schedules.append(tuple(trace))
        assert schedules[0] == schedules[1]

    def test_failed_goroutines_are_recorded(self):
        def failing():
            yield STEP
            raise GoRuntimeError("boom")

        scheduler = Scheduler(seed=1)
        main = self._goroutine(scheduler.new_gid(), failing())
        scheduler.register(main)
        scheduler.run(main)
        assert main.state is GoroutineState.FAILED
        assert scheduler.failures and "boom" in str(scheduler.failures[0])
