"""Schedule-class statistics: the HB-trace hash and the harness counts.

Two runs that establish the same happens-before edges in the same order
explored the same schedule equivalence class; the detector folds every
fork/join/release/acquire event into a rolling FNV-1a hash and the harness
counts distinct hashes across a sweep.  Statistics only — no behavior keys
off the hash — but the numbers feed BENCH_interpreter.json, so they must be
deterministic across processes and runs.
"""

from __future__ import annotations

from repro.runtime.race_detector import RaceDetector, _FNV_OFFSET
from repro.runtime.vector_clock import SyncVar
from repro.runtime.harness import GoFile, GoPackage, run_package_tests
from repro.runtime.scheduler import SchedulerPolicy


class TestScheduleClassHash:
    def test_same_event_sequence_same_hash(self):
        def trace(detector):
            sync = SyncVar()
            detector.on_fork(1, 2)
            detector.on_release(2, sync)
            detector.on_acquire(1, sync)
            detector.on_join(1, 2)
            return detector.schedule_class_hash

        assert trace(RaceDetector()) == trace(RaceDetector())

    def test_event_order_changes_hash(self):
        first, second = RaceDetector(), RaceDetector()
        sync_a, sync_b = SyncVar(), SyncVar()

        first.on_fork(1, 2)
        first.on_release(1, sync_a)
        first.on_release(2, sync_b)

        second.on_fork(1, 2)
        second.on_release(2, sync_a)  # same events, swapped goroutines
        second.on_release(1, sync_b)

        assert first.schedule_class_hash != second.schedule_class_hash

    def test_sync_objects_numbered_by_first_appearance(self):
        """The hash uses per-run sync numbering, not ``id()`` — two runs
        touching fresh sync objects in the same order must collide."""
        def trace(detector):
            lock, chan = SyncVar(), SyncVar()
            detector.on_release(1, lock)
            detector.on_acquire(2, lock)
            detector.on_release(2, chan)
            return detector.schedule_class_hash

        assert trace(RaceDetector()) == trace(RaceDetector())

    def test_reset_restores_the_empty_trace(self):
        detector = RaceDetector()
        detector.on_fork(1, 2)
        assert detector.schedule_class_hash != _FNV_OFFSET
        detector.reset()
        assert detector.schedule_class_hash == _FNV_OFFSET
        assert not detector._sync_ids and not detector._sync_pins


RACY = GoPackage(
    name="classes",
    files=[GoFile("classes_test.go", """package classes

import (
\t"sync"
\t"testing"
)

func TestClasses(t *testing.T) {
\tcount := 0
\tvar wg sync.WaitGroup
\tfor i := 0; i < 3; i++ {
\t\twg.Add(1)
\t\tgo func() {
\t\t\tcount++
\t\t\twg.Done()
\t\t}()
\t}
\twg.Wait()
}
""")],
)


class TestHarnessScheduleClassCounts:
    def test_distinct_classes_bounded_by_runs_and_deterministic(self):
        result = run_package_tests(
            RACY, runs=6, seed=1, policies=(SchedulerPolicy.RANDOM,)
        )
        assert 1 <= result.schedule_classes <= result.runs
        again = run_package_tests(
            RACY, runs=6, seed=1, policies=(SchedulerPolicy.RANDOM,)
        )
        assert again.schedule_classes == result.schedule_classes

    def test_single_goroutine_program_has_one_class(self):
        package = GoPackage(
            name="solo",
            files=[GoFile("solo_test.go", """package solo

import "testing"

func TestSolo(t *testing.T) {
\ttotal := 0
\tfor i := 0; i < 4; i++ {
\t\ttotal += i
\t}
\tprintln(total)
}
""")],
        )
        result = run_package_tests(package, runs=4, seed=0)
        assert result.schedule_classes == 1
