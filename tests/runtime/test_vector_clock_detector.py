"""Unit tests for vector clocks and the FastTrack-style detector."""

from hypothesis import given, settings, strategies as st

from repro.runtime.memory import Cell
from repro.runtime.race_detector import AccessRecord, RaceDetector
from repro.runtime.vector_clock import Epoch, SyncVar, VectorClock


def record(tid: int, write: bool = True) -> AccessRecord:
    return AccessRecord(goroutine_id=tid, is_write=write,
                        stack=(("F", "f.go", 1),), variable="x", address=1)


class TestVectorClock:
    def test_increment_and_get(self):
        clock = VectorClock()
        clock.increment(3)
        clock.increment(3)
        assert clock.get(3) == 2 and clock.get(7) == 0

    def test_join_takes_componentwise_max(self):
        a = VectorClock({1: 5, 2: 1})
        b = VectorClock({1: 2, 3: 4})
        a.join(b)
        assert a.get(1) == 5 and a.get(2) == 1 and a.get(3) == 4

    def test_dominates(self):
        a = VectorClock({1: 3, 2: 2})
        b = VectorClock({1: 1, 2: 2})
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_epoch_happens_before(self):
        clock = VectorClock({4: 7})
        assert Epoch(4, 7).happens_before(clock)
        assert not Epoch(4, 8).happens_before(clock)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({1: 2, 5: 0}) == VectorClock({1: 2})

    def test_set_zero_clears_stale_entry(self):
        # Regression: ``set`` used to silently drop zero values, so a stale
        # nonzero entry could never be cleared back to 0.
        clock = VectorClock()
        clock.set(3, 5)
        assert clock.get(3) == 5
        clock.set(3, 0)
        assert clock.get(3) == 0
        assert clock == VectorClock()
        # Setting an absent tid to zero stays a no-op (clock remains sparse).
        clock.set(9, 0)
        assert clock.get(9) == 0 and clock == VectorClock()

    @given(st.dictionaries(st.integers(1, 6), st.integers(0, 20), max_size=5),
           st.dictionaries(st.integers(1, 6), st.integers(0, 20), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_join_is_least_upper_bound(self, left, right):
        a = VectorClock(left)
        b = VectorClock(right)
        joined = a.copy()
        joined.join(b)
        assert joined.dominates(a) and joined.dominates(b)
        for tid in set(left) | set(right):
            assert joined.get(tid) == max(left.get(tid, 0), right.get(tid, 0))


class TestSyncVar:
    def test_release_acquire_transfers_knowledge(self):
        sync = SyncVar()
        releaser = VectorClock({1: 4})
        acquirer = VectorClock({2: 1})
        sync.release(releaser)
        sync.acquire(acquirer)
        assert acquirer.get(1) == 4


class TestRaceDetector:
    def test_unordered_write_write_is_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert detector.has_races()

    def test_fork_edge_orders_parent_before_child(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.on_write(1, cell, record(1))
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        assert not detector.has_races()

    def test_child_write_after_fork_races_with_parent_later_write(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        detector.on_write(1, cell, record(1))
        assert detector.has_races()

    def test_lock_release_acquire_orders_accesses(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        mutex = SyncVar()
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_fork(1, 2)
        detector.on_acquire(1, mutex)
        detector.on_write(1, cell, record(1))
        detector.on_release(1, mutex)
        detector.on_acquire(2, mutex)
        detector.on_write(2, cell, record(2))
        detector.on_release(2, mutex)
        assert not detector.has_races()

    def test_read_read_is_not_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_read(2, cell, record(2, write=False))
        assert not detector.has_races()

    def test_unordered_read_then_write_is_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_write(2, cell, record(2))
        assert detector.has_races()

    def test_synchronized_cells_are_ignored(self):
        detector = RaceDetector()
        cell = Cell(name="internal", synchronized=True)
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert not detector.has_races()

    def test_duplicate_races_are_deduplicated(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert len(detector.races) == 1

    def test_join_edge_clears_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        detector.on_join(1, 2)
        detector.on_write(1, cell, record(1))
        assert not detector.has_races()

    def test_reset_clears_state(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        detector.reset()
        assert not detector.has_races()


class TestFastTrackStateMachine:
    """FastTrack fast paths: adaptive read state and in-place epoch updates."""

    def _state(self, detector: RaceDetector, cell: Cell):
        return detector._locations[cell.address]

    def test_single_reader_keeps_inline_read_epoch(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.on_read(1, cell, record(1, write=False))
        state = self._state(detector, cell)
        assert state.read_tid == 1
        assert state.read_clocks is None and state.read_records is None

    def test_same_epoch_read_updates_in_place_and_refreshes_record(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        first = record(1, write=False)
        second = record(1, write=False)
        detector.on_read(1, cell, first)
        detector.on_read(1, cell, second)
        state = self._state(detector, cell)
        # Still read-exclusive: no promotion, and the report record tracks the
        # most recent read (the bit-identity deviation from textbook
        # FastTrack, which would skip the update entirely).
        assert state.read_tid == 1
        assert state.read_record is second
        assert state.read_clocks is None

    def test_concurrent_readers_promote_to_shared_maps(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_fork(1, 2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_read(2, cell, record(2, write=False))
        state = self._state(detector, cell)
        assert state.read_tid == -2  # shared mode
        assert list(state.read_records) == [1, 2]  # promotion preserves order
        assert state.read_clocks is not None and len(state.read_clocks) == 2

    def test_write_demotes_read_state_and_stores_epoch_inline(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_fork(1, 2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_read(2, cell, record(2, write=False))
        write = record(1)
        detector.on_write(1, cell, write)
        state = self._state(detector, cell)
        assert state.read_tid == -1 and state.read_records is None
        assert state.write_tid == 1
        assert state.write_clock == detector.clock_of(1).get(1)
        assert state.write_record is write

    def test_same_epoch_write_only_refreshes_record(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        first = record(1)
        second = record(1)
        detector.on_write(1, cell, first)
        clock_before = self._state(detector, cell).write_clock
        detector.on_write(1, cell, second)
        state = self._state(detector, cell)
        assert state.write_clock == clock_before
        assert state.write_record is second
        assert not detector.has_races()

    def test_write_write_race_reported_from_epochs(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert detector.has_races()

    def test_shared_read_then_unordered_write_reports_each_reader(self):
        detector = RaceDetector()
        cell = Cell(name="y")
        detector.on_fork(1, 2)
        detector.on_fork(1, 3)
        reader2 = AccessRecord(goroutine_id=2, is_write=False,
                               stack=(("R2", "f.go", 2),), variable="y", address=2)
        reader3 = AccessRecord(goroutine_id=3, is_write=False,
                               stack=(("R3", "f.go", 3),), variable="y", address=2)
        detector.on_read(2, cell, reader2)
        detector.on_read(3, cell, reader3)
        writer = AccessRecord(goroutine_id=1, is_write=True,
                              stack=(("W", "f.go", 9),), variable="y", address=2)
        detector.on_write(1, cell, writer)
        assert len(detector.races) == 2
        assert [race.previous.goroutine_id for race in detector.races] == [2, 3]

    def test_fork_ordered_reads_do_not_race_with_parent_write(self):
        detector = RaceDetector()
        cell = Cell(name="z")
        detector.register_goroutine(1)
        detector.on_write(1, cell, record(1))
        detector.on_fork(1, 2)
        detector.on_read(2, cell, record(2, write=False))
        assert not detector.has_races()
