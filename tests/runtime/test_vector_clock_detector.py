"""Unit tests for vector clocks and the FastTrack-style detector."""

from hypothesis import given, settings, strategies as st

from repro.runtime.memory import Cell
from repro.runtime.race_detector import AccessRecord, RaceDetector
from repro.runtime.vector_clock import Epoch, SyncVar, VectorClock


def record(tid: int, write: bool = True) -> AccessRecord:
    return AccessRecord(goroutine_id=tid, is_write=write,
                        stack=(("F", "f.go", 1),), variable="x", address=1)


class TestVectorClock:
    def test_increment_and_get(self):
        clock = VectorClock()
        clock.increment(3)
        clock.increment(3)
        assert clock.get(3) == 2 and clock.get(7) == 0

    def test_join_takes_componentwise_max(self):
        a = VectorClock({1: 5, 2: 1})
        b = VectorClock({1: 2, 3: 4})
        a.join(b)
        assert a.get(1) == 5 and a.get(2) == 1 and a.get(3) == 4

    def test_dominates(self):
        a = VectorClock({1: 3, 2: 2})
        b = VectorClock({1: 1, 2: 2})
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_epoch_happens_before(self):
        clock = VectorClock({4: 7})
        assert Epoch(4, 7).happens_before(clock)
        assert not Epoch(4, 8).happens_before(clock)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({1: 2, 5: 0}) == VectorClock({1: 2})

    def test_set_zero_clears_stale_entry(self):
        # Regression: ``set`` used to silently drop zero values, so a stale
        # nonzero entry could never be cleared back to 0.
        clock = VectorClock()
        clock.set(3, 5)
        assert clock.get(3) == 5
        clock.set(3, 0)
        assert clock.get(3) == 0
        assert clock == VectorClock()
        # Setting an absent tid to zero stays a no-op (clock remains sparse).
        clock.set(9, 0)
        assert clock.get(9) == 0 and clock == VectorClock()

    @given(st.dictionaries(st.integers(1, 6), st.integers(0, 20), max_size=5),
           st.dictionaries(st.integers(1, 6), st.integers(0, 20), max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_join_is_least_upper_bound(self, left, right):
        a = VectorClock(left)
        b = VectorClock(right)
        joined = a.copy()
        joined.join(b)
        assert joined.dominates(a) and joined.dominates(b)
        for tid in set(left) | set(right):
            assert joined.get(tid) == max(left.get(tid, 0), right.get(tid, 0))


class TestSyncVar:
    def test_release_acquire_transfers_knowledge(self):
        sync = SyncVar()
        releaser = VectorClock({1: 4})
        acquirer = VectorClock({2: 1})
        sync.release(releaser)
        sync.acquire(acquirer)
        assert acquirer.get(1) == 4


class TestRaceDetector:
    def test_unordered_write_write_is_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert detector.has_races()

    def test_fork_edge_orders_parent_before_child(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.on_write(1, cell, record(1))
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        assert not detector.has_races()

    def test_child_write_after_fork_races_with_parent_later_write(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        detector.on_write(1, cell, record(1))
        assert detector.has_races()

    def test_lock_release_acquire_orders_accesses(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        mutex = SyncVar()
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_fork(1, 2)
        detector.on_acquire(1, mutex)
        detector.on_write(1, cell, record(1))
        detector.on_release(1, mutex)
        detector.on_acquire(2, mutex)
        detector.on_write(2, cell, record(2))
        detector.on_release(2, mutex)
        assert not detector.has_races()

    def test_read_read_is_not_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_read(2, cell, record(2, write=False))
        assert not detector.has_races()

    def test_unordered_read_then_write_is_a_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.register_goroutine(1)
        detector.register_goroutine(2)
        detector.on_read(1, cell, record(1, write=False))
        detector.on_write(2, cell, record(2))
        assert detector.has_races()

    def test_synchronized_cells_are_ignored(self):
        detector = RaceDetector()
        cell = Cell(name="internal", synchronized=True)
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert not detector.has_races()

    def test_duplicate_races_are_deduplicated(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        assert len(detector.races) == 1

    def test_join_edge_clears_race(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_fork(1, 2)
        detector.on_write(2, cell, record(2))
        detector.on_join(1, 2)
        detector.on_write(1, cell, record(1))
        assert not detector.has_races()

    def test_reset_clears_state(self):
        detector = RaceDetector()
        cell = Cell(name="x")
        detector.on_write(1, cell, record(1))
        detector.on_write(2, cell, record(2))
        detector.reset()
        assert not detector.has_races()
