"""Patch-aware incremental compilation: the two-level ProgramCache.

Candidate-patch validation rebuilds near-identical packages thousands of
times; the cache therefore derives a new build from the previous build of the
same package name whenever only some function bodies changed — unchanged
functions reuse the donor's parsed AST nodes and compiled closures, changed
functions are re-parsed in isolation at their original line offsets so every
position (and thus every rendered report) matches a cold build bit for bit.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime.compiler import ProgramCache, _segment_source
from repro.runtime.harness import GoFile, GoPackage
from repro.testing import reset_addresses, run_outcome

BASE_SOURCE = """package inc

import "sync"

var shared = 0

func Pure(n int) int {
\ttotal := 0
\tfor i := 0; i < n; i++ {
\t\ttotal += i
\t}
\treturn total
}

func Bump() {
\tvar mu sync.Mutex
\tmu.Lock()
\tshared++
\tmu.Unlock()
}

func Untouched() int {
\treturn Pure(3)
}
"""

#: ``Bump`` patched (the usual candidate-fix shape); everything else identical.
PATCHED_SOURCE = BASE_SOURCE.replace("\tshared++\n", "\tshared += 2\n")

TEST_SOURCE = """package inc

import "testing"

func TestAll(t *testing.T) {
\tBump()
\tprintln(Pure(4), shared)
}
"""


def _package(lib_source):
    return GoPackage(
        name="inc",
        files=[GoFile("lib.go", lib_source), GoFile("lib_test.go", TEST_SOURCE)],
    )


class TestSegmentation:
    def test_segments_cover_source_and_classify_functions(self):
        segments = _segment_source(BASE_SOURCE)
        assert segments is not None
        kinds = [segment.kind for segment in segments]
        assert kinds.count("func") == 3
        total_lines = sum(segment.n_lines for segment in segments)
        assert total_lines == len(BASE_SOURCE.split("\n"))

    def test_digest_tracks_only_the_changed_function(self):
        base = _segment_source(BASE_SOURCE)
        patched = _segment_source(PATCHED_SOURCE)
        changed = [
            (a.kind, a.start)
            for a, b in zip(base, patched)
            if a.digest != b.digest
        ]
        assert len(changed) == 1
        assert changed[0][0] == "func"

    def test_unbalanced_source_refuses_to_segment(self):
        assert _segment_source("package p\n\nfunc Broken() {\n") is None

    def test_strings_and_comments_do_not_confuse_the_scanner(self):
        tricky = """package p

var s = "func Fake() {"

// func AlsoFake() {
func Real() string {
\treturn `raw } { backtick`
}
"""
        segments = _segment_source(tricky)
        assert segments is not None
        assert sum(1 for segment in segments if segment.kind == "func") == 1


class TestIncrementalBuilds:
    def test_single_function_patch_derives_instead_of_full_build(self):
        cache = ProgramCache(capacity=8)
        base = cache.get_or_build(_package(BASE_SOURCE))
        base_program = base.ensure_program()
        assert base_program is not None
        assert cache.stats()["full_builds"] == 1

        patched = cache.get_or_build(_package(PATCHED_SOURCE))
        assert patched is not base
        stats = cache.stats()
        assert stats["derived_builds"] == 1
        assert stats["full_builds"] == 1

        patched_program = patched.ensure_program()
        assert patched_program is not None
        # Unchanged functions reuse the donor's compiled closures outright.
        assert cache.stats()["unit_hits"] >= 2
        assert cache.stats()["unit_misses"] >= 1
        for decl_file in patched.files:
            for decl in decl_file.func_decls():
                if decl.body is None or decl.name != "Pure":
                    continue
                key = id(decl.body)
                assert key in base_program.code
                assert patched_program.code[key][1] is base_program.code[key][1]

    def test_derived_and_cold_builds_are_bit_identical(self):
        """The harness-level outcome of a derived build must equal a cold
        build exactly — positions survive isolated re-parsing."""
        from repro.runtime.compiler import PROGRAM_CACHE

        PROGRAM_CACHE.clear()
        outcomes = {}
        for arm in ("cold", "derived"):
            PROGRAM_CACHE.clear()
            reset_addresses()
            if arm == "derived":
                # Prime the cache with the base package so the patched
                # package is derived from it, then discard that outcome.
                run_outcome(_package(BASE_SOURCE), 3, "compiled", runs=2)
                reset_addresses()
            before = PROGRAM_CACHE.stats()["derived_builds"]
            outcomes[arm] = run_outcome(_package(PATCHED_SOURCE), 3, "compiled", runs=3)
            derived_delta = PROGRAM_CACHE.stats()["derived_builds"] - before
            assert derived_delta == (1 if arm == "derived" else 0)
        assert outcomes["cold"] == outcomes["derived"]
        PROGRAM_CACHE.clear()

    def test_adding_a_function_falls_back_to_full_build(self):
        cache = ProgramCache(capacity=8)
        cache.get_or_build(_package(BASE_SOURCE)).ensure_program()
        grown = BASE_SOURCE + "\nfunc Extra() int {\n\treturn 9\n}\n"
        cache.get_or_build(_package(grown)).ensure_program()
        stats = cache.stats()
        assert stats["full_builds"] == 2
        assert stats["derived_builds"] == 0

    def test_parse_error_patch_falls_back_to_full_build(self):
        cache = ProgramCache(capacity=8)
        cache.get_or_build(_package(BASE_SOURCE)).ensure_program()
        broken = BASE_SOURCE.replace("\tshared++\n", "\tshared++ ++\n")
        entry = cache.get_or_build(_package(broken))
        assert entry.errors
        assert cache.stats()["derived_builds"] == 0

    def test_eviction_forgets_the_donor(self):
        cache = ProgramCache(capacity=1)
        cache.get_or_build(_package(BASE_SOURCE))
        other = GoPackage(name="other", files=[GoFile("a.go", "package other\n")])
        cache.get_or_build(other)  # evicts the "inc" entry
        assert cache.stats()["evictions"] == 1
        cache.get_or_build(_package(PATCHED_SOURCE))
        stats = cache.stats()
        assert stats["derived_builds"] == 0  # donor gone: full build
        assert stats["full_builds"] == 3

    def test_singleflight_counts_waiters(self):
        cache = ProgramCache(capacity=8)
        package = _package(BASE_SOURCE)
        barrier = threading.Barrier(4)
        results = []

        def build():
            barrier.wait()
            results.append(cache.get_or_build(package))

        threads = [threading.Thread(target=build) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(entry) for entry in results}) == 1
        stats = cache.stats()
        assert stats["full_builds"] == 1
        assert stats["hits"] + stats["singleflight_waits"] == 3

    def test_stats_snapshot_has_every_counter(self):
        expected = {
            "entries", "capacity", "hits", "misses", "evictions",
            "singleflight_waits", "full_builds", "derived_builds",
            "unit_hits", "unit_misses",
        }
        assert expected == set(ProgramCache(capacity=2).stats())
