"""Corpus-wide differential test: compiled engine ≡ tree-walk, bit for bit.

The compile-once engine (``repro.runtime.compiler``) must be observationally
indistinguishable from the reference tree-walking interpreter: same rendered
race reports (including cell addresses), same test failures, same program
output, same build errors — for every corpus template, across seeds, across
every scheduler policy.  Any divergence is a bug in the lowering pass; CI
fails on it.

Cell addresses come from a process-global counter, so each engine's sweep
starts from a reset counter — identical allocation *order* (which the
compiler guarantees) then yields identical addresses.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.execution import EngineKind, resolve_engine
from repro.runtime.compiler import PROGRAM_CACHE, package_fingerprint
from repro.runtime.harness import GoFile, GoPackage, run_package_tests
from repro.testing import reset_addresses as _reset_addresses
from repro.testing import run_outcome

# Tree-vs-compiled comparisons force slicing OFF: the fully instrumented
# compiled lowering is the one that is bit-identical to the tree-walk
# (slicing elides schedule points, which legitimately changes seeded
# schedules; its own equivalence suite is test_slicing_equivalence.py).
_outcome = partial(run_outcome, slicing="off")

SEEDS = (0, 11)


@pytest.fixture(scope="module")
def dataset():
    return CorpusGenerator(CorpusConfig()).generate()


class TestCompiledEngineDifferential:
    def test_full_corpus_bit_identical_across_policies_and_seeds(self, dataset):
        """Every template × seed × all five scheduler policies: identical."""
        cases = dataset.evaluation + dataset.db_examples
        sweeps = {}
        for engine in ("tree", "compiled"):
            _reset_addresses()
            sweeps[engine] = [
                (case.case_id, seed, _outcome(case.package, seed, engine))
                for case in cases
                for seed in SEEDS
            ]
        for tree_row, compiled_row in zip(sweeps["tree"], sweeps["compiled"]):
            assert tree_row == compiled_row, (
                f"engine divergence on case={tree_row[0]} seed={tree_row[1]}"
            )

    def test_mutant_corpus_bit_identical(self):
        """≥30 mutation-engine cases (renames, reorders, workload and channel
        variations, sync-injected negatives) run bit-identically on both
        engines — the mutation operators must not exercise any construct the
        compiler lowers differently from the tree-walk."""
        generator = CorpusGenerator(CorpusConfig(seed=606, noise_level=1))
        cases = generator.generate_mutant_corpus(32, mutants_per_base=4)
        assert len(cases) >= 30
        assert any(case.base_case_id for case in cases)
        sweeps = {}
        for engine in ("tree", "compiled"):
            _reset_addresses()
            sweeps[engine] = [
                (case.case_id, _outcome(case.package, 7, engine, runs=3))
                for case in cases
            ]
        for tree_row, compiled_row in zip(sweeps["tree"], sweeps["compiled"]):
            assert tree_row == compiled_row, (
                f"engine divergence on mutant case={tree_row[0]}"
            )

    def test_entry_functions_and_build_errors_identical(self, dataset):
        broken = GoPackage(
            name="broken",
            files=[GoFile("lib.go", "package broken\nfunc Broken( {\n")],
        )
        entry_pkg = GoPackage(
            name="entry",
            files=[GoFile("main.go", """package entry

var total = 0

func Bump() {
\tfor i := 0; i < 3; i++ {
\t\ttotal += i
\t}
\tprintln(total)
}
""")],
        )
        outcomes = {}
        for engine in ("tree", "compiled"):
            _reset_addresses()
            broken_result = run_package_tests(broken, runs=2, engine=engine)
            entry_result = run_package_tests(
                entry_pkg, runs=3, engine=engine, entry_functions=["Bump"]
            )
            outcomes[engine] = (
                broken_result.build_errors,
                entry_result.output,
                entry_result.test_failures,
            )
        assert outcomes["tree"] == outcomes["compiled"]
        assert outcomes["tree"][0]  # the broken package really failed to build


class TestMultiAssignPadding:
    def test_overlong_comma_ok_targets_pad_identically(self):
        """``v, ok, extra := m[k]`` declares extra as nil on BOTH engines.

        Comma-ok forms return exactly two values however many targets there
        are; the reference pads with ``None`` unconditionally, and the
        compiled engine must too (regression: the spread branch once skipped
        the padding, leaving the third target undeclared)."""
        package = GoPackage(
            name="pad",
            files=[GoFile("pad_test.go", """package pad

import "testing"

func TestPad(t *testing.T) {
\tm := map[string]int{"a": 1}
\tv, ok, extra := m["a"]
\tprintln(v, ok, extra)
}
""")],
        )
        outcomes = {}
        for engine in ("tree", "compiled"):
            _reset_addresses()
            result = run_package_tests(package, runs=2, engine=engine)
            outcomes[engine] = (result.output, result.test_failures, result.build_errors)
        assert outcomes["tree"] == outcomes["compiled"]
        assert not outcomes["tree"][1]  # no failures: extra padded to nil


class TestEngineSelection:
    def test_resolve_engine_defaults_to_compiled(self, monkeypatch):
        monkeypatch.delenv("DRFIX_ENGINE", raising=False)
        assert resolve_engine() is EngineKind.COMPILED
        assert resolve_engine("tree") is EngineKind.TREE
        assert resolve_engine(EngineKind.TREE) is EngineKind.TREE

    def test_resolve_engine_env_var(self, monkeypatch):
        monkeypatch.setenv("DRFIX_ENGINE", "tree")
        assert resolve_engine() is EngineKind.TREE

    def test_resolve_engine_rejects_unknown(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            resolve_engine("jit")

    def test_config_engine_validation(self):
        from repro.core.config import DrFixConfig
        from repro.errors import ConfigError

        assert DrFixConfig(engine="tree").validated().engine == "tree"
        with pytest.raises(ConfigError):
            DrFixConfig(engine="warp").validated()


class TestProgramCache:
    def test_same_source_hits_cache(self):
        package = GoPackage(
            name="cached", files=[GoFile("a.go", "package cached\nfunc A() int { return 1 }\n")]
        )
        first = PROGRAM_CACHE.get_or_build(package)
        second = PROGRAM_CACHE.get_or_build(
            GoPackage(name="cached", files=[GoFile("a.go", package.files[0].source)])
        )
        assert first is second
        # Lowering is lazy: only a compiled-engine request builds the program.
        assert first.program is None
        program = first.ensure_program()
        assert program is not None and program.code
        assert first.ensure_program() is program

    def test_fingerprint_tracks_content_and_names(self):
        base = GoPackage(name="p", files=[GoFile("a.go", "package p\n")])
        same = GoPackage(name="p", files=[GoFile("a.go", "package p\n")])
        renamed = GoPackage(name="p", files=[GoFile("b.go", "package p\n")])
        edited = GoPackage(name="p", files=[GoFile("a.go", "package p\nvar x = 1\n")])
        assert package_fingerprint(base) == package_fingerprint(same)
        assert package_fingerprint(base) != package_fingerprint(renamed)
        assert package_fingerprint(base) != package_fingerprint(edited)

    def test_parse_errors_cached_as_build_failures(self):
        package = GoPackage(
            name="syntax", files=[GoFile("bad.go", "package syntax\nfunc ( {\n")]
        )
        build = PROGRAM_CACHE.get_or_build(package)
        assert build.errors and build.program is None
        again = PROGRAM_CACHE.get_or_build(package)
        assert again is build

    def test_stdlib_registration_invalidates_cached_builds(self):
        """Late ``register_package`` shims must not serve stale lowerings.

        Compiled closures freeze stdlib package/member lookups at lowering
        time, so a build made before a registration would diverge from the
        tree-walk; the cache tags builds with the stdlib generation and
        rebuilds instead."""
        from repro.runtime import stdlib
        from repro.runtime.compiler import ProgramCache

        cache = ProgramCache(capacity=4)
        package = GoPackage(
            name="shimmed",
            files=[GoFile("a.go", "package shimmed\nfunc A() int { return 1 }\n")],
        )
        before = cache.get_or_build(package)
        assert cache.get_or_build(package) is before
        stdlib.register_package("shimpkg", {"Answer": 42})
        after = cache.get_or_build(package)
        assert after is not before
        assert after.stdlib_generation == stdlib.generation()
        assert cache.get_or_build(package) is after

    def test_capacity_evicts_least_recently_used(self):
        from repro.runtime.compiler import ProgramCache

        cache = ProgramCache(capacity=2)
        packages = [
            GoPackage(name=f"p{i}", files=[GoFile("a.go", f"package p{i}\n")])
            for i in range(3)
        ]
        builds = [cache.get_or_build(p) for p in packages]
        assert len(cache) == 2
        # p0 was evicted; rebuilding it yields a fresh entry.
        rebuilt = cache.get_or_build(packages[0])
        assert rebuilt is not builds[0]
        assert rebuilt.fingerprint == builds[0].fingerprint
