"""Slicing ON ≡ OFF: corpus-wide detection equivalence.

Slice-aware instrumentation elides schedule points (and detector hooks) on
provably single-goroutine accesses, so an ON run draws fewer seeded scheduler
choices than an OFF run — the two modes explore *different* interleavings for
the same seed.  Per-seed bit-identical rendered reports are therefore
impossible by construction (that bar is owned by the tree-vs-compiled
differential, where slicing is forced OFF).  What slicing must preserve —
and what this suite enforces, deterministically, across every template, the
mutation corpus, and all five scheduler policies — is the detection contract
the validator consumes:

* per (case, seed): identical race verdict, identical set of racy variables,
  identical program output, build errors, and run/test counts;
* per case aggregated over seeds: identical test-failure verdict
  (schedule-dependent panics — e.g. a racy slice append blowing up only
  under some interleavings — may appear on different seeds, exactly as they
  do between two OFF seeds);
* exact racing-pair sets (``bug_hashes``) may differ per seed, but a
  difference never flips the race verdict: secondary pairs vary with the
  interleaving, the race itself does not.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.testing import detection_outcome, reset_addresses

SEEDS = (0, 11)

#: Outcome keys that must match per (case, seed) even though ON and OFF
#: explore different interleavings.
_STABLE_KEYS = ("raced", "race_vars", "output", "build_errors", "runs", "tests")


def _stable(outcome):
    return {key: outcome[key] for key in _STABLE_KEYS}


def _sweep(cases, mode, seeds, runs):
    reset_addresses()
    return [
        (case.case_id, seed,
         detection_outcome(case.package, seed, "compiled", runs=runs, slicing=mode))
        for case in cases
        for seed in seeds
    ]


def _assert_detection_equivalent(cases, seeds, runs):
    off_rows = _sweep(cases, "off", seeds, runs)
    on_rows = _sweep(cases, "on", seeds, runs)
    failed = defaultdict(lambda: [False, False])
    for (case_id, seed, off), (_, _, on) in zip(off_rows, on_rows):
        assert _stable(off) == _stable(on), (
            f"slicing divergence on case={case_id} seed={seed}"
        )
        if off["bug_hashes"] != on["bug_hashes"]:
            # Secondary racing pairs are schedule-dependent; the verdict is not.
            assert off["raced"] and on["raced"], (
                f"slicing flipped the race verdict on case={case_id} seed={seed}"
            )
        failed[case_id][0] |= off["failed"]
        failed[case_id][1] |= on["failed"]
    for case_id, (off_failed, on_failed) in failed.items():
        assert off_failed == on_failed, (
            f"slicing flipped the aggregate failure verdict on case={case_id}"
        )


@pytest.fixture(scope="module")
def dataset():
    return CorpusGenerator(CorpusConfig()).generate()


class TestSlicingDetectionEquivalence:
    def test_full_corpus_detection_equivalent(self, dataset):
        """Every template × seed × all five scheduler policies."""
        _assert_detection_equivalent(
            dataset.evaluation + dataset.db_examples, SEEDS, runs=5
        )

    def test_mutant_corpus_detection_equivalent(self):
        """The PR 6 mutation corpus (renames, reorders, workload/channel
        variants, sync-injected negatives) under both slicing modes."""
        generator = CorpusGenerator(CorpusConfig(seed=606, noise_level=1))
        cases = generator.generate_mutant_corpus(32, mutants_per_base=4)
        assert len(cases) >= 30
        _assert_detection_equivalent(cases, (7, 19), runs=3)

    def test_slicing_reduces_schedule_points(self, dataset):
        """The point of the exercise: strictly fewer schedule points ON."""
        cases = (dataset.evaluation + dataset.db_examples)[:12]
        off_rows = _sweep(cases, "off", (0,), runs=3)
        on_rows = _sweep(cases, "on", (0,), runs=3)
        off_steps = sum(row[2]["steps"] for row in off_rows)
        on_steps = sum(row[2]["steps"] for row in on_rows)
        assert on_steps < off_steps


class TestSlicingSelection:
    def test_resolve_slicing_defaults_on(self, monkeypatch):
        from repro.execution import resolve_slicing

        monkeypatch.delenv("DRFIX_SLICING", raising=False)
        assert resolve_slicing() is True
        assert resolve_slicing("off") is False
        assert resolve_slicing("on") is True
        assert resolve_slicing(False) is False
        assert resolve_slicing(True) is True

    def test_resolve_slicing_env_var(self, monkeypatch):
        from repro.execution import SLICING_ENV_VAR, resolve_slicing

        monkeypatch.setenv(SLICING_ENV_VAR, "off")
        assert resolve_slicing() is False
        monkeypatch.setenv(SLICING_ENV_VAR, "on")
        assert resolve_slicing() is True

    def test_resolve_slicing_rejects_unknown(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.execution import SLICING_ENV_VAR, resolve_slicing

        with pytest.raises(ConfigError, match=r"\(expected on or off\)"):
            resolve_slicing("fast")
        monkeypatch.setenv(SLICING_ENV_VAR, "fast")
        with pytest.raises(ConfigError, match=r"\(expected on or off\)"):
            resolve_slicing()

    def test_config_slicing_validation_matches_resolver_message(self):
        from repro.core.config import DrFixConfig
        from repro.errors import ConfigError
        from repro.execution import resolve_slicing

        assert DrFixConfig(slicing="off").validated().slicing == "off"
        with pytest.raises(ConfigError) as config_err:
            DrFixConfig(slicing="fast").validated()
        with pytest.raises(ConfigError) as resolver_err:
            resolve_slicing("fast")
        assert str(config_err.value) == str(resolver_err.value)

    def test_engine_env_failure_matches_config_message(self, monkeypatch):
        """DRFIX_ENGINE=warp fails fast with the config-validation wording."""
        from repro.core.config import DrFixConfig
        from repro.errors import ConfigError
        from repro.execution import ENGINE_ENV_VAR, resolve_engine

        with pytest.raises(ConfigError) as config_err:
            DrFixConfig(engine="warp").validated()
        monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
        with pytest.raises(ConfigError) as env_err:
            resolve_engine()
        assert str(config_err.value) == str(env_err.value)
        assert "(expected tree or compiled)" in str(env_err.value)
