"""Tests for the CLI entry points and the shared error hierarchy."""

from pathlib import Path

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.errors import (
    ConfigError,
    CorpusError,
    DeadlockError,
    GoPanic,
    GoRuntimeError,
    GoSyntaxError,
    LLMError,
    PatchError,
    ReproError,
    RetrievalError,
    ValidationError,
)


class TestErrors:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (GoSyntaxError, GoRuntimeError, GoPanic, DeadlockError,
                         ValidationError, PatchError, RetrievalError, CorpusError,
                         LLMError, ConfigError):
            assert issubclass(exc_type, ReproError)

    def test_syntax_error_carries_position(self):
        error = GoSyntaxError("unexpected token", filename="svc.go", line=4, column=9)
        assert "svc.go:4:9" in str(error)
        assert error.line == 4 and error.column == 9

    def test_panic_is_a_runtime_error(self):
        assert issubclass(GoPanic, GoRuntimeError)

    def test_version_is_exposed(self):
        assert __version__


RACY_GO = """
package demo

import "sync"

func Run(items []string) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total = total + len(item)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
"""

RACY_TEST = """
package demo

import "testing"

func TestRun(t *testing.T) {
	Run([]string{"a", "bb", "ccc"})
}
"""


@pytest.fixture
def racy_dir(tmp_path: Path) -> Path:
    (tmp_path / "run.go").write_text(RACY_GO)
    (tmp_path / "run_test.go").write_text(RACY_TEST)
    return tmp_path


class TestCLI:
    def test_parser_declares_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("corpus", "detect", "fix", "evaluate", "serve", "version"):
            assert command in text

    def test_detect_reports_the_race(self, racy_dir, capsys):
        exit_code = main(["detect", str(racy_dir), "--runs", "10"])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "DATA RACE" in captured
        assert "stable bug hash" in captured

    def test_fix_produces_and_writes_a_patch(self, racy_dir, capsys):
        exit_code = main([
            "fix", str(racy_dir), "--model", "gpt-4o", "--runs", "10",
            "--no-rag", "--write",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "fixed via" in captured
        patched = (racy_dir / "run.go").read_text()
        assert "item := item" in patched
        # After writing the patch the detector no longer finds the race.
        assert main(["detect", str(racy_dir), "--runs", "10"]) == 0

    def test_detect_on_clean_directory(self, tmp_path, capsys):
        (tmp_path / "lib.go").write_text("package demo\n\nfunc Two() int {\n\treturn 2\n}\n")
        (tmp_path / "lib_test.go").write_text(
            "package demo\n\nimport \"testing\"\n\nfunc TestTwo(t *testing.T) {\n"
            "\tif Two() != 2 {\n\t\tt.Errorf(\"wrong\")\n\t}\n}\n"
        )
        assert main(["detect", str(tmp_path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fix_on_clean_directory_is_a_noop(self, tmp_path, capsys):
        (tmp_path / "lib.go").write_text("package demo\n\nfunc Two() int {\n\treturn 2\n}\n")
        assert main(["fix", str(tmp_path), "--no-rag"]) == 0
        assert "nothing to fix" in capsys.readouterr().out

    def test_missing_directory_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["detect", str(tmp_path / "empty")])

    def test_corpus_command_writes_packages(self, tmp_path, capsys):
        exit_code = main(["corpus", "--scale", "0.05", "--output", str(tmp_path / "corpus")])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "evaluation cases" in captured
        written = list((tmp_path / "corpus").rglob("*.go"))
        assert written, "expected corpus .go files to be written"

    def test_corpus_generate_emits_labeled_mutant_corpus(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "mutants"
        exit_code = main([
            "corpus", "generate", "--seed", "2025", "--count", "24",
            "--noise-level", "1", "--validate-sample", "4",
            "--output", str(out_dir),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "generated 24 labeled cases" in captured
        assert "validated 4 case(s): 4 ok" in captured
        labels = sorted(out_dir.rglob("labels.json"))
        assert len(labels) == 24
        record = json.loads(labels[0].read_text())
        assert {"case_id", "category", "expected_race", "mutations"} <= set(record)
        assert list(labels[0].parent.glob("*.go")), "expected case .go files"


class TestVersion:
    def test_version_subcommand(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.startswith("drfix ")
        # Semantic-version shaped, whether it came from package metadata
        # (pip install -e .) or the __version__ fallback (bare checkout).
        assert out.split()[1][0].isdigit()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip().startswith("drfix ")

    def test_version_matches_fallback_shape(self):
        from repro.cli import drfix_version

        version = drfix_version()
        assert version and version[0].isdigit()


class TestArgumentValidation:
    """--jobs/--runs are validated uniformly at the argparse boundary."""

    @pytest.mark.parametrize("argv", [
        ["detect", ".", "--jobs", "0"],
        ["fix", ".", "--jobs", "0"],
        ["evaluate", "--jobs", "0"],
        ["bench", "--jobs", "0"],
        ["serve", "--jobs", "0"],
    ])
    def test_jobs_zero_is_rejected_everywhere(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs must not be 0" in err

    @pytest.mark.parametrize("argv", [
        ["detect", ".", "--runs", "0"],
        ["detect", ".", "--runs", "-3"],
        ["fix", ".", "--runs", "0"],
        ["serve", "--runs", "0"],
        ["serve", "--max-queue", "0"],
        ["serve", "--max-in-flight", "-1"],
    ])
    def test_nonpositive_counts_are_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["detect", ".", "--jobs", "two"],
        ["detect", ".", "--runs", "many"],
    ])
    def test_non_integers_are_rejected(self, argv, capsys):
        with pytest.raises(SystemExit):
            main(argv)
        assert "expected an integer" in capsys.readouterr().err

    def test_negative_jobs_still_means_all_cpus(self, racy_dir):
        # Negative worker counts remain valid (one worker per CPU).
        assert main(["detect", str(racy_dir), "--runs", "6", "--jobs", "-1"]) == 1


class TestServeCLI:
    def test_serve_stdio_session(self, monkeypatch, capsys):
        import io
        import json

        request = {
            "kind": "detect",
            "package": "demo",
            "files": {"run.go": RACY_GO, "run_test.go": RACY_TEST},
            "runs": 6,
        }
        lines = [json.dumps(request), json.dumps({"kind": "metrics"}),
                 json.dumps({"kind": "shutdown"})]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        exit_code = main(["serve", "--mode", "stdio", "--no-rag", "--max-queue", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        responses = [json.loads(line) for line in captured.out.splitlines() if line]
        assert responses[0]["status"] == "ok"
        assert responses[0]["payload"]["race_hashes"]
        assert responses[1]["kind"] == "metrics"
        assert "2 request(s) served" in captured.err
