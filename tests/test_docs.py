"""Documentation invariants: files exist, links resolve, exports match.

Keeps the docs satellite honest — CI runs ``tools/check_links.py`` too, but
running the same checks under pytest catches breakage locally before push.
"""

from __future__ import annotations

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_links  # noqa: E402


REQUIRED_DOCS = ["README.md", "EXPERIMENTS.md", "docs/architecture.md", "ROADMAP.md"]


@pytest.mark.parametrize("name", REQUIRED_DOCS)
def test_required_docs_exist_and_are_substantial(name):
    path = REPO_ROOT / name
    assert path.exists(), f"{name} is missing"
    assert len(path.read_text()) > 500, f"{name} looks like a stub"


def test_no_broken_markdown_links():
    for path in check_links.markdown_files(check_links.DEFAULT_TARGETS):
        assert check_links.check_file(path) == [], f"broken links in {path.name}"


def test_link_checker_cli_passes():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_links.py")],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_link_checker_flags_broken_links(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](nope.md) and [bad anchor](#nowhere)\n\n# Real\n")
    problems = check_links.check_file(doc)
    assert {p[0] for p in problems} == {"nope.md", "#nowhere"}
    ok = tmp_path / "ok.md"
    ok.write_text("[self](#real-heading)\n\n# Real heading\n")
    assert check_links.check_file(ok) == []


@pytest.mark.parametrize("package", [
    "repro", "repro.core", "repro.corpus", "repro.corpus.templates",
    "repro.embedding", "repro.evaluation", "repro.golang", "repro.llm",
    "repro.llm.strategies", "repro.runtime", "repro.service",
])
def test_package_all_exports_resolve(package):
    """Every name a package advertises in ``__all__`` must actually exist."""
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} has no __all__"
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{package}.__all__ names missing attributes: {missing}"


def test_experiments_md_documents_the_knobs():
    text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    for knob in ("DRFIX_BENCH_SCALE", "DRFIX_JOBS", "DRFIX_CACHE_DIR"):
        assert knob in text
