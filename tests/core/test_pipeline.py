"""End-to-end tests of the Dr.Fix pipeline (Listing 13)."""

import pytest

from repro.core import DrFix, DrFixConfig, ExampleDatabase
from repro.diagnosis.categories import RaceCategory
from repro.corpus.generator import generate_cases
from repro.runtime.harness import run_package_tests


@pytest.fixture(scope="module")
def pipeline_config():
    return DrFixConfig(model="gpt-4o", validator_runs=8, detection_runs=10)


@pytest.fixture(scope="module")
def pipeline_database(pipeline_config):
    db_cases = generate_cases(
        [RaceCategory.CAPTURE_BY_REFERENCE, RaceCategory.MISSING_SYNCHRONIZATION,
         RaceCategory.CONCURRENT_MAP_ACCESS, RaceCategory.PARALLEL_TEST_SUITE,
         RaceCategory.CONCURRENT_SLICE_ACCESS, RaceCategory.OTHERS],
        count_per_category=2, seed=3000, noise_level=1,
    )
    return ExampleDatabase.from_cases(db_cases, pipeline_config)


class TestPipelineFixesSimpleRaces:
    def test_listing1_style_race_is_fixed_and_validated(self, err_capture_case,
                                                        pipeline_config, pipeline_database):
        drfix = DrFix(err_capture_case.package, config=pipeline_config,
                      database=pipeline_database)
        outcome = drfix.fix_case(err_capture_case)
        assert outcome.fixed
        assert outcome.strategy == "redeclare"
        assert outcome.patch is not None
        # The produced patch genuinely eliminates the race.
        result = run_package_tests(outcome.patch.package, runs=10)
        assert not result.has_race(outcome.bug_hash)

    def test_loop_variable_race_is_fixed_without_rag(self, loop_var_case, pipeline_config):
        drfix = DrFix(loop_var_case.package, config=pipeline_config.without_rag())
        outcome = drfix.fix_case(loop_var_case)
        assert outcome.fixed and outcome.strategy == "loop_var_copy"

    def test_waitgroup_misplacement_is_fixed(self, waitgroup_case, pipeline_config,
                                             pipeline_database):
        drfix = DrFix(waitgroup_case.package, config=pipeline_config,
                      database=pipeline_database)
        outcome = drfix.fix_case(waitgroup_case)
        assert outcome.fixed and outcome.strategy == "move_wg_add"

    def test_outcome_records_attempts_and_counters(self, err_capture_case, pipeline_config,
                                                   pipeline_database):
        drfix = DrFix(err_capture_case.package, config=pipeline_config,
                      database=pipeline_database)
        outcome = drfix.fix_case(err_capture_case)
        assert outcome.attempts
        assert outcome.model_calls >= 1
        assert outcome.validations >= 1
        assert outcome.lines_changed > 0
        assert outcome.location in {"test", "leaf", "lca"}
        assert outcome.scope in {"function", "file"}


class TestPipelineAblationBehaviour:
    def test_complex_map_race_needs_rag(self, shard_map_case, pipeline_config,
                                        pipeline_database):
        without_rag = DrFix(shard_map_case.package,
                            config=pipeline_config.without_rag()).fix_case(shard_map_case)
        with_rag = DrFix(shard_map_case.package, config=pipeline_config,
                         database=pipeline_database).fix_case(shard_map_case)
        assert not without_rag.fixed
        assert with_rag.fixed and with_rag.strategy == "sync_map_convert"
        assert with_rag.guided_by_example

    def test_file_scope_fix_is_not_found_at_function_scope(self, pipeline_config,
                                                           pipeline_database):
        case = generate_cases([RaceCategory.MISSING_SYNCHRONIZATION], 2, seed=610)[1]
        assert case.requires_file_scope
        func_only = DrFix(case.package, config=pipeline_config.function_scope_only(),
                          database=pipeline_database).fix_case(case)
        full = DrFix(case.package, config=pipeline_config,
                     database=pipeline_database).fix_case(case)
        assert not func_only.fixed
        assert full.fixed

    def test_unreproducible_race_is_reported(self, pipeline_config, err_capture_case):
        # The fixed package has no race to reproduce.
        drfix = DrFix(err_capture_case.fixed_package, config=pipeline_config)
        fixed_case = type(err_capture_case)(
            case_id="synthetic", category=err_capture_case.category,
            package=err_capture_case.fixed_package,
            fixed_package=err_capture_case.fixed_package,
            racy_file=err_capture_case.racy_file,
            racy_function=err_capture_case.racy_function,
            racy_variable=err_capture_case.racy_variable,
            fix_strategy=err_capture_case.fix_strategy,
        )
        outcome = drfix.fix_case(fixed_case)
        assert not outcome.fixed
        assert "could not be reproduced" in outcome.failure_reason

    def test_vendor_races_are_not_patched(self, pipeline_config, pipeline_database):
        from repro.corpus.templates.unfixable import make_external_vendor_case

        case = make_external_vendor_case(611, 1)
        outcome = DrFix(case.package, config=pipeline_config,
                        database=pipeline_database).fix_case(case)
        assert not outcome.fixed

    def test_multi_file_races_are_not_fixed(self, pipeline_config, pipeline_database):
        from repro.corpus.templates.unfixable import make_multi_file_case

        case = make_multi_file_case(612, 1)
        outcome = DrFix(case.package, config=pipeline_config,
                        database=pipeline_database).fix_case(case)
        assert not outcome.fixed

    def test_deterministic_outcomes(self, err_capture_case, pipeline_config, pipeline_database):
        first = DrFix(err_capture_case.package, config=pipeline_config,
                      database=pipeline_database).fix_case(err_capture_case)
        second = DrFix(err_capture_case.package, config=pipeline_config,
                       database=pipeline_database).fix_case(err_capture_case)
        assert first.fixed == second.fixed
        assert first.strategy == second.strategy


def _outcome_signature(outcome):
    """Everything observable about a FixOutcome except wall-clock durations."""
    return (
        outcome.fixed, outcome.strategy, outcome.location, outcome.scope,
        outcome.guided_by_example, outcome.example_id, outcome.lines_changed,
        outcome.failure_reason, outcome.model_calls, outcome.validations,
        [(a.location, a.scope, a.example_id, a.strategy, a.used_feedback,
          a.patched, a.validated, a.failure) for a in outcome.attempts],
    )


class TestConcurrentCandidateValidation:
    """The (location, scope) batch path must be bit-identical to the serial loop."""

    @pytest.mark.parametrize("case_fixture", ["err_capture_case", "waitgroup_case",
                                              "shard_map_case"])
    def test_parallel_batch_equals_serial(self, request, case_fixture,
                                          pipeline_config, pipeline_database):
        case = request.getfixturevalue(case_fixture)
        serial = DrFix(case.package, config=pipeline_config,
                       database=pipeline_database, jobs=1).fix_case(case)
        parallel = DrFix(case.package, config=pipeline_config,
                         database=pipeline_database, jobs=2,
                         executor="thread").fix_case(case)
        assert _outcome_signature(serial) == _outcome_signature(parallel)

    def test_unfixed_case_matches_serial_including_failures(self, pipeline_config,
                                                            pipeline_database,
                                                            shard_map_case):
        # Without RAG this case exhausts every attempt: the batch path must
        # replay the same failure log, counters, and failure reason.
        config = pipeline_config.without_rag()
        serial = DrFix(shard_map_case.package, config=config, jobs=1).fix_case(shard_map_case)
        parallel = DrFix(shard_map_case.package, config=config, jobs=2,
                         executor="thread").fix_case(shard_map_case)
        assert not serial.fixed
        assert _outcome_signature(serial) == _outcome_signature(parallel)

    def test_adaptive_run_count_bounds_validator_work(self, err_capture_case,
                                                      pipeline_config, pipeline_database):
        from repro.core.validator import planned_validator_runs

        adaptive = pipeline_config.with_adaptive_runs(hit_rate=0.8, confidence=0.999)
        # 1 - (1 - 0.8)^5 > 0.999: five runs meet the bound, well under the
        # fixed validator_runs budget of eight.
        assert planned_validator_runs(adaptive) == 5
        assert planned_validator_runs(pipeline_config) == 8
        outcome = DrFix(err_capture_case.package, config=adaptive,
                        database=pipeline_database).fix_case(err_capture_case)
        assert outcome.fixed
        # The validated patch still eliminates the race under the full budget.
        result = run_package_tests(outcome.patch.package, runs=10)
        assert not result.has_race(outcome.bug_hash)

    def test_validate_batch_preserves_submission_order(self, err_capture_case,
                                                       pipeline_config):
        from repro.core.validator import FixValidator

        report = err_capture_case.race_report(runs=10)
        validator = FixValidator(pipeline_config)
        racy, fixed = err_capture_case.package, err_capture_case.fixed_package
        results = validator.validate_batch(
            [racy, fixed, racy], report.bug_hash(), jobs=3, executor="thread"
        )
        # Submission order is preserved and the batch stops at the first
        # winner — the third candidate is never paid for, exactly as in the
        # serial first-win loop.
        assert [r.ok for r in results] == [False, True]
        # Batch validation leaves the serial-equivalent accounting to callers.
        assert validator.validations == 0
