"""Tests for concurrency skeleton creation (Section 4.3)."""

from repro.core.skeleton import Skeletonizer, skeletonize_source
from repro.golang.parser import parse_file

LISTING3 = """
package svc

func (s *storeObject) ProcessStoreData(ctx *Context, req *Request) error {
	err := s.Validate(req)
	if err != nil {
		return err
	}
	var bazaarStores BazaarStores
	var uuidDefectRateMap UUIDMap
	group.Go(func() error {
		docs := s.GetNecessaryDocs()
		if flipr.GetBool(xpAdditionalDocs) {
			otherDocs := s.GetAdditionalDocs()
			docs = append(docs, otherDocs)
		}
		bazaarStores, err = s.LoadStores(ctx, req, docs)
		return err
	})
	group.Go(func() error {
		uuidDefectRateMap, err = s.LoadOAData(ctx, s.DocstoreClient, req)
		return err
	})
	err = group.Wait()
	return nil
}
"""


class TestSkeletonization:
    def test_racy_variable_is_renamed_to_racyvar(self):
        skeleton = skeletonize_source(LISTING3, racy_lines=[17, 21])
        assert "racyVar1" in skeleton
        assert "err =" not in skeleton and "err :=" not in skeleton and ", err" not in skeleton

    def test_business_identifiers_are_canonicalized(self):
        skeleton = skeletonize_source(LISTING3, racy_lines=[17, 21])
        for name in ("bazaarStores", "uuidDefectRateMap", "LoadStores", "ProcessStoreData"):
            assert name not in skeleton
        assert "func1" in skeleton and "type1" in skeleton

    def test_concurrency_vocabulary_is_preserved(self):
        skeleton = skeletonize_source(LISTING3, racy_lines=[17, 21])
        assert ".Go(func()" in skeleton
        assert ".Wait()" in skeleton

    def test_irrelevant_blocks_are_pruned(self):
        skeleton = skeletonize_source(LISTING3, racy_lines=[17, 21])
        # The flipr.GetBool block touches neither concurrency nor racy variables.
        assert "func4" not in skeleton or "append" not in skeleton

    def test_skeletons_are_invariant_to_renaming(self):
        renamed = (
            LISTING3.replace("bazaarStores", "warehouseItems")
            .replace("uuidDefectRateMap", "defectsByID")
            .replace("ProcessStoreData", "HandleInventory")
            .replace("storeObject", "inventoryObject")
            .replace("LoadStores", "FetchItems")
            .replace("LoadOAData", "FetchDefects")
        )
        assert skeletonize_source(LISTING3, racy_lines=[17, 21]) == skeletonize_source(
            renamed, racy_lines=[17, 21]
        )

    def test_explicit_racy_variable_overrides_inference(self):
        skeleton = skeletonize_source(LISTING3, racy_variables=["bazaarStores"])
        assert "racyVar" in skeleton

    def test_racy_variable_inference_prefers_written_shared_names(self):
        skeletonizer = Skeletonizer()
        file = parse_file(LISTING3)
        decl = file.find_func("ProcessStoreData")
        inferred = skeletonizer.infer_racy_variables(decl, [17, 21])
        assert inferred == {"err"}

    def test_skeleton_of_plain_function_keeps_signature(self):
        source = "package p\n\nfunc Sum(a int, b int) int {\n\treturn a + b\n}\n"
        skeleton = skeletonize_source(source)
        assert skeleton.startswith("func func1(")

    def test_result_metadata(self):
        result = Skeletonizer().skeletonize_source(LISTING3, racy_lines=[17, 21])
        assert result.kept_functions == ["ProcessStoreData"]
        assert "err" in result.racy_variables
        assert result.rename_map.get("err") == "racyVar1"

    def test_file_level_skeleton_without_lines_keeps_concurrent_functions(self):
        source = (
            "package p\n\nfunc Quiet() int {\n\treturn 1\n}\n\n"
            "func Busy() {\n\tgo func() {\n\t\twork()\n\t}()\n}\n"
        )
        skeleton = skeletonize_source(source)
        assert "go func()" in skeleton
        assert "Quiet" not in skeleton
