"""Tests for race-info extraction (Section 4.2) and prompt construction."""

import pytest

from repro.core.config import DrFixConfig, FixLocation, FixScope
from repro.core.race_info import RaceInfoExtractor, resolve_function
from repro.diagnosis import clean_variable_name
from repro.errors import ConfigError
from repro.golang.parser import parse_file


class TestConfig:
    def test_default_config_is_valid(self):
        config = DrFixConfig().validated()
        assert config.locations == (FixLocation.TEST, FixLocation.LEAF, FixLocation.LCA)

    def test_invalid_configs_raise(self):
        with pytest.raises(ConfigError):
            DrFixConfig(locations=()).validated()
        with pytest.raises(ConfigError):
            DrFixConfig(validator_runs=0).validated()

    def test_ablation_constructors(self):
        base = DrFixConfig()
        assert not base.without_rag().use_rag
        assert not base.with_raw_retrieval().use_skeleton
        assert base.function_scope_only().scopes == (FixScope.FUNCTION,)
        assert FixLocation.LCA not in base.without_lca().locations
        assert base.with_model("o1-preview").model == "o1-preview"


class TestRaceInfoExtraction:
    def test_locations_and_scopes_are_extracted(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        info = RaceInfoExtractor(err_capture_case.package, drfix_config).extract(report)
        assert info.bug_hash == report.bug_hash()
        assert info.racy_variable == "err"
        locations = {item.location for item in info.items}
        assert FixLocation.LEAF in locations and FixLocation.TEST in locations
        scopes = {item.scope for item in info.items}
        assert scopes == {FixScope.FUNCTION, FixScope.FILE}

    def test_leaf_function_scope_contains_the_racy_function(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        info = RaceInfoExtractor(err_capture_case.package, drfix_config).extract(report)
        leaf_items = info.items_for(FixLocation.LEAF, FixScope.FUNCTION)
        assert leaf_items
        assert f"func (" in leaf_items[0].code or "func " in leaf_items[0].code
        assert err_capture_case.racy_function in leaf_items[0].code

    def test_test_location_points_at_the_test_file(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        info = RaceInfoExtractor(err_capture_case.package, drfix_config).extract(report)
        test_items = info.items_for(FixLocation.TEST, FixScope.FUNCTION)
        assert test_items and test_items[0].file_name.endswith("_test.go")

    def test_lca_is_the_common_ancestor(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        info = RaceInfoExtractor(err_capture_case.package, drfix_config).extract(report)
        assert info.lca_function is not None

    def test_ordered_items_follow_config_order(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        info = RaceInfoExtractor(err_capture_case.package, drfix_config).extract(report)
        ordered = info.ordered_items(drfix_config)
        assert ordered[0].location is FixLocation.TEST
        function_first = [i for i in ordered if i.location is FixLocation.LEAF]
        assert function_first[0].scope is FixScope.FUNCTION

    def test_external_files_are_flagged(self, drfix_config):
        from repro.corpus.templates.unfixable import make_external_vendor_case

        case = make_external_vendor_case(55, 1)
        report = case.race_report(runs=10)
        info = RaceInfoExtractor(case.package, drfix_config).extract(report)
        leaf_items = info.items_for(FixLocation.LEAF, FixScope.FILE)
        assert any(item.external for item in leaf_items)

    def test_truncated_reports_lose_the_test_location(self, drfix_config):
        from repro.corpus.templates.unfixable import make_truncated_ancestry_case

        case = make_truncated_ancestry_case(55, 1)
        report = case.race_report(runs=10)
        info = RaceInfoExtractor(case.package, drfix_config).extract(report)
        assert info.test_frame is None


class TestHelpers:
    def test_clean_variable_name(self):
        assert clean_variable_name("Scanner.shards(map)") == "shards"
        assert clean_variable_name("limit") == "limit"
        assert clean_variable_name("feed.updates(slice header)") == "updates"
        assert clean_variable_name("map[string]int(map)") == ""
        assert clean_variable_name("") == ""

    def test_resolve_function_handles_qualified_and_closure_names(self):
        file = parse_file(
            "package p\n\ntype S struct{}\n\nfunc (s *S) Method() {}\n\nfunc Plain() {}\n"
        )
        assert resolve_function(file, "S.Method").name == "Method"
        assert resolve_function(file, "Plain.func1").name == "Plain"
        assert resolve_function(file, "Missing") is None
