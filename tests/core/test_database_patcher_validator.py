"""Tests for the example database, the patcher, the validator, and the reviewer."""

import pytest

from repro.core.config import DrFixConfig, FixLocation, FixScope
from repro.core.database import ExampleDatabase, ExampleEntry
from repro.core.patcher import Patcher
from repro.core.race_info import CodeItem
from repro.core.review import ReviewerModel
from repro.core.validator import FixValidator
from repro.corpus.generator import generate_cases
from repro.diagnosis.categories import RaceCategory
from repro.errors import PatchError


@pytest.fixture(scope="module")
def small_database():
    cases = generate_cases(
        [RaceCategory.CAPTURE_BY_REFERENCE, RaceCategory.CONCURRENT_MAP_ACCESS,
         RaceCategory.PARALLEL_TEST_SUITE, RaceCategory.MISSING_SYNCHRONIZATION],
        count_per_category=2, seed=900, noise_level=1,
    )
    return cases, ExampleDatabase.from_cases(cases, DrFixConfig())


class TestExampleDatabase:
    def test_database_stores_every_example_with_a_skeleton(self, small_database):
        cases, database = small_database
        assert len(database) == len(cases)
        for entry in database.entries():
            assert entry.skeleton.strip()
            assert "racyVar" in entry.skeleton or "func1" in entry.skeleton

    def test_retrieval_finds_a_same_strategy_example(self, small_database):
        cases, database = small_database
        query_case = generate_cases([RaceCategory.CONCURRENT_MAP_ACCESS], 1, seed=31)[0]
        result = database.query_code(query_case.racy_source(),
                                     racy_variable=query_case.racy_variable)
        assert result is not None
        assert result.metadata["category"] == RaceCategory.CONCURRENT_MAP_ACCESS.value

    def test_empty_database_returns_none(self):
        database = ExampleDatabase(DrFixConfig())
        assert database.query_code("package p\nfunc F() {}\n") is None

    def test_save_and_load_round_trip(self, small_database, tmp_path):
        _, database = small_database
        database.save(tmp_path / "db")
        loaded = ExampleDatabase.load(tmp_path / "db", DrFixConfig())
        assert len(loaded) == len(database)
        entry = database.entries()[0]
        assert loaded.query_code(entry.buggy_code) is not None

    def test_manual_entry_addition(self):
        database = ExampleDatabase(DrFixConfig())
        database.add_example(ExampleEntry(
            example_id="x", buggy_code="package p\nfunc F() {\n\tgo f()\n}\n",
            fixed_code="package p\nfunc F() {\n\tf()\n}\n", category="others",
        ))
        assert len(database) == 1


def make_item(case, scope=FixScope.FILE, location=FixLocation.LEAF):
    return CodeItem(
        location=location,
        scope=scope,
        file_name=case.racy_file,
        function_names=[case.racy_function],
        code=case.racy_source() if scope is FixScope.FILE else case.racy_source(),
        racy_variable=case.racy_variable,
    )


class TestPatcher:
    def test_file_scope_patch_replaces_the_file(self, err_capture_case, drfix_config):
        patcher = Patcher(err_capture_case.package, drfix_config)
        item = make_item(err_capture_case, FixScope.FILE)
        patch = patcher.apply(item, err_capture_case.fixed_source())
        assert patch.changed_files == [err_capture_case.racy_file]
        assert patch.lines_changed(err_capture_case.package) > 0
        assert "-" in patch.diff(err_capture_case.package)

    def test_function_scope_patch_merges_by_declaration(self, err_capture_case, drfix_config):
        from repro.golang.parser import parse_file
        from repro.golang.printer import print_node

        fixed_ast = parse_file(err_capture_case.fixed_source(), err_capture_case.racy_file)
        fixed_func = print_node(fixed_ast.find_func(err_capture_case.racy_function))
        patcher = Patcher(err_capture_case.package, drfix_config)
        item = make_item(err_capture_case, FixScope.FUNCTION)
        patch = patcher.apply(item, fixed_func)
        new_source = patch.package.file(err_capture_case.racy_file).source
        assert "err :=" in new_source

    def test_malformed_response_raises_patch_error(self, err_capture_case, drfix_config):
        patcher = Patcher(err_capture_case.package, drfix_config)
        with pytest.raises(PatchError):
            patcher.apply(make_item(err_capture_case), "this is not valid go {{{")

    def test_empty_response_raises(self, err_capture_case, drfix_config):
        patcher = Patcher(err_capture_case.package, drfix_config)
        with pytest.raises(PatchError):
            patcher.apply(make_item(err_capture_case), "   ")

    def test_vendor_files_are_refused(self, drfix_config):
        from repro.corpus.templates.unfixable import make_external_vendor_case

        case = make_external_vendor_case(77, 1)
        patcher = Patcher(case.package, drfix_config)
        item = make_item(case)
        item = CodeItem(location=item.location, scope=item.scope,
                        file_name="vendor/connpool/pool.go", function_names=[],
                        code="package connpool\n", external=True)
        with pytest.raises(PatchError):
            patcher.apply(item, "package connpool\n\nfunc AcquireConn(n int) int {\n\treturn n\n}\n")

    def test_markdown_fences_are_stripped(self, err_capture_case, drfix_config):
        patcher = Patcher(err_capture_case.package, drfix_config)
        fenced = "```go\n" + err_capture_case.fixed_source() + "\n```"
        patch = patcher.apply(make_item(err_capture_case, FixScope.FILE), fenced)
        assert patch.changed_files == [err_capture_case.racy_file]

    def test_function_response_that_matches_nothing_raises(self, err_capture_case, drfix_config):
        patcher = Patcher(err_capture_case.package, drfix_config)
        with pytest.raises(PatchError):
            patcher.apply(make_item(err_capture_case, FixScope.FUNCTION),
                          "func CompletelyNew() {}\n")


class TestLinesChangedCounting:
    """Regression: a modified line is one changed line, not a ``-`` plus a ``+``."""

    def _patch(self, before: str, after: str):
        from repro.core.patcher import Patch
        from repro.runtime.harness import GoFile, GoPackage

        original = GoPackage(name="p", files=[GoFile("a.go", before)])
        patched = original.replace_file("a.go", after)
        return Patch(package=patched, changed_files=["a.go"]), original

    def test_modified_line_counts_once(self):
        before = "package p\n\nfunc F() int {\n\treturn 1\n}\n"
        after = "package p\n\nfunc F() int {\n\treturn 2\n}\n"
        patch, original = self._patch(before, after)
        assert patch.lines_changed(original) == 1

    def test_pure_insertions_count_in_full(self):
        before = "package p\n\nfunc F() int {\n\treturn 1\n}\n"
        after = "package p\n\nvar mu int\n\nfunc F() int {\n\treturn 1\n}\n"
        patch, original = self._patch(before, after)
        assert patch.lines_changed(original) == 2  # "var mu int" + blank line

    def test_mixed_hunk_counts_the_larger_side(self):
        before = "package p\n\nfunc F() int {\n\ta := 1\n\treturn a\n}\n"
        after = "package p\n\nfunc F() int {\n\ta := 2\n\tb := 3\n\treturn a + b\n}\n"
        patch, original = self._patch(before, after)
        # One hunk: 2 deletions vs 3 additions -> 3, not 5.
        assert patch.lines_changed(original) == 3

    def test_unchanged_package_counts_zero(self):
        source = "package p\n\nfunc F() int {\n\treturn 1\n}\n"
        patch, original = self._patch(source, source)
        assert patch.lines_changed(original) == 0


class TestValidator:
    def test_ground_truth_fix_validates(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        validator = FixValidator(drfix_config)
        result = validator.validate(err_capture_case.fixed_package, report.bug_hash())
        assert result.ok and result.feedback() == ""

    def test_unfixed_package_fails_validation_with_feedback(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        validator = FixValidator(drfix_config)
        result = validator.validate(err_capture_case.package, report.bug_hash())
        assert not result.ok and result.race_still_present
        assert "race" in result.feedback()

    def test_build_errors_fail_validation(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        broken = err_capture_case.package.replace_file(
            err_capture_case.racy_file, "package broken\nfunc ( {}\n"
        )
        result = FixValidator(drfix_config).validate(broken, report.bug_hash())
        assert not result.ok and result.build_errors
        assert "build failed" in result.feedback()

    def test_baseline_races_do_not_fail_validation(self, err_capture_case, drfix_config):
        report = err_capture_case.race_report(runs=10)
        validator = FixValidator(drfix_config)
        result = validator.validate(
            err_capture_case.fixed_package, "deadbeef",  # a different targeted bug
            baseline_hashes=[report.bug_hash()],
        )
        assert result.ok


class TestReviewer:
    def test_matching_strategy_is_usually_accepted(self, err_capture_case):
        reviewer = ReviewerModel()
        decision = reviewer.review(err_capture_case, err_capture_case.fix_strategy, 4)
        assert decision.accepted

    def test_oversized_patches_are_rejected_more_often(self):
        reviewer = ReviewerModel(accept_oversized=0.0)
        cases = generate_cases([RaceCategory.CAPTURE_BY_REFERENCE], 1, seed=123)
        decision = reviewer.review(cases[0], cases[0].fix_strategy, lines_changed=500)
        assert not decision.accepted

    def test_reviewer_is_deterministic(self, err_capture_case):
        first = ReviewerModel().review(err_capture_case, "mutex_guard", 12)
        second = ReviewerModel().review(err_capture_case, "mutex_guard", 12)
        assert first.accepted == second.accepted
