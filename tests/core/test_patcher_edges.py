"""Edge-case coverage for the Patcher guard rails and Patch diff accounting:
empty diffs, pure insertions/deletions, multi-hunk modifications, and
file-scope replacement that introduces a brand-new file."""

import pytest

from repro.core.config import DrFixConfig, FixLocation, FixScope
from repro.core.fix_generator import FixGenerator
from repro.core.patcher import Patch, Patcher
from repro.core.race_info import CodeItem
from repro.errors import PatchError
from repro.runtime.harness import GoFile, GoPackage

BASE_SOURCE = """package svc

func Alpha() int {
	return 1
}

func Beta() int {
	return 2
}

func Gamma() int {
	return 3
}
"""


@pytest.fixture()
def package():
    return GoPackage(name="svc", files=[GoFile("svc.go", BASE_SOURCE)])


def item_for(package, scope=FixScope.FILE, file_name="svc.go", external=False):
    return CodeItem(
        location=FixLocation.LEAF,
        scope=scope,
        file_name=file_name,
        function_names=["Alpha"],
        code=package.file(file_name).source if package.file(file_name) else "",
        external=external,
    )


class TestPatchDiffAccounting:
    def test_empty_diff_counts_zero_lines(self, package):
        patch = Patch(package=package, changed_files=["svc.go"])
        assert patch.diff(package) == ""
        assert patch.lines_changed(package) == 0

    def test_pure_insertion_counts_every_added_line(self, package):
        inserted = BASE_SOURCE + "\nfunc Delta() int {\n\treturn 4\n}\n"
        patched = package.replace_file("svc.go", inserted)
        patch = Patch(package=patched, changed_files=["svc.go"])
        diff = patch.diff(package)
        assert diff.count("\n+") >= 4 and "\n-" not in diff.replace("\n---", "")
        # Three declaration lines plus the separating blank line.
        assert patch.lines_changed(package) == 4

    def test_pure_deletion_counts_every_removed_line(self, package):
        shrunk = BASE_SOURCE.replace("\nfunc Gamma() int {\n\treturn 3\n}\n", "")
        patched = package.replace_file("svc.go", shrunk)
        patch = Patch(package=patched, changed_files=["svc.go"])
        assert patch.lines_changed(package) == 4

    def test_multi_hunk_modification_counts_per_hunk(self, package):
        # Two separated one-line modifications: two hunks, one line each.
        modified = BASE_SOURCE.replace("return 1", "return 10").replace("return 3", "return 30")
        patched = package.replace_file("svc.go", modified)
        patch = Patch(package=patched, changed_files=["svc.go"])
        diff = patch.diff(package)
        assert diff.count("@@") >= 2
        # Each modified line appears as one - plus one +, but bills once.
        assert patch.lines_changed(package) == 2

    def test_new_file_diff_is_a_pure_insertion(self, package):
        new_source = "package svc\n\nfunc Omega() int {\n\treturn 9\n}\n"
        patched = GoPackage(
            name=package.name,
            files=list(package.files) + [GoFile("omega.go", new_source)],
        )
        patch = Patch(package=patched, changed_files=["omega.go"])
        assert patch.lines_changed(package) == len(new_source.splitlines())


class TestPatcherGuardRails:
    def test_refuses_external_item(self, package):
        patcher = Patcher(package, DrFixConfig())
        with pytest.raises(PatchError, match="external/vendored"):
            patcher.apply(item_for(package, external=True), BASE_SOURCE)

    def test_refuses_vendored_path_prefix(self):
        vendored = GoPackage(
            name="svc", files=[GoFile("vendor/dep/dep.go", "package dep\n")]
        )
        patcher = Patcher(vendored, DrFixConfig())
        item = item_for(vendored, file_name="vendor/dep/dep.go")
        with pytest.raises(PatchError, match="external/vendored"):
            patcher.apply(item, "package dep\n\nfunc F() {}\n")

    def test_refuses_empty_response(self, package):
        patcher = Patcher(package, DrFixConfig())
        with pytest.raises(PatchError, match="empty response"):
            patcher.apply(item_for(package), "   \n")

    def test_refuses_unparseable_file_response(self, package):
        patcher = Patcher(package, DrFixConfig())
        with pytest.raises(PatchError, match="build failed"):
            patcher.apply(item_for(package), "package svc\n\nfunc Broken( {\n")

    def test_function_scope_requires_a_matching_declaration(self, package):
        patcher = Patcher(package, DrFixConfig())
        item = item_for(package, scope=FixScope.FUNCTION)
        with pytest.raises(PatchError, match="do not match any declaration"):
            patcher.apply(item, "func Unknown() int {\n\treturn 0\n}\n")

    def test_file_scope_replacement_of_a_new_file(self, package):
        """A file-scope response for a file name the package does not have yet
        creates that file (pure insertion in the diff)."""
        patcher = Patcher(package, DrFixConfig())
        item = CodeItem(
            location=FixLocation.LEAF,
            scope=FixScope.FILE,
            file_name="helper.go",
            function_names=[],
            code="",
        )
        new_source = "package svc\n\nfunc Helper() int {\n\treturn 7\n}\n"
        patch = patcher.apply(item, new_source)
        assert patch.changed_files == ["helper.go"]
        assert patch.package.file("helper.go") is not None
        assert patch.lines_changed(package) == len(new_source.splitlines())


class TestRetrievalCounter:
    def test_retrievals_count_only_successful_retrievals(self, err_capture_case):
        """Regression: the counter used to increment before checking whether
        retrieval actually produced an example, inflating evaluation reports."""
        from repro.core.database import ExampleDatabase, ExampleEntry

        config = DrFixConfig()
        database = ExampleDatabase(config)
        database.add_example(ExampleEntry(
            example_id="e1",
            buggy_code=err_capture_case.racy_source(),
            fixed_code=err_capture_case.fixed_source(),
        ))
        generator = FixGenerator(config, database=database)

        # An item with no code cannot be embedded: retrieval yields nothing.
        empty_item = CodeItem(
            location=FixLocation.LEAF, scope=FixScope.FUNCTION,
            file_name="x.go", function_names=[], code="   ",
        )
        assert generator.candidate_examples(empty_item) == [None]
        assert generator.retrievals == 0

        real_item = CodeItem(
            location=FixLocation.LEAF, scope=FixScope.FILE,
            file_name=err_capture_case.racy_file,
            function_names=[err_capture_case.racy_function],
            code=err_capture_case.racy_source(),
            racy_variable=err_capture_case.racy_variable,
        )
        examples = generator.candidate_examples(real_item)
        assert examples[0] is not None
        assert generator.retrievals == 1
