"""Tests for the tokenizer, hashing embedder, similarity, and vector store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embedding.embedder import CodeEmbedder, EmbedderConfig, token_overlap
from repro.embedding.similarity import cosine_similarity, cosine_similarity_matrix, top_k
from repro.embedding.tokenizer import bigrams, split_identifier, tokenize_code
from repro.embedding.vector_store import VectorStore
from repro.errors import RetrievalError


class TestTokenizer:
    def test_camel_case_identifiers_are_split(self):
        assert split_identifier("uuidDefectRateMap") == ["uuid", "defect", "rate", "map"]
        assert split_identifier("LoadStores") == ["load", "stores"]
        assert split_identifier("snake_case_name") == ["snake", "case", "name"]

    def test_racyvar_tokens_collapse(self):
        tokens = tokenize_code("racyVar1 = racyVar2 + v1")
        assert tokens.count("racyvar") == 2

    def test_concurrency_operators_are_tokens(self):
        tokens = tokenize_code("value := <-ch")
        assert "<-" in tokens and ":=" in tokens

    def test_bigrams(self):
        assert bigrams(["a", "b", "c"]) == ["a__b", "b__c"]


class TestEmbedder:
    def test_vectors_are_normalized(self):
        embedder = CodeEmbedder()
        vector = embedder.embed("go func() { mu.Lock() }")
        assert vector.shape == (384,)
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_empty_text_embeds_to_zero_vector(self):
        assert np.linalg.norm(CodeEmbedder().embed("")) == 0.0

    def test_determinism(self):
        embedder = CodeEmbedder()
        a = embedder.embed("var wg sync.WaitGroup")
        b = embedder.embed("var wg sync.WaitGroup")
        assert np.array_equal(a, b)

    def test_similar_skeletons_are_closer_than_different_ones(self):
        embedder = CodeEmbedder()
        skeleton_a = "v1.Go(func() error {\n\tv2, racyVar1 = v1.func1()\n\treturn racyVar1\n})"
        skeleton_b = "v9.Go(func() error {\n\tv8, racyVar1 = v9.func3()\n\treturn racyVar1\n})"
        unrelated = "for k := range m {\n\tdelete(m, k)\n}"
        close = cosine_similarity(embedder.embed(skeleton_a), embedder.embed(skeleton_b))
        far = cosine_similarity(embedder.embed(skeleton_a), embedder.embed(unrelated))
        assert close > far

    def test_embed_batch_shape(self):
        matrix = CodeEmbedder().embed_batch(["a := 1", "b := 2", "c := 3"])
        assert matrix.shape == (3, 384)

    def test_custom_dimensions(self):
        embedder = CodeEmbedder(EmbedderConfig(dimensions=64))
        assert embedder.embed("x := 1").shape == (64,)

    def test_token_overlap_bounds(self):
        assert token_overlap("a b c", "a b c") == 1.0
        assert token_overlap("alpha", "omega") == 0.0

    @given(st.text(alphabet="abcdefgh_ (){}.:=<-\n\t", max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_embedding_norm_is_zero_or_one(self, text):
        norm = np.linalg.norm(CodeEmbedder().embed(text))
        assert np.isclose(norm, 0.0) or np.isclose(norm, 1.0)


class TestSimilarity:
    def test_cosine_of_identical_vectors_is_one(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.isclose(cosine_similarity(v, v), 1.0)

    def test_cosine_of_orthogonal_vectors_is_zero(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_similarity_is_zero(self):
        assert cosine_similarity(np.zeros(3), np.array([1.0, 2.0, 3.0])) == 0.0

    def test_similarity_matrix_and_top_k(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        scores = cosine_similarity_matrix(np.array([1.0, 0.0]), matrix)
        assert top_k(scores, 2) == [0, 2]

    @given(st.lists(st.floats(-5, 5), min_size=3, max_size=3),
           st.lists(st.floats(-5, 5), min_size=3, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_cosine_similarity_is_bounded(self, a, b):
        value = cosine_similarity(np.array(a), np.array(b))
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestVectorStore:
    def test_add_query_roundtrip(self):
        store = VectorStore(dimensions=3)
        store.add("a", [1.0, 0.0, 0.0], document="doc-a", metadata={"category": "x"})
        store.add("b", [0.0, 1.0, 0.0], document="doc-b", metadata={"category": "y"})
        results = store.query([0.9, 0.1, 0.0], k=1)
        assert results[0].item_id == "a"
        assert results[0].document == "doc-a"

    def test_metadata_filtering(self):
        store = VectorStore(dimensions=2)
        store.add("a", [1.0, 0.0], metadata={"category": "x"})
        store.add("b", [1.0, 0.0], metadata={"category": "y"})
        results = store.query([1.0, 0.0], k=2, where={"category": "y"})
        assert [r.item_id for r in results] == ["b"]

    def test_replacing_an_entry(self):
        store = VectorStore(dimensions=2)
        store.add("a", [1.0, 0.0])
        store.add("a", [0.0, 1.0])
        assert len(store) == 1
        assert store.query([0.0, 1.0], k=1)[0].score > 0.99

    def test_dimension_mismatch_raises(self):
        store = VectorStore(dimensions=3)
        with pytest.raises(RetrievalError):
            store.add("a", [1.0, 2.0])
        with pytest.raises(RetrievalError):
            store.query([1.0, 2.0])

    def test_invalid_dimensions_raise(self):
        with pytest.raises(RetrievalError):
            VectorStore(dimensions=0)

    def test_query_on_empty_store(self):
        assert VectorStore(dimensions=2).query([1.0, 0.0]) == []

    def test_save_and_load(self, tmp_path):
        store = VectorStore(dimensions=2)
        store.add("a", [1.0, 0.0], document="alpha", metadata={"strategy": "redeclare"})
        path = tmp_path / "store.json"
        store.save(path)
        loaded = VectorStore.load(path)
        assert len(loaded) == 1
        assert loaded.get("a").metadata["strategy"] == "redeclare"
        assert loaded.query([1.0, 0.0], k=1)[0].item_id == "a"
