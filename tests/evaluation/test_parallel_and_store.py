"""Tests for the parallel evaluation engine and the persistent run store:
executor resolution, parallel-equals-serial determinism, cache hit/invalidation
semantics, serialisation round-trips, and the CLI ``--jobs`` / ``bench`` paths.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.core.config import DrFixConfig
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.errors import ConfigError
from repro.evaluation.executor import (
    CaseExecutor,
    ExecutorKind,
    derive_case_seed,
    resolve_jobs,
    resolve_kind,
)
from repro.evaluation.runner import EvaluationRunner, ExperimentContext
from repro.evaluation.store import (
    STORE_VERSION,
    RunStore,
    config_fingerprint,
    corpus_fingerprint,
    deserialize_case_result,
    serialize_case_result,
)
from repro.cli import main


SMALL_CORPUS = CorpusConfig(db_examples=8, eval_fixable=8, eval_unfixable=3, seed=8)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(corpus_config=SMALL_CORPUS)


def _run_with(context, jobs, executor, store=None, per_case_seeds=False):
    """Run the full arm on an independent copy of the evaluation cases."""
    config = context.base_config.with_per_case_seeds(per_case_seeds)
    runner = EvaluationRunner(
        config, context.skeleton_database, context.reviewer,
        jobs=jobs, executor=executor, store=store,
    )
    return runner.run(copy.deepcopy(context.dataset.evaluation), label="full")


def _signature(run):
    """Everything observable about a run except wall-clock durations."""
    return [
        (
            r.case.case_id, r.fixed, r.accepted, r.reproduced,
            r.outcome.strategy, r.outcome.location, r.outcome.scope,
            r.outcome.example_id, r.outcome.lines_changed,
            r.outcome.failure_reason, len(r.outcome.attempts),
        )
        for r in run.results
    ]


class TestExecutor:
    def test_resolve_jobs_explicit_env_and_negative(self, monkeypatch):
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("DRFIX_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(0) == 5
        monkeypatch.delenv("DRFIX_JOBS")
        assert resolve_jobs(None) == 1
        assert resolve_jobs(-1) >= 1
        monkeypatch.setenv("DRFIX_JOBS", "nope")
        with pytest.raises(ConfigError):
            resolve_jobs(None)

    def test_resolve_kind(self, monkeypatch):
        assert resolve_kind(None, jobs=1) is ExecutorKind.SERIAL
        assert resolve_kind(None, jobs=4) is ExecutorKind.PROCESS
        assert resolve_kind("thread", jobs=4) is ExecutorKind.THREAD
        monkeypatch.setenv("DRFIX_EXECUTOR", "thread")
        assert resolve_kind(None, jobs=2) is ExecutorKind.THREAD
        with pytest.raises(ConfigError):
            resolve_kind("banana", jobs=2)

    def test_map_preserves_submission_order(self):
        items = list(range(24))
        for kind in ("serial", "thread", "process"):
            result = CaseExecutor(kind=kind, jobs=4).map(_square, items)
            assert result == [i * i for i in items]

    def test_case_seed_is_stable_and_case_dependent(self):
        assert derive_case_seed(0, "case-a") == derive_case_seed(0, "case-a")
        assert derive_case_seed(0, "case-a") != derive_case_seed(0, "case-b")
        assert derive_case_seed(0, "case-a") != derive_case_seed(1, "case-a")


def _square(value: int) -> int:
    return value * value


def _nested_executor_jobs(_value: int) -> int:
    """Worker body: how many workers would a nested executor get here?"""
    return CaseExecutor(kind="thread", jobs=8).jobs


class TestMapUntilAndNestedBudget:
    @pytest.mark.parametrize("kind,jobs", [("serial", 1), ("thread", 4), ("process", 4)])
    def test_map_until_returns_the_serial_prefix(self, kind, jobs):
        items = list(range(12))
        result = CaseExecutor(kind=kind, jobs=jobs).map_until(
            _square, items, stop=lambda r: r >= 9
        )
        assert result == [0, 1, 4, 9]

    def test_map_until_without_a_stop_hit_maps_everything(self):
        items = list(range(6))
        result = CaseExecutor(kind="thread", jobs=3).map_until(
            _square, items, stop=lambda r: False
        )
        assert result == [i * i for i in items]

    def test_nested_budget_clamps_executors_constructed_under_it(self, monkeypatch):
        from repro.evaluation.executor import NESTED_BUDGET_ENV_VAR

        monkeypatch.setenv(NESTED_BUDGET_ENV_VAR, "2")
        assert CaseExecutor(kind="thread", jobs=8).jobs == 2
        monkeypatch.setenv(NESTED_BUDGET_ENV_VAR, "1")
        inner = CaseExecutor(kind="thread", jobs=8)
        assert inner.jobs == 1 and inner.kind is ExecutorKind.SERIAL

    def test_outer_map_exports_the_budget_to_workers(self, monkeypatch):
        # On an outer pool of 4 thread workers, a nested executor created
        # inside a worker sees at most cpu/4 workers — never 8.
        import os

        outer = CaseExecutor(kind="thread", jobs=4)
        nested_jobs = outer.map(_nested_executor_jobs, list(range(8)))
        expected = max(1, (os.cpu_count() or 1) // 4)
        assert set(nested_jobs) == {min(8, expected)}
        # The budget is restored once the outer map returns.
        assert os.environ.get("DRFIX_NESTED_BUDGET") is None


class TestParallelDeterminism:
    def test_thread_and_process_runs_match_serial(self, context):
        serial = _run_with(context, jobs=1, executor="serial")
        threaded = _run_with(context, jobs=4, executor="thread")
        forked = _run_with(context, jobs=4, executor="process")
        assert _signature(serial) == _signature(threaded) == _signature(forked)
        assert str(serial.fix_rate()) == str(threaded.fix_rate()) == str(forked.fix_rate())
        assert threaded.executor_label == "thread[4]"
        assert forked.executor_label == "process[4]"

    def test_per_case_seeds_stay_deterministic_in_parallel(self, context):
        serial = _run_with(context, jobs=1, executor="serial", per_case_seeds=True)
        parallel = _run_with(context, jobs=4, executor="thread", per_case_seeds=True)
        assert _signature(serial) == _signature(parallel)

    def test_config_jobs_field_feeds_the_runner(self, context):
        runner = EvaluationRunner(
            context.base_config.with_jobs(3), context.skeleton_database, context.reviewer
        )
        assert runner.executor.jobs == 3
        assert runner.executor.kind is ExecutorKind.PROCESS


class TestRunStore:
    def test_cold_then_warm_roundtrip(self, context, tmp_path):
        store = RunStore(tmp_path, namespace="t")
        cold = _run_with(context, 1, "serial", store=store)
        assert cold.cache_misses == len(cold.results) and cold.cache_hits == 0
        warm = _run_with(context, 1, "serial", store=store)
        assert warm.cache_hits == len(warm.results) and warm.cache_misses == 0
        assert _signature(cold) == _signature(warm)
        # The loaded patch reconstructs real diffs against the racy package.
        fixed = warm.fixed_results()
        assert fixed and all(
            r.outcome.patch is not None and r.outcome.patch.diff(r.case.package)
            for r in fixed
        )

    def test_fingerprint_change_invalidates(self, context, tmp_path):
        store = RunStore(tmp_path, namespace="t")
        _run_with(context, 1, "serial", store=store)
        fp_full = config_fingerprint(context.base_config)
        assert store.entry_count(fp_full) == len(context.dataset.evaluation)
        # A result-affecting knob changes the fingerprint → all misses.
        changed = context.base_config.without_rag()
        assert config_fingerprint(changed) != fp_full
        runner = EvaluationRunner(changed, None, context.reviewer, store=store)
        rerun = runner.run(copy.deepcopy(context.dataset.evaluation), label="no-rag")
        assert rerun.cache_hits == 0
        # Execution-only knobs do NOT change the fingerprint → all hits.
        assert config_fingerprint(context.base_config.with_jobs(8)) == fp_full

    def test_corrupt_and_stale_entries_are_misses(self, context, tmp_path):
        store = RunStore(tmp_path, namespace="t")
        run = _run_with(context, 1, "serial", store=store)
        fp = config_fingerprint(context.base_config)
        case = context.dataset.evaluation[0]
        path = store._path(fp, case.case_id)
        path.write_text("{ not json")
        assert store.load(case, fp) is None
        stale = serialize_case_result(run.results[0])
        stale["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(stale))
        assert store.load(case, fp) is None

    def test_serialization_roundtrip_preserves_outcome(self, context, tmp_path):
        run = _run_with(context, 1, "serial")
        for result in run.results:
            data = serialize_case_result(result)
            rebuilt = deserialize_case_result(
                json.loads(json.dumps(data)), result.case
            )
            assert rebuilt.fixed == result.fixed
            assert rebuilt.accepted == result.accepted
            assert rebuilt.outcome.strategy == result.outcome.strategy
            assert rebuilt.outcome.lines_changed == result.outcome.lines_changed
            assert len(rebuilt.outcome.attempts) == len(result.outcome.attempts)
            if result.outcome.patch is not None:
                assert rebuilt.outcome.patch.diff(result.case.package) == \
                    result.outcome.patch.diff(result.case.package)

    def test_corpus_namespace_separates_different_corpora(self):
        assert corpus_fingerprint(SMALL_CORPUS) != corpus_fingerprint(CorpusConfig())
        assert corpus_fingerprint(SMALL_CORPUS) == corpus_fingerprint(
            copy.deepcopy(SMALL_CORPUS)
        )

    def test_context_wires_store_and_reuses_across_contexts(self, tmp_path):
        first = ExperimentContext(corpus_config=SMALL_CORPUS, cache_dir=str(tmp_path))
        cold = first.full_run()
        second = ExperimentContext(corpus_config=SMALL_CORPUS, cache_dir=str(tmp_path))
        warm = second.full_run()
        assert warm.cache_hits == len(warm.results)
        assert _signature(cold) == _signature(warm)


class TestCLI:
    def test_evaluate_with_jobs_and_cache(self, tmp_path, capsys):
        args = ["evaluate", "--scale", "0.05", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "run store:" in out and "Table 7" in out

    def test_bench_reports_speedup(self, tmp_path, capsys):
        args = ["bench", "--scale", "0.05", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "store warm" in out and "determinism: all four runs report" in out
