"""Tests for the evaluation harness: metrics, runner, ablations, and experiment tables."""

import pytest

from repro.corpus.generator import CorpusConfig
from repro.evaluation.ablation import (
    location_ablation,
    model_ablation,
    rag_ablation,
    scope_ablation,
    skeleton_noise_ablation,
)
from repro.evaluation.experiments import (
    all_experiment_tables,
    figure3_rag,
    figure4_scope,
    rq1_headline,
    table1_codebase,
    table2_components,
    table3_categories,
    table5_unfixed,
    table6_survey,
    table7_loc,
)
from repro.evaluation.metrics import FixRate, Histogram, mean, percentile, stddev
from repro.evaluation.reporting import Table, format_table, render_report
from repro.evaluation.runner import ExperimentContext
from repro.evaluation.survey import run_survey


@pytest.fixture(scope="module")
def context():
    """A small but complete experiment context shared by the evaluation tests."""
    return ExperimentContext(
        corpus_config=CorpusConfig(db_examples=14, eval_fixable=14, eval_unfixable=6, seed=8),
    )


class TestMetrics:
    def test_fix_rate(self):
        rate = FixRate(fixed=3, total=12, label="arm")
        assert rate.rate == 0.25 and rate.percent == 25.0
        assert "3/12" in str(rate)
        assert FixRate().rate == 0.0

    def test_percentiles_match_convention(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7

    def test_mean_and_stddev(self):
        assert mean([2, 4, 6]) == 4
        assert stddev([2, 2, 2]) == 0
        assert stddev([1]) == 0

    def test_histogram(self):
        hist = Histogram()
        hist.add("a")
        hist.add("a")
        hist.add("b")
        assert hist.fraction("a") == pytest.approx(2 / 3)
        assert hist.sorted_items()[0] == ("a", 2)


class TestReporting:
    def test_format_table_alignment_and_markdown(self):
        table = Table(title="Demo", headers=["Name", "Value"], paper_reference="Table 0")
        table.add_row("alpha", 1)
        table.add_row("beta", 22)
        text = format_table(table)
        assert "Demo" in text and "alpha" in text
        markdown = table.render_markdown()
        assert "| Name | Value |" in markdown
        report = render_report([table])
        assert report.startswith("Dr.Fix reproduction report")


class TestRunnerAndAblations:
    def test_full_run_produces_results_for_every_case(self, context):
        run = context.full_run()
        assert len(run.results) == len(context.dataset.evaluation)
        assert 0 < run.fix_rate().fixed <= run.fix_rate().total
        # Every fixed case got a review decision.
        assert all(r.review is not None for r in run.fixed_results())

    def test_runs_are_cached_by_label(self, context):
        assert context.full_run() is context.full_run()

    def test_rag_ablation_ordering(self, context):
        result = rag_ablation(context)
        rates = {arm.label: arm.measured.rate for arm in result.arms}
        assert rates["no-rag"] <= rates["rag-skeleton"]
        assert len(result.arms) == 3

    def test_scope_ablation_contains_all_arms(self, context):
        result = scope_ablation(context)
        assert {arm.label for arm in result.arms} == {
            "function-only", "file-only", "file-with-feedback", "function-file-feedback",
        }
        rates = {arm.label: arm.measured.rate for arm in result.arms}
        assert rates["file-only"] <= rates["function-file-feedback"]

    def test_location_ablation(self, context):
        result = location_ablation(context)
        rates = {arm.label: arm.measured.rate for arm in result.arms}
        assert rates["without-lca"] <= rates["with-lca"]

    def test_model_ablation(self, context):
        result = model_ablation(context)
        rates = {arm.label: arm.measured.rate for arm in result.arms}
        assert rates["gpt-4o"] <= rates["o1-preview"] + 1e-9

    def test_skeleton_retrieval_precision_beats_raw(self, context):
        precision = skeleton_noise_ablation(context)
        assert precision["skeleton"] >= precision["raw"]
        assert precision["skeleton"] > 0.5


class TestExperimentTables:
    def test_table1_reports_corpus_statistics(self, context):
        table = table1_codebase(context)
        assert table.paper_reference == "Table 1"
        assert len(table.rows) >= 2

    def test_table2_lists_component_substitutions(self):
        table = table2_components()
        assert any("ChromaDB" in " ".join(row) for row in table.rows)

    def test_table3_covers_every_category(self, context):
        table = table3_categories(context)
        assert len(table.rows) == 7

    def test_figures_and_headline_tables_render(self, context):
        for table in (figure3_rag(context), figure4_scope(context), rq1_headline(context)):
            text = table.render()
            assert "%" in text

    def test_table5_uses_ground_truth_reasons(self, context):
        table = table5_unfixed(context)
        assert any("More than 2 File Changes" in row[0] for row in table.rows)

    def test_table6_survey_from_run(self, context):
        run = context.full_run()
        survey = run_survey(run)
        assert 0 < survey.quality_score <= 5
        table = table6_survey(context, run)
        assert any("Quality" in row[0] for row in table.rows)

    def test_table7_percentiles_are_monotone(self, context):
        table = table7_loc(context)
        drfix_column = [float(row[2]) for row in table.rows]
        assert drfix_column == sorted(drfix_column)

    def test_all_experiment_tables_render_in_one_report(self, context):
        tables = all_experiment_tables(context)
        assert len(tables) == 13
        report = render_report(tables)
        assert "Figure 3" in report and "RQ1" in report and "Table 7" in report
        assert "Diagnosis layer" in report
