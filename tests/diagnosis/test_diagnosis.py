"""Tests for the diagnosis layer: report classification, the fix-pattern
registry, and example-pair inference."""

import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.templates import TEMPLATE_REGISTRY
from repro.diagnosis import (
    Diagnosis,
    RaceCategory,
    RaceDiagnoser,
    all_patterns,
    category_from_value,
    clean_variable_name,
    fix_pattern,
    get_pattern,
    infer_pattern_from_example,
    pattern_names,
    patterns_for_category,
)
from repro.diagnosis.registry import FixPattern


# ---------------------------------------------------------------------------
# Report diagnosis
# ---------------------------------------------------------------------------


def _fixable_cases(seed: int, noise_level: int):
    for templates in TEMPLATE_REGISTRY.values():
        for template in templates:
            yield template(seed, noise_level)


class TestReportDiagnosis:
    @pytest.mark.parametrize("seed,noise", [(321, 1), (97, 2)])
    def test_every_fixable_template_diagnosis_agrees_with_ground_truth(self, seed, noise):
        """The acceptance bar: each corpus report maps to exactly one Diagnosis
        whose category matches the template's ground-truth category."""
        for case in _fixable_cases(seed, noise):
            report = case.race_report(runs=12)
            assert report is not None, f"{case.case_id} did not reproduce"
            diagnosis = RaceDiagnoser(case.package).diagnose(report)
            assert isinstance(diagnosis, Diagnosis)
            assert diagnosis.category is case.category, (
                f"{case.case_id}: diagnosed {diagnosis.category.value}, "
                f"ground truth {case.category.value} ({diagnosis.evidence})"
            )

    def test_generated_corpus_fixable_cases_agree(self):
        """Corpus-wide: both splits of a generated dataset diagnose correctly."""
        dataset = CorpusGenerator(
            CorpusConfig(db_examples=12, eval_fixable=14, eval_unfixable=0, seed=19)
        ).generate()
        for case in dataset.all_cases():
            report = case.race_report(runs=12)
            assert report is not None, f"{case.case_id} did not reproduce"
            diagnosis = RaceDiagnoser(case.package).diagnose(report)
            assert diagnosis.category is case.category, case.case_id

    def test_diagnosis_carries_symbols_scopes_and_confidence(self):
        case = TEMPLATE_REGISTRY[RaceCategory.CONCURRENT_MAP_ACCESS][0](44, 1)
        report = case.race_report(runs=12)
        diagnosis = RaceDiagnoser(case.package).diagnose(report)
        assert diagnosis.category is RaceCategory.CONCURRENT_MAP_ACCESS
        assert diagnosis.symbols  # involved functions
        assert case.racy_file in diagnosis.scopes
        assert 0.0 < diagnosis.confidence <= 1.0
        assert diagnosis.access_pattern in ("read-write", "write-write", "read-read")
        assert diagnosis.evidence

    def test_summary_lists_candidate_patterns(self):
        case = TEMPLATE_REGISTRY[RaceCategory.LOOP_VARIABLE_CAPTURE][0](45, 1)
        report = case.race_report(runs=12)
        diagnosis = RaceDiagnoser(case.package).diagnose(report)
        assert "loop_var_copy" in diagnosis.candidate_patterns
        summary = diagnosis.summary()
        assert "loop-variable-capture" in summary and "candidate patterns" in summary

    def test_clean_variable_name(self):
        assert clean_variable_name("Scanner.shards(map)") == "shards"
        assert clean_variable_name("limit") == "limit"
        assert clean_variable_name("map[string]int(map)") == ""
        assert clean_variable_name("") == ""


class TestNewFamilyDiagnosis:
    """Explicit coverage for the four PR-6 race families: each diagnoses to
    its ground-truth category and surfaces its strategy as a candidate, and
    the sync-injected (race-free) variant yields nothing to diagnose."""

    @pytest.mark.parametrize("family,strategy", [
        ("make_double_checked_case", "double_checked_locking"),
        ("make_channel_close_case", "channel_close_signal"),
        ("make_bulk_wgadd_case", "bulk_wg_add"),
        ("make_syncmap_entry_case", "syncmap_value_lock"),
    ])
    def test_family_diagnosis_and_candidate_pattern(self, family, strategy):
        from repro.corpus.templates import new_families

        case = getattr(new_families, family)(321, 1)
        report = case.race_report(runs=12)
        assert report is not None, f"{case.case_id} did not reproduce"
        diagnosis = RaceDiagnoser(case.package).diagnose(report)
        assert diagnosis.category is case.category, diagnosis.evidence
        assert strategy in diagnosis.candidate_patterns

    @pytest.mark.parametrize("family", [
        "make_double_checked_case",
        "make_channel_close_case",
        "make_bulk_wgadd_case",
        "make_syncmap_entry_case",
    ])
    def test_sync_injected_variant_produces_no_diagnosis(self, family):
        from repro.corpus.mutate import TemplateMutator
        from repro.corpus.templates import new_families
        from repro.runtime.harness import run_package_tests

        case = getattr(new_families, family)(321, 1)
        mutant = TemplateMutator(2).mutate(case, ["sync_inject"], salt=1)
        assert not mutant.expected_race
        detection = run_package_tests(mutant.package, runs=10)
        assert detection.built and not detection.test_failures
        assert not detection.reports  # nothing for RaceDiagnoser to diagnose


# ---------------------------------------------------------------------------
# Fix-pattern registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_detection_order_is_by_specificity(self):
        patterns = all_patterns()
        specificities = [p.specificity for p in patterns]
        assert specificities == sorted(specificities, reverse=True)
        assert pattern_names() == [p.name for p in patterns]

    def test_new_patterns_are_registered(self):
        names = set(pattern_names())
        assert {"atomic_counter", "rwmutex_read_lock", "once_lazy_init"} <= names

    def test_get_pattern_and_strategy_construction(self):
        pattern = get_pattern("atomic_counter")
        assert isinstance(pattern, FixPattern)
        strategy = pattern.make_strategy()
        assert strategy.name == "atomic_counter"
        with pytest.raises(KeyError):
            get_pattern("no_such_pattern")

    def test_patterns_for_category(self):
        missing = [p.name for p in patterns_for_category(RaceCategory.MISSING_SYNCHRONIZATION)]
        assert "mutex_guard" in missing and "atomic_counter" in missing
        assert "loop_var_copy" not in missing
        loop = [p.name for p in patterns_for_category(RaceCategory.LOOP_VARIABLE_CAPTURE)]
        assert loop == ["loop_var_copy"]

    def test_every_pattern_has_description_and_category(self):
        for pattern in all_patterns():
            assert pattern.description, pattern.name
            assert pattern.categories, pattern.name

    def test_duplicate_registration_is_rejected(self):
        existing = get_pattern("mutex_guard")

        with pytest.raises(ValueError):
            @fix_pattern(name="mutex_guard", categories=existing.categories)
            class Impostor:  # noqa: N801 - deliberately minimal
                name = "mutex_guard"

    def test_category_from_value(self):
        assert category_from_value("missing-synchronization") is RaceCategory.MISSING_SYNCHRONIZATION
        assert category_from_value("not-a-category") is None


# ---------------------------------------------------------------------------
# Example inference (registry-driven)
# ---------------------------------------------------------------------------


class TestExampleInference:
    def test_new_patterns_are_inferred_from_their_templates(self):
        from repro.corpus.templates.advanced_sync import (
            make_atomic_counter_case,
            make_once_init_case,
            make_rwmutex_read_case,
        )

        for maker, expected in (
            (make_atomic_counter_case, "atomic_counter"),
            (make_rwmutex_read_case, "rwmutex_read_lock"),
            (make_once_init_case, "once_lazy_init"),
        ):
            case = maker(31, 1)
            assert infer_pattern_from_example(case.racy_source(), case.fixed_source()) == expected

    def test_empty_and_identical_examples_infer_nothing(self):
        assert infer_pattern_from_example("", "") is None
        code = "package p\nfunc F() {}\n"
        assert infer_pattern_from_example(code, code) is None
