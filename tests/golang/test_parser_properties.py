"""Property-based tests for the parser/printer using hypothesis."""

from hypothesis import given, settings, strategies as st

from repro.golang.parser import parse_expr, parse_file
from repro.golang.printer import print_file, print_node

identifiers = st.from_regex(r"[a-z][a-zA-Z0-9]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        "go", "if", "for", "func", "var", "map", "chan", "type", "case", "else",
        "break", "const", "defer", "range", "return", "select", "switch", "import",
        "package", "default", "continue", "fallthrough", "goto", "interface", "struct",
    }
)
int_literals = st.integers(min_value=0, max_value=10_000).map(str)
string_literals = st.from_regex(r"[a-zA-Z0-9 _-]{0,12}", fullmatch=True).map(lambda s: f'"{s}"')


@st.composite
def simple_exprs(draw, depth: int = 2) -> str:
    """Generate small Go expressions."""
    if depth <= 0:
        return draw(st.one_of(identifiers, int_literals, string_literals))
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return draw(st.one_of(identifiers, int_literals, string_literals))
    if choice == 1:
        left = draw(simple_exprs(depth=depth - 1))
        right = draw(simple_exprs(depth=depth - 1))
        op = draw(st.sampled_from(["+", "-", "*", "==", "!=", "&&", "||", "<", ">"]))
        return f"{left} {op} {right}"
    if choice == 2:
        fun = draw(identifiers)
        args = draw(st.lists(simple_exprs(depth=depth - 1), min_size=0, max_size=3))
        return f"{fun}({', '.join(args)})"
    if choice == 3:
        base = draw(identifiers)
        field = draw(identifiers)
        return f"{base}.{field}"
    if choice == 4:
        base = draw(identifiers)
        index = draw(simple_exprs(depth=depth - 1))
        return f"{base}[{index}]"
    inner = draw(simple_exprs(depth=depth - 1))
    return f"({inner})"


@st.composite
def simple_functions(draw) -> str:
    """Generate small Go functions with assignments, conditionals, and goroutines."""
    name = draw(identifiers).capitalize()
    lines = []
    variables = []
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        var = f"v{index}"
        variables.append(var)
        lines.append(f"\t{var} := {draw(simple_exprs())}")
    if draw(st.booleans()):
        cond_var = draw(st.sampled_from(variables))
        lines.append(f"\tif {cond_var} != nil {{")
        lines.append(f"\t\t{cond_var} = {draw(simple_exprs())}")
        lines.append("\t}")
    if draw(st.booleans()):
        captured = draw(st.sampled_from(variables))
        lines.append("\tgo func() {")
        lines.append(f"\t\tuse({captured})")
        lines.append("\t}()")
    lines.append(f"\treturn {draw(st.sampled_from(variables))}")
    body = "\n".join(lines)
    return f"package p\n\nfunc {name}() interface{{}} {{\n{body}\n}}\n"


class TestPrinterParserProperties:
    @given(simple_exprs())
    @settings(max_examples=150, deadline=None)
    def test_expression_print_parse_round_trip(self, source):
        expr = parse_expr(source)
        printed = print_node(expr)
        reparsed = parse_expr(printed)
        assert print_node(reparsed) == printed

    @given(simple_functions())
    @settings(max_examples=60, deadline=None)
    def test_function_print_parse_fixed_point(self, source):
        printed = print_file(parse_file(source))
        assert print_file(parse_file(printed)) == printed

    @given(simple_functions())
    @settings(max_examples=40, deadline=None)
    def test_printed_functions_preserve_declaration_count(self, source):
        original = parse_file(source)
        printed = parse_file(print_file(original))
        assert len(printed.func_decls()) == len(original.func_decls())
