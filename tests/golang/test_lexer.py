"""Tests for the Go-subset lexer."""

import pytest

from repro.errors import GoSyntaxError
from repro.golang.lexer import tokenize
from repro.golang.tokens import TokenKind


def kinds(source: str, keep_semicolons: bool = False):
    skip = {TokenKind.EOF} if keep_semicolons else {TokenKind.EOF, TokenKind.SEMICOLON}
    return [t.kind for t in tokenize(source) if t.kind not in skip]


def texts(source: str):
    return [
        t.text
        for t in tokenize(source)
        if t.kind not in (TokenKind.EOF, TokenKind.SEMICOLON)
    ]


class TestBasicTokens:
    def test_keywords_are_recognized(self):
        assert kinds("go func select chan defer") == [
            TokenKind.GO, TokenKind.FUNC, TokenKind.SELECT, TokenKind.CHAN, TokenKind.DEFER,
        ]

    def test_identifiers_and_ints(self):
        tokens = tokenize("limit := 42")
        assert tokens[0].kind is TokenKind.IDENT and tokens[0].text == "limit"
        assert tokens[1].kind is TokenKind.DEFINE
        assert tokens[2].kind is TokenKind.INT and tokens[2].text == "42"

    def test_hex_and_underscored_ints(self):
        assert texts("0xFF 1_000") == ["0xFF", "1_000"]

    def test_float_literals(self):
        tokens = tokenize("x = 1e3 + 2.5")
        assert tokens[2].kind is TokenKind.FLOAT
        assert tokens[4].kind is TokenKind.FLOAT

    def test_string_literal_with_escapes(self):
        tokens = tokenize('s := "a\\tb\\n"')
        assert tokens[2].kind is TokenKind.STRING
        assert tokens[2].text == "a\tb\n"

    def test_raw_string_literal(self):
        tokens = tokenize("s := `raw "
                          "text`")
        assert tokens[2].kind is TokenKind.STRING

    def test_rune_literal(self):
        tokens = tokenize("r := 'x'")
        assert tokens[2].kind is TokenKind.CHAR and tokens[2].text == "x"

    def test_positions_are_tracked(self):
        tokens = tokenize("a := 1\nb := 2")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2 and b_token.column == 1


class TestOperators:
    @pytest.mark.parametrize(
        "source, kind",
        [
            ("<-", TokenKind.ARROW),
            (":=", TokenKind.DEFINE),
            ("==", TokenKind.EQL),
            ("!=", TokenKind.NEQ),
            ("&&", TokenKind.LAND),
            ("||", TokenKind.LOR),
            ("++", TokenKind.INC),
            ("--", TokenKind.DEC),
            ("+=", TokenKind.ADD_ASSIGN),
            ("...", TokenKind.ELLIPSIS),
            ("&^", TokenKind.AND_NOT),
            ("<<", TokenKind.SHL),
        ],
    )
    def test_multi_character_operators(self, source, kind):
        assert kinds(source) == [kind]

    def test_channel_receive_in_context(self):
        assert TokenKind.ARROW in kinds("value := <-ch")

    def test_unknown_character_raises(self):
        with pytest.raises(GoSyntaxError):
            tokenize("a := $b")


class TestSemicolonInsertion:
    def test_newline_after_identifier_inserts_semicolon(self):
        result = kinds("x := 1\ny := 2", keep_semicolons=True)
        assert result.count(TokenKind.SEMICOLON) == 2

    def test_newline_after_operator_does_not_insert(self):
        result = kinds("x := 1 +\n2", keep_semicolons=True)
        # Only the final newline terminates the statement.
        assert result.count(TokenKind.SEMICOLON) == 1

    def test_newline_after_closing_brace_inserts(self):
        result = kinds("f()\n}", keep_semicolons=True)
        assert TokenKind.SEMICOLON in result

    def test_return_followed_by_newline(self):
        result = kinds("return\nx := 1", keep_semicolons=True)
        assert result[1] is TokenKind.SEMICOLON


class TestComments:
    def test_line_comments_are_skipped_by_default(self):
        assert TokenKind.COMMENT not in kinds("x := 1 // a comment")

    def test_line_comments_kept_when_requested(self):
        tokens = tokenize("x := 1 // note", keep_comments=True)
        assert any(t.kind is TokenKind.COMMENT for t in tokens)

    def test_block_comment(self):
        assert texts("a /* hidden */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(GoSyntaxError):
            tokenize("/* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(GoSyntaxError):
            tokenize('s := "oops')
