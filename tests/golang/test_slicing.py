"""Unit tests for the per-function slicing analysis.

The slicer decides, per identifier occurrence, whether the binding it
resolves to is *pure-local* to its function unit — declared inside the unit,
never captured by a closure, never address-taken, not package-level.  Only
those occurrences are elidable; everything else keeps full instrumentation.
The compiler trusts this classification, so the tests here pin the
conservative edges (captures, ``&x``, package vars, shadowing).
"""

from __future__ import annotations

from repro.golang.parser import parse_file
from repro.golang.slicing import (
    analyze_files,
    build_cfg,
    package_scope_bindings,
    slice_function,
)


def _parse(source, name="a.go"):
    return parse_file(source, filename=name)


def _slice_named(files, func_name):
    scope = package_scope_bindings(files)
    for file in files:
        for decl in file.func_decls():
            if decl.name == func_name and decl.body is not None:
                return slice_function(decl, file.name, scope)
    raise AssertionError(f"no function {func_name!r}")


PURE_LOOP = """package p

func Sum(n int) int {
\ttotal := 0
\tfor i := 0; i < n; i++ {
\t\ttotal += i
\t}
\treturn total
}
"""


def test_pure_local_function_fully_elidable():
    file = _parse(PURE_LOOP)
    fslice = _slice_named([file], "Sum")
    assert not fslice.interfering
    assert fslice.total_sites > 0
    assert fslice.elidable_sites == fslice.total_sites
    assert fslice.shared_bindings == ()


CAPTURED = """package p

import "sync"

func Spawn() int {
\tcount := 0
\tlocal := 1
\tvar wg sync.WaitGroup
\twg.Add(1)
\tgo func() {
\t\tcount++
\t\twg.Done()
\t}()
\tlocal++
\twg.Wait()
\treturn count + local
}
"""


def test_closure_capture_blocks_elision_of_captured_binding_only():
    file = _parse(CAPTURED)
    fslice = _slice_named([file], "Spawn")
    assert fslice.interfering  # spawns a goroutine, uses sync
    assert "count" in fslice.shared_bindings
    assert "local" in fslice.pure_bindings
    # `local` occurrences are elidable even inside an interfering function.
    assert 0 < fslice.elidable_sites < fslice.total_sites


ADDRESSED = """package p

func Alias() int {
\tx := 1
\ty := 2
\tp := &x
\t*p = 3
\treturn x + y
}
"""


def test_address_taken_binding_is_not_elidable():
    file = _parse(ADDRESSED)
    fslice = _slice_named([file], "Alias")
    assert "x" in fslice.shared_bindings
    assert "y" in fslice.pure_bindings
    assert "p" in fslice.pure_bindings  # the pointer variable itself is local


PACKAGE_VAR = """package p

var shared = 0

func Touch() int {
\tlocal := shared
\tshared = local + 1
\treturn local
}
"""


def test_package_level_binding_is_never_elidable():
    file = _parse(PACKAGE_VAR)
    fslice = _slice_named([file], "Touch")
    assert "local" in fslice.pure_bindings
    assert "shared" not in fslice.pure_bindings
    assert fslice.elidable_sites < fslice.total_sites


SHADOW = """package p

var x = 0

func Shadow() int {
\tx := 1
\tx++
\treturn x
}
"""


def test_local_shadow_of_package_var_is_elidable():
    file = _parse(SHADOW)
    fslice = _slice_named([file], "Shadow")
    assert "x" in fslice.pure_bindings
    assert fslice.elidable_sites == fslice.total_sites
    assert not fslice.interfering


def test_analyze_files_stats_roundtrip():
    files = [_parse(CAPTURED, "spawn.go"), _parse(PURE_LOOP, "sum.go")]
    result = analyze_files(files)
    stats = result.stats()
    assert stats["functions"] == 2
    assert stats["interfering_functions"] == 1
    assert 0 < stats["elidable_sites"] < stats["total_sites"]
    assert len(result.elidable) == stats["elidable_sites"]


def test_cfg_reaching_definitions_and_du_chains():
    file = _parse(PURE_LOOP)
    decl = file.func_decls()[0]
    cfg = build_cfg(decl)
    chains = cfg.du_chains()
    # The loop body's `total += i` is reached by both the initial definition
    # of `total` and its own redefinition (the back edge).
    defs_reaching_use = {
        (cfg.nodes[rid].line, name)
        for (rid, name), uses in chains.items()
        if uses
    }
    assert any(name == "total" for _, name in defs_reaching_use)
    assert any(name == "i" for _, name in defs_reaching_use)
