"""Tests for the AST printer, including parse→print round-trip stability."""

import pytest

from repro.golang.parser import parse_expr, parse_file
from repro.golang.printer import print_file, print_node
from tests.conftest import LISTING1_SOURCE


def round_trip(source: str) -> str:
    return print_file(parse_file(source))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "package p\n\nfunc F() int {\n\treturn 1\n}\n",
            LISTING1_SOURCE,
            (
                "package p\n\nfunc G(items []string) {\n\tvar wg sync.WaitGroup\n"
                "\tfor _, item := range items {\n\t\titem := item\n\t\twg.Add(1)\n"
                "\t\tgo func() {\n\t\t\tdefer wg.Done()\n\t\t\tuse(item)\n\t\t}()\n\t}\n"
                "\twg.Wait()\n}\n"
            ),
            (
                "package p\n\nfunc H(m map[string]int) int {\n\ttotal := 0\n"
                "\tfor k, v := range m {\n\t\tif k != \"\" {\n\t\t\ttotal += v\n\t\t}\n\t}\n"
                "\treturn total\n}\n"
            ),
        ],
    )
    def test_print_parse_print_is_fixed_point(self, source):
        once = round_trip(source)
        twice = print_file(parse_file(once))
        assert once == twice

    def test_listing1_fix_survives_round_trip(self):
        fixed = LISTING1_SOURCE.replace("if err = task1()", "if err := task1()")
        assert "err := task1()" in round_trip(fixed)


class TestSpecificForms:
    def test_expression_rendering(self):
        assert print_node(parse_expr("a + b*c")) == "a + b * c"
        assert print_node(parse_expr("m[k]")) == "m[k]"
        assert print_node(parse_expr("<-ch")) == "<-ch"
        assert print_node(parse_expr("&T{X: 1}")) == "&T{X: 1}"
        assert print_node(parse_expr("x.(string)")) == "x.(string)"

    def test_types_render_correctly(self):
        assert print_node(parse_expr("make(chan struct{}, 1)")) == "make(chan struct{}, 1)"
        assert print_node(parse_expr("map[string]int{}")) == "map[string]int{}"
        assert print_node(parse_expr("[]int{1, 2}")) == "[]int{1, 2}"

    def test_select_statement_renders_cases(self):
        source = (
            "package p\n\nfunc F(ch chan int, done chan struct{}) int {\n"
            "\tselect {\n\tcase v := <-ch:\n\t\treturn v\n\tcase <-done:\n\t\treturn 0\n"
            "\tdefault:\n\t\treturn -1\n\t}\n}\n"
        )
        output = round_trip(source)
        assert "select {" in output and "case v := <-ch:" in output and "default:" in output

    def test_go_closure_renders_with_arguments(self):
        source = (
            "package p\n\nfunc F(x int) {\n\tgo func(n int) {\n\t\tuse(n)\n\t}(x)\n}\n"
        )
        output = round_trip(source)
        assert "}(x)" in output

    def test_struct_type_multiline(self):
        source = "package p\n\ntype T struct {\n\tA int\n\tmu sync.Mutex\n}\n"
        output = round_trip(source)
        assert "\tA int" in output and "\tmu sync.Mutex" in output

    def test_if_else_rendering(self):
        source = (
            "package p\n\nfunc F(a bool, b bool) int {\n\tif a {\n\t\treturn 1\n"
            "\t} else if b {\n\t\treturn 2\n\t} else {\n\t\treturn 3\n\t}\n}\n"
        )
        output = round_trip(source)
        assert "} else if b {" in output and "} else {" in output

    def test_import_block_rendering(self):
        source = 'package p\n\nimport (\n\t"sync"\n\t"testing"\n)\n\nfunc F() {}\n'
        output = round_trip(source)
        assert 'import (' in output and '"sync"' in output

    def test_method_with_receiver(self):
        source = "package p\n\nfunc (s *Store) Load(k string) int {\n\treturn s.m[k]\n}\n"
        output = round_trip(source)
        assert "func (s *Store) Load(k string) int {" in output

    def test_labeled_break(self):
        source = (
            "package p\n\nfunc F() {\nLoop:\n\tfor {\n\t\tbreak Loop\n\t}\n}\n"
        )
        output = round_trip(source)
        assert "Loop:" in output and "break Loop" in output
