"""Tests for the Go-subset parser."""

import pytest

from repro.errors import GoSyntaxError
from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_expr, parse_file, parse_stmts


class TestDeclarations:
    def test_package_and_imports(self):
        file = parse_file('package svc\n\nimport (\n\t"sync"\n\t"fmt"\n)\n')
        assert file.package == "svc"
        assert [spec.path for spec in file.imports] == ["sync", "fmt"]

    def test_single_import(self):
        file = parse_file('package p\nimport "testing"\n')
        assert file.imports[0].path == "testing"

    def test_func_decl_with_results(self):
        file = parse_file("package p\nfunc F(a int, b string) (int, error) { return a, nil }\n")
        decl = file.find_func("F")
        assert decl is not None
        assert [f.names for f in decl.type_.params] == [["a"], ["b"]]
        assert len(decl.type_.results) == 2

    def test_grouped_parameters_share_type(self):
        file = parse_file("package p\nfunc F(a, b int) int { return a + b }\n")
        decl = file.find_func("F")
        assert decl.type_.params[0].names == ["a", "b"]

    def test_method_declaration_with_pointer_receiver(self):
        file = parse_file("package p\ntype S struct{}\nfunc (s *S) Get() int { return 1 }\n")
        method = file.find_func("Get")
        assert method.recv is not None
        assert isinstance(method.recv.type_, ast.StarExpr)

    def test_struct_type_declaration(self):
        file = parse_file(
            "package p\ntype Config struct {\n\tLimit int\n\tName string\n\tmu sync.Mutex\n}\n"
        )
        spec = file.find_type("Config")
        assert isinstance(spec.type_, ast.StructType)
        assert [f.names[0] for f in spec.type_.fields] == ["Limit", "Name", "mu"]

    def test_interface_type_declaration(self):
        file = parse_file("package p\ntype H interface {\n\tWrite(p string) (int, error)\n}\n")
        spec = file.find_type("H")
        assert isinstance(spec.type_, ast.InterfaceType)

    def test_package_level_var_with_initializer(self):
        file = parse_file("package p\nvar source = rand.NewSource(1001)\n")
        decl = file.decls[0]
        assert isinstance(decl, ast.GenDecl) and decl.tok == "var"

    def test_variadic_parameter(self):
        file = parse_file("package p\nfunc F(items ...int) int { return len(items) }\n")
        assert file.find_func("F").type_.params[0].variadic

    def test_generic_type_parameters_are_skipped(self):
        file = parse_file("package p\ntype Scanner[ROW any] struct {\n\tlimit int\n}\n")
        assert file.find_type("Scanner") is not None

    def test_missing_package_clause_raises(self):
        with pytest.raises(GoSyntaxError):
            parse_file("func F() {}\n")


class TestStatements:
    def test_short_var_declaration_and_assignment(self):
        stmts = parse_stmts("x := 1\nx = 2\nx += 3")
        assert isinstance(stmts[0], ast.AssignStmt) and stmts[0].tok == ":="
        assert stmts[1].tok == "="
        assert stmts[2].tok == "+="

    def test_multi_assignment(self):
        stmts = parse_stmts("a, b := f()")
        assert len(stmts[0].lhs) == 2

    def test_go_statement_with_closure(self):
        stmts = parse_stmts("go func() {\n\twork()\n}()")
        assert isinstance(stmts[0], ast.GoStmt)
        assert isinstance(stmts[0].call.fun, ast.FuncLit)

    def test_defer_statement(self):
        stmts = parse_stmts("defer wg.Done()")
        assert isinstance(stmts[0], ast.DeferStmt)

    def test_channel_send_statement(self):
        stmts = parse_stmts("ch <- value")
        assert isinstance(stmts[0], ast.SendStmt)

    def test_if_with_init_statement(self):
        stmts = parse_stmts("if err := f(); err != nil {\n\treturn err\n}")
        stmt = stmts[0]
        assert isinstance(stmt, ast.IfStmt) and stmt.init is not None

    def test_if_else_chain(self):
        stmts = parse_stmts("if a {\n\tx()\n} else if b {\n\ty()\n} else {\n\tz()\n}")
        stmt = stmts[0]
        assert isinstance(stmt.else_, ast.IfStmt)
        assert isinstance(stmt.else_.else_, ast.BlockStmt)

    def test_three_clause_for_loop(self):
        stmts = parse_stmts("for i := 0; i < 10; i++ {\n\twork(i)\n}")
        stmt = stmts[0]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init is not None and stmt.cond is not None and stmt.post is not None

    def test_range_loop_with_two_variables(self):
        stmts = parse_stmts("for k, v := range m {\n\tuse(k, v)\n}")
        stmt = stmts[0]
        assert isinstance(stmt, ast.RangeStmt)
        assert stmt.key.name == "k" and stmt.value.name == "v"

    def test_bare_range_loop(self):
        stmts = parse_stmts("for range items {\n\tn++\n}")
        assert isinstance(stmts[0], ast.RangeStmt)
        assert stmts[0].key is None

    def test_infinite_for_loop(self):
        stmts = parse_stmts("for {\n\tbreak\n}")
        stmt = stmts[0]
        assert stmt.cond is None and stmt.init is None

    def test_switch_with_cases_and_default(self):
        stmts = parse_stmts('switch n {\ncase 1:\n\ta()\ncase 2, 3:\n\tb()\ndefault:\n\tc()\n}')
        stmt = stmts[0]
        assert isinstance(stmt, ast.SwitchStmt)
        assert len(stmt.cases) == 3
        assert stmt.cases[2].exprs == []

    def test_select_statement(self):
        stmts = parse_stmts(
            "select {\ncase v := <-ch:\n\tuse(v)\ncase out <- 1:\n\tdone()\ndefault:\n\tskip()\n}"
        )
        stmt = stmts[0]
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.cases) == 3

    def test_labeled_statement_with_break(self):
        stmts = parse_stmts("Loop:\nfor {\n\tbreak Loop\n}")
        assert isinstance(stmts[0], ast.LabeledStmt)
        assert stmts[0].label == "Loop"

    def test_inc_dec_statements(self):
        stmts = parse_stmts("n++\nn--")
        assert stmts[0].op == "++" and stmts[1].op == "--"

    def test_local_var_declaration(self):
        stmts = parse_stmts("var wg sync.WaitGroup")
        assert isinstance(stmts[0], ast.DeclStmt)

    def test_return_with_multiple_values(self):
        stmts = parse_stmts("return a, nil")
        assert len(stmts[0].results) == 2


class TestExpressions:
    def test_binary_precedence(self):
        expr = parse_expr("1 + 2*3")
        assert isinstance(expr, ast.BinaryExpr) and expr.op == "+"
        assert isinstance(expr.y, ast.BinaryExpr) and expr.y.op == "*"

    def test_comparison_and_logical(self):
        expr = parse_expr("a > 1 && b != nil")
        assert expr.op == "&&"

    def test_selector_chain_and_call(self):
        expr = parse_expr("s.cfg.Load(ctx, req)")
        assert isinstance(expr, ast.CallExpr)
        assert isinstance(expr.fun, ast.SelectorExpr) and expr.fun.sel == "Load"

    def test_index_and_slice_expressions(self):
        index = parse_expr("items[3]")
        sliced = parse_expr("items[1:4]")
        assert isinstance(index, ast.IndexExpr)
        assert isinstance(sliced, ast.SliceExpr)

    def test_composite_struct_literal_with_fields(self):
        expr = parse_expr('Request{Limit: limit, Kind: "boost"}')
        assert isinstance(expr, ast.CompositeLit)
        assert all(isinstance(e, ast.KeyValueExpr) for e in expr.elts)

    def test_slice_and_map_literals(self):
        slice_lit = parse_expr("[]int{1, 2, 3}")
        map_lit = parse_expr('map[string]int{"a": 1}')
        assert isinstance(slice_lit.type_, ast.ArrayType)
        assert isinstance(map_lit.type_, ast.MapType)

    def test_address_of_composite(self):
        expr = parse_expr("&Config{Limit: 3}")
        assert isinstance(expr, ast.UnaryExpr) and expr.op == "&"

    def test_channel_receive_expression(self):
        expr = parse_expr("<-done")
        assert isinstance(expr, ast.UnaryExpr) and expr.op == "<-"

    def test_func_literal_expression(self):
        expr = parse_expr("func(x int) int {\n\treturn x + 1\n}")
        assert isinstance(expr, ast.FuncLit)

    def test_type_assertion(self):
        expr = parse_expr("value.(string)")
        assert isinstance(expr, ast.TypeAssertExpr)

    def test_make_with_channel_type(self):
        expr = parse_expr("make(chan struct{}, 1)")
        assert isinstance(expr, ast.CallExpr)
        assert isinstance(expr.args[0], ast.ChanType)

    def test_variadic_call(self):
        expr = parse_expr("append(docs, extras...)")
        assert expr.ellipsis

    def test_composite_literal_not_allowed_in_if_header(self):
        stmts = parse_stmts("if x == y {\n\twork()\n}")
        assert isinstance(stmts[0], ast.IfStmt)

    def test_trailing_garbage_raises(self):
        with pytest.raises(GoSyntaxError):
            parse_expr("1 + 2 }")


class TestHelpers:
    def test_base_name(self):
        assert ast.base_name(parse_expr("a.b.c[0]")) == "a"
        assert ast.base_name(parse_expr("(*p).f")) == "p"
        assert ast.base_name(parse_expr("f()")) is None

    def test_walk_visits_nested_nodes(self):
        expr = parse_expr("f(a + g(b))")
        names = {n.name for n in ast.walk(expr) if isinstance(n, ast.Ident)}
        assert names == {"f", "a", "g", "b"}

    def test_file_find_helpers(self):
        file = parse_file("package p\ntype T struct{}\nfunc A() {}\nfunc B() {}\n")
        assert file.find_func("B") is not None
        assert file.find_func("missing") is None
        assert file.find_type("T") is not None
        assert len(file.func_decls()) == 2
