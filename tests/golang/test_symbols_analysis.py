"""Tests for capture analysis and the concurrency-oriented AST helpers."""

from repro.golang import ast_nodes as ast
from repro.golang.analysis import (
    block_mentions_concurrency,
    build_call_graph,
    find_enclosing_function,
    find_spawn_sites,
    lowest_common_ancestor,
    names_on_lines,
    node_line_span,
    stmt_is_concurrency,
)
from repro.golang.parser import parse_file, parse_stmts
from repro.golang.symbols import analyze_captures, declared_names


CAPTURE_SOURCE = """
package p

func Outer(items []int) int {
	total := 0
	limit := 10
	go func() {
		total = total + limit
	}()
	go func(n int) {
		use(n)
	}(limit)
	return total
}

func use(n int) int {
	return n
}
"""


class TestCaptureAnalysis:
    def test_closure_captures_outer_variables(self):
        file = parse_file(CAPTURE_SOURCE)
        captures = analyze_captures(file.find_func("Outer"), file)
        first = captures[0]
        assert {"total", "limit"} <= first.captured
        assert "total" in first.assigned_captures

    def test_parameter_is_not_a_capture(self):
        file = parse_file(CAPTURE_SOURCE)
        captures = analyze_captures(file.find_func("Outer"), file)
        second = captures[1]
        assert "n" not in second.captured

    def test_locally_declared_names_are_not_captures(self):
        source = (
            "package p\n\nfunc F() {\n\tgo func() {\n\t\terr := work()\n\t\tuse(err)\n\t}()\n}\n"
        )
        file = parse_file(source)
        captures = analyze_captures(file.find_func("F"), file)
        assert "err" not in captures[0].captured

    def test_package_level_functions_are_not_captures(self):
        file = parse_file(CAPTURE_SOURCE)
        captures = analyze_captures(file.find_func("Outer"), file)
        assert "use" not in captures[1].captured

    def test_declared_names_in_block(self):
        stmts = parse_stmts("a := 1\nvar b int\nc = 2")
        block = ast.BlockStmt(stmts=stmts)
        assert declared_names(block) == {"a", "b"}


class TestConcurrencyAnalysis:
    def test_go_and_send_statements_are_concurrency(self):
        go_stmt, send_stmt, plain = parse_stmts("go f()\nch <- 1\nx := 2")
        assert stmt_is_concurrency(go_stmt)
        assert stmt_is_concurrency(send_stmt)
        assert not stmt_is_concurrency(plain)

    def test_sync_calls_are_concurrency(self):
        wait, lock, other = parse_stmts("wg.Wait()\nmu.Lock()\nfmt.Println(1)")
        assert stmt_is_concurrency(wait)
        assert stmt_is_concurrency(lock)
        assert not stmt_is_concurrency(other)

    def test_block_mentions_concurrency(self):
        file = parse_file(CAPTURE_SOURCE)
        assert block_mentions_concurrency(file.find_func("Outer").body)
        quiet = parse_file("package p\nfunc G() int {\n\treturn 1\n}\n")
        assert not block_mentions_concurrency(quiet.find_func("G").body)

    def test_spawn_sites_include_captured_names(self):
        file = parse_file(CAPTURE_SOURCE)
        sites = find_spawn_sites(file)
        assert len(sites) == 2
        assert {"total", "limit"} <= sites[0].captured

    def test_find_enclosing_function_resolves_closures(self):
        file = parse_file(CAPTURE_SOURCE)
        # Line 8 is inside the first closure.
        enclosing = find_enclosing_function(file, 8)
        assert enclosing is not None and enclosing.decl.name == "Outer"
        assert enclosing.closure is not None

    def test_names_on_lines(self):
        file = parse_file(CAPTURE_SOURCE)
        names = names_on_lines(file.find_func("Outer"), [8])
        assert "total" in names and "limit" in names

    def test_node_line_span_covers_function(self):
        file = parse_file(CAPTURE_SOURCE)
        low, high = node_line_span(file.find_func("Outer"))
        assert low <= 4 and high >= 12

    def test_call_graph(self):
        source = (
            "package p\nfunc A() { B() }\nfunc B() { C(); helper.D() }\nfunc C() {}\n"
        )
        graph = build_call_graph(parse_file(source))
        assert "B" in graph["A"]
        assert {"C", "D"} <= graph["B"]

    def test_lowest_common_ancestor(self):
        assert lowest_common_ancestor((["main", "A", "B"], ["main", "A", "C"])) == "A"
        assert lowest_common_ancestor((["main"], ["main"])) == "main"
        assert lowest_common_ancestor((["x"], ["y"])) is None
