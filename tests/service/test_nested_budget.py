"""Regression test: service workers × nested harness runs never oversubscribe.

The service's batch pool is an outer :class:`~repro.execution.CaseExecutor`;
each request's detection fans out again through the harness's per-seed
executor (``DrFixConfig.harness_jobs``).  While the outer pool maps, it
exports the per-worker leftover budget through ``DRFIX_NESTED_BUDGET`` and the
in-process guard list, and inner executors clamp to it — so with a total
budget of B and an outer fan-out of N, at most N × (B // N) = B harness runs
execute concurrently, not N × harness_jobs.

The test pins the budget, instruments ``GoTestHarness._run_once`` with a
concurrency counter, floods the service with one full batch of distinct
packages, and asserts the peak never exceeded the budget.
"""

import threading
import time

import pytest

from repro.core.config import DrFixConfig
from repro.runtime.harness import GoFile, GoPackage, GoTestHarness
from repro.service import DetectRequest, DrFixService

BUDGET = 4

SOURCE_TEMPLATE = """
package demo

import "sync"

func Run{tag}(items []string) int {{
	total := 0
	var wg sync.WaitGroup
	for _, item := range items {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			total = total + len(item)
		}}()
	}}
	wg.Wait()
	return total
}}
"""

TEST_TEMPLATE = """
package demo

import "testing"

func TestRun{tag}(t *testing.T) {{
	Run{tag}([]string{{"a", "bb", "ccc"}})
}}
"""


def _package(tag: str) -> GoPackage:
    return GoPackage(name="demo", files=[
        GoFile("run.go", SOURCE_TEMPLATE.format(tag=tag)),
        GoFile("run_test.go", TEST_TEMPLATE.format(tag=tag)),
    ])


class ConcurrencyProbe:
    """Counts concurrent executions of the wrapped harness run."""

    def __init__(self):
        self._lock = threading.Lock()
        self.current = 0
        self.peak = 0
        self.total = 0

    def enter(self):
        with self._lock:
            self.current += 1
            self.total += 1
            self.peak = max(self.peak, self.current)

    def exit(self):
        with self._lock:
            self.current -= 1


def test_service_jobs_times_harness_jobs_respects_the_budget(monkeypatch):
    # Pin the machine budget so the assertion is hardware-independent, and
    # force thread backends everywhere so the probe sees every layer.
    monkeypatch.setenv("DRFIX_NESTED_BUDGET", str(BUDGET))
    monkeypatch.setenv("DRFIX_EXECUTOR", "thread")

    probe = ConcurrencyProbe()
    real_run_once = GoTestHarness._run_once

    def probed_run_once(self, *args, **kwargs):
        probe.enter()
        try:
            # Widen the race window so genuinely concurrent runs overlap.
            time.sleep(0.002)
            return real_run_once(self, *args, **kwargs)
        finally:
            probe.exit()

    monkeypatch.setattr(GoTestHarness, "_run_once", probed_run_once)

    # Every request asks the harness for harness_jobs=BUDGET inner workers;
    # unclamped, BUDGET outer workers × BUDGET inner workers = BUDGET² runs
    # would execute at once.
    config = DrFixConfig(model="gpt-4o", harness_jobs=BUDGET)
    service = DrFixService(config, database=None, max_in_flight=BUDGET,
                           jobs=BUDGET, executor="thread",
                           max_queue_depth=BUDGET * 2, start=False)
    tickets = [service.submit(DetectRequest(package=_package(f"V{i}"), runs=8))
               for i in range(BUDGET)]
    service.start()
    responses = [ticket.result(timeout=120) for ticket in tickets]
    service.shutdown()

    assert all(response.ok for response in responses)
    assert probe.total == BUDGET * 8  # every (request, seed) run happened
    # The whole point: outer × inner concurrency never exceeded the budget.
    assert probe.peak <= BUDGET, (
        f"peak concurrent harness runs {probe.peak} exceeded the "
        f"DRFIX_NESTED_BUDGET of {BUDGET}"
    )
    # And the outer pool did fan out (this is a parallelism test, not serial).
    assert probe.peak >= 2


def test_nested_budget_clamps_inner_executor_construction(monkeypatch):
    """The same accounting, asserted at the executor level (no service)."""
    from repro.execution import CaseExecutor

    monkeypatch.setenv("DRFIX_NESTED_BUDGET", "4")
    monkeypatch.setenv("DRFIX_EXECUTOR", "thread")
    inner_jobs = []

    def outer_work(_item):
        inner = CaseExecutor(kind="thread", jobs=4)
        inner_jobs.append(inner.jobs)
        return inner.map(lambda x: x, [1, 2, 3])

    outer = CaseExecutor(kind="thread", jobs=4)
    outer.map(outer_work, range(4))
    # 4 outer workers on a budget of 4 leave 1 worker for each inner layer.
    assert inner_jobs == [1, 1, 1, 1]
