"""Fault-injection tests for the sharded serving layer.

Every scenario here drives the real multi-process service through the
deterministic ``DRFIX_FAULT_PLAN`` hook (:mod:`repro.service.faults`) and
asserts the robustness contract of the supervisor:

* a worker killed mid-request is restarted and the request retried — and the
  retried response is **bit-identical** to a direct in-process invocation;
* a crash-looping worker trips the circuit breaker: its shard answers
  ``worker_failed`` structurally, other shards keep serving, the master
  never wedges;
* a graceful drain never drops an admitted request;
* a flood aimed at a dead shard is answered with ``overloaded`` (or
  ``worker_failed``), never a hang.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core.config import DrFixConfig
from repro.errors import ConfigError
from repro.fingerprint import shard_for
from repro.runtime.harness import GoFile, GoPackage
from repro.service import (
    DetectRequest,
    FaultPlan,
    ResponseStatus,
    ShardedDrFixService,
)
from repro.service.core import _execute_request
from repro.service.faults import CRASH_EXIT_CODE, KILL_EXIT_CODE

RACY_SOURCE = """
package main

var counter int

func bump() {
	counter = counter + 1
}

func TestRace(t *T) {
	go bump()
	go bump()
}
"""

RUNS = 3
CONFIG = DrFixConfig(model="gpt-4o").validated()


def make_package(tag: int) -> GoPackage:
    """A distinct racy package per tag (distinct source fingerprints)."""
    source = RACY_SOURCE.replace("counter", f"counter{tag}")
    return GoPackage(name=f"racer{tag}", files=[GoFile("main.go", source)])


def package_for_shard(shard: int, workers: int, start: int = 0) -> GoPackage:
    """The first tagged package (from ``start``) that routes to ``shard``."""
    for tag in range(start, start + 512):
        package = make_package(tag)
        request = DetectRequest(package=package, runs=RUNS, seed=1)
        if shard_for(request.source_fingerprint(), workers) == shard:
            return package
    raise AssertionError("no package found for shard")  # pragma: no cover


def direct_payload(package: GoPackage) -> dict:
    """The reference payload: exactly what a worker process computes."""
    payload, detail = _execute_request(
        CONFIG, None, DetectRequest(package=package, runs=RUNS, seed=1))
    assert payload is not None, detail
    return payload


def fast_service(**overrides) -> ShardedDrFixService:
    defaults = dict(
        config=CONFIG,
        workers=2,
        heartbeat_interval_s=0.02,
        restart_backoff_s=0.01,
        restart_backoff_cap_s=0.05,
        drain_timeout_s=30.0,
    )
    defaults.update(overrides)
    return ShardedDrFixService(**defaults)


# ---------------------------------------------------------------------------
# Fault-plan parsing
# ---------------------------------------------------------------------------


class TestFaultPlanParsing:
    def test_parses_multi_clause_plans(self):
        plan = FaultPlan.parse(
            "kill:worker=1:after=3;delay:point=respond:ms=25;"
            "crash:worker=any:incarnation=any")
        assert len(plan.clauses) == 3
        kill, delay, crash = plan.clauses
        assert (kill.action, kill.worker, kill.after) == ("kill", 1, 3)
        assert (delay.point, delay.ms) == ("respond", 25.0)
        assert crash.worker is None and crash.incarnation is None

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("kill")

    @pytest.mark.parametrize("spec", [
        "explode",                    # unknown action
        "kill:when=now",              # unknown field
        "kill:worker=x",              # non-integer worker
        "kill:after=0",               # request counts are 1-based
        "delay:point=middle",         # unknown point
        "kill:worker=",               # empty value
    ])
    def test_malformed_plans_fail_fast(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_env_resolution_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv("DRFIX_FAULT_PLAN", "kill:worker=0")
        assert FaultPlan.resolve("delay:ms=1").clauses[0].action == "delay"
        assert FaultPlan.resolve(None).clauses[0].action == "kill"
        monkeypatch.delenv("DRFIX_FAULT_PLAN")
        assert not FaultPlan.resolve(None)


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_kill_at_receive_is_retried_bit_identically(self):
        package = package_for_shard(1, 2)
        reference = direct_payload(package)
        service = fast_service(fault_plan="kill:worker=1:after=1:point=receive")
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.status is ResponseStatus.OK
            assert response.payload == reference
            assert (json.dumps(response.payload, sort_keys=True)
                    == json.dumps(reference, sort_keys=True))
            stats = service.supervisor_stats()
            assert stats["worker_deaths"] == 1
            assert stats["retries"] == 1
            assert stats["restarts"] == 1
            workers = service.worker_status()
            assert workers[1]["incarnation"] == 1
            assert workers[1]["last_exit_code"] == KILL_EXIT_CODE
        finally:
            service.shutdown()

    def test_kill_after_compute_is_retried_bit_identically(self):
        # point=respond kills after the payload is computed but before it is
        # sent: the master must notice the death and recompute.
        package = package_for_shard(0, 2)
        reference = direct_payload(package)
        service = fast_service(fault_plan="kill:worker=0:after=1:point=respond")
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.status is ResponseStatus.OK
            assert response.payload == reference
            assert service.supervisor_stats()["retries"] == 1
        finally:
            service.shutdown()

    def test_crash_exit_is_recovered_like_a_kill(self):
        package = package_for_shard(0, 2)
        service = fast_service(fault_plan="crash:worker=0:after=1")
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.ok
            assert service.worker_status()[0]["last_exit_code"] == CRASH_EXIT_CODE
        finally:
            service.shutdown()

    def test_wedged_worker_is_liveness_killed_and_request_retried(self):
        package = package_for_shard(1, 2)
        reference = direct_payload(package)
        service = fast_service(
            fault_plan="wedge:worker=1:after=1",
            liveness_deadline_s=0.3,
        )
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.ok
            assert response.payload == reference
            stats = service.supervisor_stats()
            assert stats["liveness_kills"] == 1
            assert stats["retries"] == 1
        finally:
            service.shutdown()

    def test_delay_fault_only_slows_the_response(self):
        package = package_for_shard(0, 2)
        reference = direct_payload(package)
        service = fast_service(fault_plan="delay:worker=0:after=1:ms=40")
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.ok
            assert response.payload == reference
            assert service.supervisor_stats()["worker_deaths"] == 0
        finally:
            service.shutdown()

    def test_healthy_shard_keeps_serving_while_sibling_crash_loops(self):
        broken_pkg = package_for_shard(0, 2)
        healthy_pkg = package_for_shard(1, 2)
        reference = direct_payload(healthy_pkg)
        service = fast_service(
            fault_plan="kill:worker=0:incarnation=any:after=1",
            max_retries=1,
            breaker_threshold=100,
        )
        try:
            broken = service.submit(
                DetectRequest(package=broken_pkg, runs=RUNS, seed=1))
            healthy = service.call(
                DetectRequest(package=healthy_pkg, runs=RUNS, seed=1), timeout=60)
            assert healthy.ok and healthy.payload == reference
            failed = broken.result(timeout=60)
            assert failed.status is ResponseStatus.WORKER_FAILED
            assert "died" in failed.detail
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_crash_loop_trips_breaker_without_wedging_the_master(self):
        package = package_for_shard(0, 2)
        service = fast_service(
            fault_plan="kill:worker=0:incarnation=any:after=1",
            max_retries=10,          # retries alone never give up...
            breaker_threshold=3,     # ...the breaker does.
        )
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.status is ResponseStatus.WORKER_FAILED
            assert "circuit breaker" in response.detail or "crash-looping" in response.detail
            stats = service.supervisor_stats()
            assert stats["breaker_trips"] == 1
            assert stats["worker_deaths"] == 3
            assert service.worker_status()[0]["state"] == "broken"
            # The broken shard now fails fast; the master still answers.
            after = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=10)
            assert after.status is ResponseStatus.WORKER_FAILED
            # And the healthy shard still serves.
            healthy = service.call(
                DetectRequest(package=package_for_shard(1, 2), runs=RUNS, seed=1),
                timeout=60)
            assert healthy.ok
            assert service.health()["status"] == "degraded"
        finally:
            service.shutdown()

    def test_success_resets_the_failure_streak(self):
        package = package_for_shard(0, 2)
        # Kill incarnations 0 and 1 on their first request; incarnation 2
        # succeeds — consecutive_failures must reset to 0, not trip at 3.
        service = fast_service(
            fault_plan="kill:worker=0:incarnation=0:after=1;"
                       "kill:worker=0:incarnation=1:after=1",
            max_retries=5,
            breaker_threshold=3,
        )
        try:
            response = service.call(
                DetectRequest(package=package, runs=RUNS, seed=1), timeout=60)
            assert response.ok
            status = service.worker_status()[0]
            assert status["consecutive_failures"] == 0
            assert status["incarnation"] == 2
            assert service.supervisor_stats()["breaker_trips"] == 0
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Drain and backpressure
# ---------------------------------------------------------------------------


class TestDrainAndBackpressure:
    def test_drain_never_drops_an_admitted_request(self):
        service = fast_service(workers=2, shard_queue_depth=32)
        tickets = []
        try:
            for tag in range(6):
                tickets.append(service.submit(
                    DetectRequest(package=make_package(tag), runs=RUNS, seed=1)))
            service.begin_drain()
            late = service.submit(
                DetectRequest(package=make_package(99), runs=RUNS, seed=1))
            assert late.result(5).status is ResponseStatus.OVERLOADED
        finally:
            service.shutdown()
        for ticket in tickets:
            response = ticket.result(timeout=5)
            assert response.status is ResponseStatus.OK, response.detail
        assert service.health()["status"] == "draining"

    def test_drain_completes_in_flight_work_through_a_crash(self):
        package = package_for_shard(0, 2)
        service = fast_service(fault_plan="kill:worker=0:after=1")
        ticket = service.submit(DetectRequest(package=package, runs=RUNS, seed=1))
        service.shutdown()  # drains: the retry must still happen
        response = ticket.result(timeout=5)
        assert response.status is ResponseStatus.OK
        assert response.payload == direct_payload(package)

    def test_flood_under_a_dead_shard_answers_overloaded_not_deadlock(self):
        workers = 2
        dead_pkg = package_for_shard(0, workers)
        service = fast_service(
            workers=workers,
            shard_queue_depth=3,
            fault_plan="kill:worker=0:incarnation=any:after=1",
            max_retries=1,
            breaker_threshold=1000,
        )
        try:
            tickets = [service.submit(
                DetectRequest(package=dead_pkg, runs=RUNS, seed=seed))
                for seed in range(1, 13)]
            statuses = [t.result(timeout=60).status for t in tickets]
            assert ResponseStatus.OVERLOADED in statuses
            assert ResponseStatus.OK not in statuses
            assert all(s in (ResponseStatus.OVERLOADED, ResponseStatus.WORKER_FAILED)
                       for s in statuses)
        finally:
            service.shutdown()

    def test_submit_after_shutdown_is_rejected_structurally(self):
        service = fast_service(workers=1)
        service.shutdown()
        ticket = service.submit(
            DetectRequest(package=make_package(1), runs=RUNS, seed=1))
        assert ticket.result(5).status is ResponseStatus.OVERLOADED


# ---------------------------------------------------------------------------
# End-to-end: SIGTERM drain of the real daemon
# ---------------------------------------------------------------------------


class TestSigtermDrain:
    def test_daemon_drains_in_flight_request_on_sigterm(self, tmp_path):
        """SIGTERM mid-request: the admitted request completes, the daemon
        exits 0, and the pidfile is removed — the full graceful-drain path."""
        pidfile = tmp_path / "drfix.pid"
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--workers", "2",
             "--no-rag", "--port", "0", "--pidfile", str(pidfile)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=tmp_path)
        try:
            banner = proc.stdout.readline()
            port = int(re.search(r"127\.0\.0\.1:(\d+)", banner).group(1))
            body = json.dumps({
                "package": "p",
                "files": {"main.go": RACY_SOURCE},
                "runs": 6, "seed": 1,
            }).encode()
            responses = []

            def client():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/detect", data=body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=60) as reply:
                    responses.append((reply.status, json.load(reply)))

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.2)  # let the request be admitted
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=60)
            assert not thread.is_alive(), "client hung through the drain"
            assert proc.wait(timeout=30) == 0
            status, payload = responses[0]
            assert status == 200 and payload["status"] == "ok"
            assert payload["payload"]["summary"].endswith("data race(s)")
            assert not pidfile.exists()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()
