"""Behavioural tests for the in-process serving layer: admission control,
batch scheduling, deduplication, caching, error folding, and metrics."""

import threading
import time

import pytest

import repro.service.core as service_core
from repro.core.config import DrFixConfig
from repro.runtime.harness import GoFile, GoPackage
from repro.service import (
    DetectRequest,
    DrFixService,
    FixRequest,
    ResponseStatus,
)

RACY_SOURCE = """
package demo

import "sync"

func Run(items []string) int {
	total := 0
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total = total + len(item)
		}()
	}
	wg.Wait()
	return total
}
"""

RACY_TEST = """
package demo

import "testing"

func TestRun(t *testing.T) {
	Run([]string{"a", "bb", "ccc"})
}
"""

CLEAN_SOURCE = """
package demo

func Two() int {
	return 2
}
"""

CLEAN_TEST = """
package demo

import "testing"

func TestTwo(t *testing.T) {
	if Two() != 2 {
		t.Errorf("wrong")
	}
}
"""


def racy_package(tag: str = "") -> GoPackage:
    # An optional trailing comment makes distinct-but-equivalent packages
    # (distinct source fingerprints) cheap to mint.
    suffix = f"\n// variant {tag}\n" if tag else ""
    return GoPackage(name="demo", files=[
        GoFile("run.go", RACY_SOURCE + suffix), GoFile("run_test.go", RACY_TEST),
    ])


def clean_package(tag: str = "") -> GoPackage:
    suffix = f"\n// variant {tag}\n" if tag else ""
    return GoPackage(name="demo", files=[
        GoFile("two.go", CLEAN_SOURCE + suffix), GoFile("two_test.go", CLEAN_TEST),
    ])


@pytest.fixture
def config() -> DrFixConfig:
    return DrFixConfig(model="gpt-4o", validator_runs=6, detection_runs=8)


class TestServing:
    def test_detect_and_fix_round_trip(self, config):
        with DrFixService(config, database=None) as service:
            detect = service.call(DetectRequest(package=racy_package(), runs=8), timeout=60)
            assert detect.ok and not detect.cached
            assert detect.payload["race_hashes"]
            assert detect.payload["reports"][0]["diagnosis"]
            fix = service.call(FixRequest(package=racy_package(), runs=8), timeout=120)
            assert fix.ok and fix.payload["fixed_any"]
            assert any(r["diff"] for r in fix.payload["results"])
            clean = service.call(DetectRequest(package=clean_package(), runs=6), timeout=60)
            assert clean.ok and clean.payload["passed"]

    def test_repeat_submission_is_a_warm_hit(self, config):
        with DrFixService(config, database=None) as service:
            cold = service.call(DetectRequest(package=racy_package(), runs=8), timeout=60)
            warm = service.call(DetectRequest(package=racy_package(), runs=8), timeout=60)
            assert not cold.cached and warm.cached
            assert cold.payload == warm.payload
            metrics = service.metrics()
            assert metrics.cache_hits == 1 and metrics.cache_misses == 1

    def test_batch_deduplicates_identical_requests(self, config, monkeypatch):
        executions = []
        real = service_core._execute_request

        def counting(cfg, database, request):
            executions.append(request.source_fingerprint())
            return real(cfg, database, request)

        monkeypatch.setattr(service_core, "_execute_request", counting)
        service = DrFixService(config, database=None, max_in_flight=8, start=False)
        tickets = [service.submit(DetectRequest(package=racy_package(), runs=6))
                   for _ in range(5)]
        tickets.append(service.submit(DetectRequest(package=clean_package(), runs=6)))
        service.start()
        responses = [t.result(timeout=60) for t in tickets]
        service.shutdown()
        assert all(r.ok for r in responses)
        # 6 requests, 2 unique keys, exactly 2 executions.
        assert len(executions) == 2
        # The five identical submissions share one payload; the leader is the
        # cold computation, the followers are marked as shared/cached.
        payloads = [r.payload for r in responses[:5]]
        assert all(p == payloads[0] for p in payloads)
        assert sum(1 for r in responses[:5] if not r.cached) == 1

    def test_error_is_folded_into_a_structured_response(self, config, monkeypatch):
        def boom(request, cfg):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(service_core, "execute_detect", boom)
        with DrFixService(config, database=None) as service:
            response = service.call(DetectRequest(package=clean_package(), runs=4), timeout=30)
            assert response.status is ResponseStatus.ERROR
            assert "worker exploded" in response.detail
            assert service.metrics().errors == 1
        # The scheduler survived the error: a fresh service still serves.

    def test_invalid_bounds_rejected(self, config):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            DrFixService(config, max_queue_depth=0, start=False)
        with pytest.raises(ConfigError):
            DrFixService(config, max_in_flight=0, start=False)

    def test_bad_executor_name_fails_at_construction(self, config):
        # Not inside the scheduler thread, where it would strand tickets.
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown executor"):
            DrFixService(config, executor="bogus", start=False)

    def test_scheduler_survives_a_batch_path_failure(self, config, monkeypatch):
        # A failure in the batch machinery itself (not the guarded worker
        # body) must resolve the stranded tickets with ERROR and keep the
        # scheduler thread alive for later batches.
        real_executor = service_core.CaseExecutor
        failures = [True]  # fail the first batch only

        class ExplodingExecutor:
            def __init__(self, *args, **kwargs):
                if failures:
                    failures.pop()
                    raise RuntimeError("pool construction failed")
                self._real = real_executor(*args, **kwargs)

            def map(self, fn, items):
                return self._real.map(fn, items)

        monkeypatch.setattr(service_core, "CaseExecutor", ExplodingExecutor)
        with DrFixService(config, database=None) as service:
            broken = service.call(DetectRequest(package=clean_package("x"), runs=4),
                                  timeout=30)
            assert broken.status is ResponseStatus.ERROR
            assert "internal batch failure" in broken.detail
            # The scheduler survived: the next request is served normally.
            healthy = service.call(DetectRequest(package=clean_package("y"), runs=4),
                                   timeout=30)
            assert healthy.ok and healthy.payload["passed"]


class TestAdmissionControl:
    def test_queue_bound_yields_structured_overloaded(self, config):
        service = DrFixService(config, database=None, max_queue_depth=3, start=False)
        admitted = [service.submit(DetectRequest(package=racy_package(str(i)), runs=4))
                    for i in range(3)]
        rejected = [service.submit(DetectRequest(package=racy_package("over"), runs=4))
                    for _ in range(2)]
        # Rejections resolve immediately, before the scheduler even runs.
        for ticket in rejected:
            assert ticket.done()
            response = ticket.result(timeout=0)
            assert response.status is ResponseStatus.OVERLOADED
            assert "queue full (3/3" in response.detail
            assert response.payload == {}
        assert not any(t.done() for t in admitted)
        service.start()
        for ticket in admitted:
            assert ticket.result(timeout=60).ok
        service.shutdown()
        metrics = service.metrics()
        assert metrics.rejected == 2 and metrics.served == 3
        assert metrics.submitted == 5

    def test_flood_never_deadlocks_or_grows_unbounded(self, config, monkeypatch):
        def slow(cfg, database, request):
            time.sleep(0.03)
            return {"ok": True}, ""

        monkeypatch.setattr(service_core, "_execute_request", slow)
        service = DrFixService(config, database=None, max_queue_depth=2,
                               max_in_flight=1, cache_capacity=4)
        tickets = [service.submit(DetectRequest(package=racy_package(str(i)), runs=4))
                   for i in range(12)]
        responses = [t.result(timeout=30) for t in tickets]
        service.shutdown()
        statuses = [r.status for r in responses]
        assert statuses.count(ResponseStatus.OVERLOADED) > 0
        assert all(s in (ResponseStatus.OK, ResponseStatus.OVERLOADED) for s in statuses)
        metrics = service.metrics()
        assert metrics.served + metrics.rejected == 12
        assert metrics.queue_depth == 0
        # The queue never held more than its bound.
        assert all("(2/2" in r.detail for r in responses
                   if r.status is ResponseStatus.OVERLOADED)

    def test_shutdown_without_start_resolves_admitted_tickets(self, config):
        # A never-started scheduler cannot drain the queue; shutdown must
        # resolve admitted tickets instead of stranding them forever.
        service = DrFixService(config, database=None, start=False)
        tickets = [service.submit(DetectRequest(package=clean_package(str(i)), runs=4))
                   for i in range(3)]
        service.shutdown(wait=True)
        for ticket in tickets:
            assert ticket.done()
            response = ticket.result(timeout=0)
            assert response.status is ResponseStatus.OVERLOADED
            assert "before it was started" in response.detail
        metrics = service.metrics()
        assert metrics.submitted == 3 and metrics.rejected == 3

    def test_duplicate_responses_never_alias(self, config):
        # Leader/follower and warm-hit fan-outs must hand out private
        # payload copies: mutating one response cannot affect another.
        service = DrFixService(config, database=None, max_in_flight=8, start=False)
        tickets = [service.submit(DetectRequest(package=clean_package("alias"), runs=4))
                   for _ in range(3)]
        service.start()
        responses = [t.result(timeout=60) for t in tickets]
        warm = service.call(DetectRequest(package=clean_package("alias"), runs=4),
                            timeout=60)
        service.shutdown()
        reference = [dict(r.payload) for r in responses]
        responses[0].payload["race_hashes"].append("tampered")
        responses[0].payload["summary"] = "tampered"
        assert responses[1].payload == reference[1]
        assert responses[2].payload == reference[2]
        assert warm.payload == reference[1]

    def test_submission_after_shutdown_is_rejected(self, config):
        service = DrFixService(config, database=None)
        service.shutdown()
        response = service.call(DetectRequest(package=clean_package(), runs=4), timeout=5)
        assert response.status is ResponseStatus.OVERLOADED
        assert "shut down" in response.detail

    def test_shutdown_drains_admitted_requests(self, config):
        service = DrFixService(config, database=None, max_queue_depth=8, start=False)
        tickets = [service.submit(DetectRequest(package=clean_package(str(i)), runs=4))
                   for i in range(3)]
        service.start()
        service.shutdown(wait=True)  # must serve what it admitted
        assert all(t.done() for t in tickets)
        assert all(t.result(timeout=0).ok for t in tickets)


class TestConcurrentClients:
    def test_many_threads_submit_and_all_resolve(self, config):
        service = DrFixService(config, database=None, max_queue_depth=64, max_in_flight=4)
        packages = [racy_package(), clean_package()]
        results = []
        lock = threading.Lock()

        def client(index: int) -> None:
            response = service.call(
                DetectRequest(package=packages[index % 2], runs=6), timeout=120)
            with lock:
                results.append(response)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.shutdown()
        assert len(results) == 10 and all(r.ok for r in results)
        racy_payloads = {r.request_id: r.payload for r in results
                         if r.payload["race_hashes"]}
        clean_payloads = [r.payload for r in results if not r.payload["race_hashes"]]
        assert len(racy_payloads) == 5 and len(clean_payloads) == 5
        # Identical submissions resolved to identical payloads.
        values = list(racy_payloads.values())
        assert all(v == values[0] for v in values)
        assert all(p == clean_payloads[0] for p in clean_payloads)
        metrics = service.metrics()
        assert metrics.served == 10
        assert metrics.cache_hits + metrics.cache_misses == 10
        assert metrics.cache_hits >= 8  # 2 unique keys across 10 requests
