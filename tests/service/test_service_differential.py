"""Differential test: served responses ≡ direct invocations, corpus-wide.

The serving layer adds queueing, batching, caching, and concurrency on top of
the pipeline; none of that may change a single observable bit.  For one case
per corpus template (every race category) this suite renders *direct*
``run_package_tests``/``DrFix`` invocations through the service's payload
builders and asserts byte-equality against what the service serves — cold,
warm (cached), and under concurrent submission.  This equivalence is what
makes the fingerprint cache safe by construction.
"""

import json
import threading

import pytest

from repro.core.config import DrFixConfig
from repro.core.database import ExampleDatabase
from repro.core.pipeline import DrFix
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.runtime.harness import run_package_tests
from repro.service import DetectRequest, DrFixService, FixRequest
from repro.service.core import detect_payload, fix_outcome_payload, normalize_addresses

SCALE = 0.25
RUNS = 8


@pytest.fixture(scope="module")
def dataset():
    return CorpusGenerator(CorpusConfig().scaled(SCALE)).generate()


@pytest.fixture(scope="module")
def config():
    return DrFixConfig(model="gpt-4o", validator_runs=6, detection_runs=8)


@pytest.fixture(scope="module")
def database(dataset, config):
    return ExampleDatabase.from_cases(dataset.db_examples, config)


def representative_cases(dataset):
    """One case per race category — every corpus template family.

    Drawn from the full corpus (db + evaluation splits) so all seven
    categories are covered even at the reduced test scale.
    """
    picks = {}
    for case in dataset.all_cases():
        picks.setdefault(str(case.category), case)
    return list(picks.values())


def direct_detect(case, config):
    """What ``drfix detect`` computes, rendered as the service would."""
    result = run_package_tests(
        case.package, runs=RUNS, seed=0,
        jobs=config.harness_jobs, engine=config.engine or None,
    )
    return normalize_addresses(detect_payload(case.package, result))


def direct_fix(case, config, database):
    """What ``drfix fix`` computes (fresh pipeline per report), rendered."""
    detection = run_package_tests(
        case.package, runs=RUNS, seed=0,
        jobs=config.harness_jobs, engine=config.engine or None,
    )
    results = []
    if detection.built:
        baseline = detection.race_hashes()
        for report in detection.reports:
            pipeline = DrFix(case.package, config=config, database=database)
            outcome = pipeline.fix_report(report, baseline_hashes=baseline)
            results.append(fix_outcome_payload(case.package, outcome))
    return normalize_addresses({
        "package": detection.package,
        "built": detection.built,
        "detection_summary": detection.summary(),
        "race_hashes": detection.race_hashes(),
        "build_errors": list(detection.build_errors),
        "fixed_any": any(r["fixed"] for r in results),
        "results": results,
    })


class TestDetectDifferential:
    def test_served_detect_equals_direct_for_every_template(self, dataset, config):
        cases = representative_cases(dataset)
        assert len(cases) == 7, "expected one case per template family"
        with DrFixService(config, database=None, max_queue_depth=64) as service:
            for case in cases:
                direct = direct_detect(case, config)
                cold = service.call(DetectRequest(package=case.package, runs=RUNS),
                                    timeout=120)
                warm = service.call(DetectRequest(package=case.package, runs=RUNS),
                                    timeout=120)
                assert cold.ok and warm.ok
                assert not cold.cached and warm.cached
                assert cold.payload == direct, case.case_id
                assert warm.payload == direct, case.case_id
                # Byte-identical on the wire, not merely ==.
                assert (json.dumps(cold.payload, sort_keys=True)
                        == json.dumps(direct, sort_keys=True))

    def test_served_detect_equals_direct_under_concurrent_submission(
            self, dataset, config):
        cases = representative_cases(dataset)
        expected = {case.case_id: direct_detect(case, config) for case in cases}
        # Each case submitted twice, all at once, from many client threads.
        work = [(case.case_id, case) for case in cases] * 2
        responses = {}
        lock = threading.Lock()
        with DrFixService(config, database=None, max_queue_depth=len(work) + 1,
                          max_in_flight=4, jobs=2) as service:
            def client(case_id, case):
                response = service.call(
                    DetectRequest(package=case.package, runs=RUNS), timeout=240)
                with lock:
                    responses.setdefault(case_id, []).append(response)

            threads = [threading.Thread(target=client, args=item) for item in work]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for case_id, served in responses.items():
            assert len(served) == 2
            for response in served:
                assert response.ok
                assert response.payload == expected[case_id], case_id


class TestFixDifferential:
    def test_served_fix_equals_direct_for_every_template(
            self, dataset, config, database):
        cases = representative_cases(dataset)
        with DrFixService(config, database=database, max_queue_depth=64) as service:
            for case in cases:
                direct = direct_fix(case, config, database)
                cold = service.call(FixRequest(package=case.package, runs=RUNS),
                                    timeout=300)
                warm = service.call(FixRequest(package=case.package, runs=RUNS),
                                    timeout=300)
                assert cold.ok and warm.ok
                assert not cold.cached and warm.cached
                assert cold.payload == direct, case.case_id
                assert warm.payload == direct, case.case_id

    def test_fixable_template_is_actually_fixed_when_served(
            self, dataset, config, database):
        fixable = [case for case in representative_cases(dataset)
                   if case.expected_unfixed_reason is None]
        assert fixable
        case = fixable[0]
        with DrFixService(config, database=database) as service:
            response = service.call(FixRequest(package=case.package, runs=RUNS),
                                    timeout=300)
            assert response.ok and response.payload["fixed_any"]
