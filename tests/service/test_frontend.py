"""Frontend tests: JSON over HTTP and line-delimited JSON stdio.

``test_http_mixed_batch_cold_then_warm`` is the in-process server smoke the
CI ``service-smoke`` job runs by name: boot the HTTP server, submit a mixed
detect/fix batch twice, assert the second pass is bit-identical and warm.
"""

import http.client
import io
import json

import pytest

from repro.core.config import DrFixConfig
from repro.service import DrFixService, ServiceHTTPServer, serve_stdio
from repro.service.frontend import handle_stdio_line

RACY_SOURCE = """
package demo

import "sync"

func Run(items []string) int {
	total := 0
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total = total + len(item)
		}()
	}
	wg.Wait()
	return total
}
"""

RACY_TEST = """
package demo

import "testing"

func TestRun(t *testing.T) {
	Run([]string{"a", "bb", "ccc"})
}
"""

CLEAN_FILES = {
    "two.go": "package demo\n\nfunc Two() int {\n\treturn 2\n}\n",
    "two_test.go": ("package demo\n\nimport \"testing\"\n\n"
                    "func TestTwo(t *testing.T) {\n"
                    "\tif Two() != 2 {\n\t\tt.Errorf(\"wrong\")\n\t}\n}\n"),
}

RACY_BODY = {
    "package": "demo",
    "files": {"run.go": RACY_SOURCE, "run_test.go": RACY_TEST},
    "runs": 8,
}


@pytest.fixture
def service():
    service = DrFixService(DrFixConfig(model="gpt-4o", validator_runs=6),
                           database=None, max_queue_depth=32)
    yield service
    service.shutdown()


@pytest.fixture
def server(service):
    server = ServiceHTTPServer(service, ("127.0.0.1", 0))
    server.serve_in_background()
    yield server
    server.shutdown()
    server.server_close()


def _request(server, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=300)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestHTTP:
    def test_http_mixed_batch_cold_then_warm(self, server):
        # Cold pass: a mixed detect/fix batch.
        cold = [
            _request(server, "POST", "/detect", RACY_BODY),
            _request(server, "POST", "/fix", RACY_BODY),
        ]
        # Warm pass: the identical batch again.
        warm = [
            _request(server, "POST", "/detect", RACY_BODY),
            _request(server, "POST", "/fix", RACY_BODY),
        ]
        for (cold_status, cold_data), (warm_status, warm_data) in zip(cold, warm):
            assert cold_status == 200 and warm_status == 200
            assert cold_data["status"] == "ok" and warm_data["status"] == "ok"
            assert cold_data["cached"] is False and warm_data["cached"] is True
            # Bit-identical payloads across cold and warm serving.
            assert (json.dumps(cold_data["payload"], sort_keys=True)
                    == json.dumps(warm_data["payload"], sort_keys=True))
        detect_payload = cold[0][1]["payload"]
        assert detect_payload["race_hashes"]
        fix_payload = cold[1][1]["payload"]
        assert fix_payload["fixed_any"]
        status, metrics = _request(server, "GET", "/metrics")
        assert status == 200
        assert metrics["cache_hit_rate"] > 0
        assert metrics["served"] == 4
        # The interpreter's program cache is surfaced alongside the service
        # counters: running the racy package compiled it at least once.
        program_cache = metrics["program_cache"]
        assert set(program_cache) >= {
            "hits", "misses", "evictions", "singleflight_waits",
            "full_builds", "derived_builds", "unit_hits", "unit_misses",
        }
        assert program_cache["full_builds"] + program_cache["derived_builds"] >= 1

    def test_healthz(self, server):
        status, data = _request(server, "GET", "/healthz")
        assert status == 200 and data["status"] == "ok"
        assert "queue_depth" in data and "cache_entries" in data

    def test_malformed_body_is_400(self, server):
        status, data = _request(server, "POST", "/detect", {"files": {}})
        assert status == 400 and "files" in data["error"]

    def test_malformed_content_length_is_400_not_a_dropped_socket(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.putrequest("POST", "/detect")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            data = json.loads(response.read().decode("utf-8"))
            assert "Content-Length" in data["error"]
        finally:
            connection.close()

    def test_rejected_body_closes_the_connection(self, server):
        # The body is not drained on rejection, so keep-alive reuse would
        # desync; the server must signal Connection: close.
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request("POST", "/detect", body=json.dumps({"files": {}}),
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_unknown_endpoint_is_404(self, server):
        status, data = _request(server, "GET", "/nope")
        assert status == 404
        status, data = _request(server, "POST", "/lint", RACY_BODY)
        assert status == 404

    def test_overloaded_maps_to_503(self, service):
        service.shutdown()  # rejects everything from here on
        server = ServiceHTTPServer(service, ("127.0.0.1", 0))
        server.serve_in_background()
        try:
            status, data = _request(server, "POST", "/detect", RACY_BODY)
            assert status == 503
            assert data["status"] == "overloaded"
            assert data["detail"]
        finally:
            server.shutdown()
            server.server_close()


class TestStdio:
    def test_session_detect_metrics_shutdown(self, service):
        lines = [
            json.dumps(dict(RACY_BODY, kind="detect")),
            json.dumps(dict(RACY_BODY, kind="detect")),  # warm hit
            json.dumps({"kind": "metrics"}),
            json.dumps({"kind": "shutdown"}),
            json.dumps(dict(RACY_BODY, kind="detect")),  # never reached
        ]
        stdout = io.StringIO()
        served = serve_stdio(service, io.StringIO("\n".join(lines) + "\n"), stdout)
        assert served == 3  # two detects + metrics; shutdown ends the session
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert responses[0]["status"] == "ok" and responses[0]["cached"] is False
        assert responses[1]["status"] == "ok" and responses[1]["cached"] is True
        assert responses[0]["payload"] == responses[1]["payload"]
        assert responses[2]["kind"] == "metrics"
        assert responses[2]["payload"]["cache_hits"] == 1

    def test_bad_lines_get_structured_errors(self, service):
        assert handle_stdio_line(service, "not json")["status"] == "error"
        assert handle_stdio_line(service, json.dumps({"kind": "lint"}))["status"] == "error"
        assert handle_stdio_line(service, "   ") == {}  # blank lines are skipped

    def test_eof_ends_session(self, service):
        stdout = io.StringIO()
        body = {"package": "demo", "files": CLEAN_FILES, "kind": "detect", "runs": 4}
        served = serve_stdio(service, io.StringIO(json.dumps(body) + "\n"), stdout)
        assert served == 1
        response = json.loads(stdout.getvalue())
        assert response["status"] == "ok" and response["payload"]["passed"]
