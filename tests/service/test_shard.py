"""Unit and integration tests for the sharded service's supporting pieces:

routing, the persistent result cache (restart survival, corruption
tolerance), worker-budget accounting, health/metrics shapes, pidfile
discipline, and the frontend's configurable request timeout.
"""

import json
import os
import threading

import pytest

from repro.core.config import DrFixConfig
from repro.errors import ConfigError
from repro.execution import NESTED_BUDGET_ENV_VAR, shard_worker_budget
from repro.fingerprint import shard_for
from repro.runtime.harness import GoFile, GoPackage
from repro.service import (
    CACHE_VERSION,
    DetectRequest,
    DrFixService,
    PersistentResultCache,
    Pidfile,
    ResultCache,
    ShardedDrFixService,
    resolve_request_timeout,
    stop_daemon,
)
from repro.service.frontend import REQUEST_TIMEOUT_ENV_VAR, REQUEST_TIMEOUT_S
from repro.service.pidfile import pid_alive, read_pid

RACY_SOURCE = """
package main

var total int

func add() {
	total = total + 1
}

func TestRace(t *T) {
	go add()
	go add()
}
"""


def make_package(tag: int) -> GoPackage:
    source = RACY_SOURCE.replace("total", f"total{tag}")
    return GoPackage(name=f"pkg{tag}", files=[GoFile("main.go", source)])


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        for tag in range(32):
            fp = DetectRequest(package=make_package(tag)).source_fingerprint()
            for shards in (1, 2, 3, 8):
                bucket = shard_for(fp, shards)
                assert 0 <= bucket < shards
                assert bucket == shard_for(fp, shards)

    def test_routing_spreads_distinct_packages(self):
        buckets = {
            shard_for(DetectRequest(package=make_package(tag)).source_fingerprint(), 4)
            for tag in range(64)
        }
        assert buckets == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for("abc", 0)

    def test_same_package_always_lands_on_one_worker(self):
        package = make_package(7)
        service = ShardedDrFixService(workers=2, heartbeat_interval_s=0.02)
        try:
            for seed in (1, 2, 3):
                response = service.call(
                    DetectRequest(package=package, runs=2, seed=seed), timeout=60)
                assert response.ok
            served = [w["served"] for w in service.worker_status()]
            assert sorted(served) == [0, 3]
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Worker budget
# ---------------------------------------------------------------------------


class TestShardWorkerBudget:
    def test_divides_the_nested_budget(self, monkeypatch):
        monkeypatch.setenv(NESTED_BUDGET_ENV_VAR, "8")
        assert shard_worker_budget(2) == 4
        assert shard_worker_budget(3) == 2
        assert shard_worker_budget(16) == 1  # floor at one

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(NESTED_BUDGET_ENV_VAR, raising=False)
        assert shard_worker_budget(1) == max(1, os.cpu_count() or 1)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigError):
            shard_worker_budget(0)

    def test_service_exports_budget_to_workers(self, monkeypatch):
        monkeypatch.setenv(NESTED_BUDGET_ENV_VAR, "4")
        service = ShardedDrFixService(workers=2, heartbeat_interval_s=0.02)
        try:
            assert service.nested_budget == 2
            assert service.supervisor_stats()["nested_budget"] == 2
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------


class TestPersistentResultCache:
    def test_round_trip_and_restart_survival(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "cache", capacity=4)
        cache.put("abcd", {"x": [1, 2], "y": "z"})
        assert cache.get("abcd") == {"x": [1, 2], "y": "z"}
        # A fresh instance over the same root (a "restarted" service) hits.
        reborn = PersistentResultCache(tmp_path / "cache", capacity=4)
        assert reborn.get("abcd") == {"x": [1, 2], "y": "z"}
        assert reborn.disk_hits == 1
        # ...and the hit was promoted to memory: no second disk read needed.
        assert reborn.get("abcd") == {"x": [1, 2], "y": "z"}
        assert reborn.disk_hits == 1
        assert reborn.hits == 1

    def test_eviction_only_trims_memory_not_disk(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "cache", capacity=2)
        for index in range(5):
            cache.put(f"key{index}", {"value": index})
        assert len(cache) == 2                # LRU bound holds in memory
        assert cache.entry_count() == 5       # every entry is durable
        assert cache.get("key0") == {"value": 0}  # served from disk

    def test_corrupt_and_stale_files_count_as_misses(self, tmp_path):
        root = tmp_path / "cache"
        cache = PersistentResultCache(root, capacity=4)
        cache.put("goodkey", {"ok": True})
        path = root / "go" / "goodkey.json"
        assert path.exists()
        path.write_text("{not json")
        fresh = PersistentResultCache(root, capacity=4)
        assert fresh.get("goodkey") is None
        path.write_text(json.dumps({
            "version": CACHE_VERSION + 1, "key": "goodkey", "payload": {"ok": True}}))
        assert fresh.get("goodkey") is None
        path.write_text(json.dumps({
            "version": CACHE_VERSION, "key": "otherkey", "payload": {"ok": True}}))
        assert fresh.get("goodkey") is None
        assert fresh.disk_misses == 3

    def test_hit_rate_counts_disk_hits(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "cache", capacity=4)
        cache.put("k", {"v": 1})
        reborn = PersistentResultCache(tmp_path / "cache", capacity=4)
        assert reborn.get("k") is not None
        assert reborn.get("missing") is None
        assert reborn.hit_rate() == pytest.approx(0.5)
        stats = reborn.stats()
        assert stats["disk_hits"] == 1 and stats["disk_misses"] == 1

    def test_concurrent_writers_never_tear_an_entry(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "cache", capacity=32)
        errors = []

        def writer(worker):
            try:
                for index in range(20):
                    cache.put("shared", {"worker": worker, "index": index})
                    loaded = PersistentResultCache(tmp_path / "cache").get("shared")
                    assert loaded is not None and set(loaded) == {"worker", "index"}
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_in_process_service_accepts_cache_dir(self, tmp_path):
        package = make_package(3)
        with DrFixService(cache_dir=str(tmp_path / "cache")) as service:
            cold = service.call(DetectRequest(package=package, runs=2), timeout=60)
            assert cold.ok and not cold.cached
        with DrFixService(cache_dir=str(tmp_path / "cache")) as reborn:
            warm = reborn.call(DetectRequest(package=package, runs=2), timeout=60)
            assert warm.ok and warm.cached
            assert warm.payload == cold.payload

    def test_sharded_warm_hits_survive_a_full_restart(self, tmp_path):
        package = make_package(5)
        request = DetectRequest(package=package, runs=2, seed=1)
        first = ShardedDrFixService(workers=2, cache_dir=str(tmp_path / "cache"),
                                    heartbeat_interval_s=0.02)
        try:
            cold = first.call(request, timeout=60)
            assert cold.ok and not cold.cached
        finally:
            first.shutdown()
        second = ShardedDrFixService(workers=2, cache_dir=str(tmp_path / "cache"),
                                     heartbeat_interval_s=0.02)
        try:
            warm = second.call(request, timeout=60)
            assert warm.ok and warm.cached
            assert warm.payload == cold.payload
            # The hit never touched a worker.
            assert all(w["served"] == 0 for w in second.worker_status())
        finally:
            second.shutdown()


# ---------------------------------------------------------------------------
# Health and metrics shapes
# ---------------------------------------------------------------------------


class TestObservability:
    def test_sharded_health_reports_every_worker(self):
        service = ShardedDrFixService(workers=3, heartbeat_interval_s=0.02)
        try:
            health = service.health()
            assert health["status"] == "ok"
            assert len(health["workers"]) == 3
            for block in health["workers"]:
                assert {"shard", "pid", "state", "incarnation", "served",
                        "restarts", "last_heartbeat_age_s",
                        "queue_depth"} <= set(block)
                assert block["state"] == "ready"
                assert isinstance(block["pid"], int)
        finally:
            service.shutdown()

    def test_sharded_metrics_include_supervisor_counters(self):
        service = ShardedDrFixService(workers=2, heartbeat_interval_s=0.02)
        try:
            response = service.call(
                DetectRequest(package=make_package(1), runs=2), timeout=60)
            assert response.ok
            rendered = service.metrics().as_dict()
            supervisor = rendered["supervisor"]
            assert supervisor["workers"] == 2
            assert supervisor["restarts"] == 0
            assert supervisor["retries"] == 0
            assert supervisor["drops"] == 0
            assert len(supervisor["shards"]) == 2
            assert {s["shard"] for s in supervisor["shards"]} == {0, 1}
            assert rendered["served"] == 1
        finally:
            service.shutdown()

    def test_in_process_health_has_the_same_shape(self):
        with DrFixService() as service:
            health = service.health()
            assert health["status"] == "ok"
            assert health["workers"] == []
        assert service.health()["status"] == "draining"


# ---------------------------------------------------------------------------
# Pidfile discipline
# ---------------------------------------------------------------------------


class TestPidfile:
    def test_acquire_release_cycle(self, tmp_path):
        path = tmp_path / "drfix.pid"
        with Pidfile(path):
            assert read_pid(path) == os.getpid()
        assert not path.exists()

    def test_double_acquire_refused_while_holder_lives(self, tmp_path):
        path = tmp_path / "drfix.pid"
        with Pidfile(path):
            with pytest.raises(ConfigError, match="already running"):
                Pidfile(path).acquire()

    def test_stale_pidfile_is_broken_and_reacquired(self, tmp_path):
        path = tmp_path / "drfix.pid"
        path.write_text("999999999\n")  # far past any real pid
        with Pidfile(path):
            assert read_pid(path) == os.getpid()

    def test_garbled_pidfile_is_treated_as_stale(self, tmp_path):
        path = tmp_path / "drfix.pid"
        path.write_text("not-a-pid\n")
        with Pidfile(path):
            assert read_pid(path) == os.getpid()

    def test_release_does_not_remove_a_reowned_pidfile(self, tmp_path):
        path = tmp_path / "drfix.pid"
        pidfile = Pidfile(path).acquire()
        path.write_text("424242\n")  # another process took it over
        pidfile.release()
        assert path.exists()

    def test_stop_daemon_errors_without_a_pidfile(self, tmp_path):
        with pytest.raises(ConfigError, match="no pidfile"):
            stop_daemon(tmp_path / "missing.pid")

    def test_stop_daemon_cleans_a_stale_pidfile(self, tmp_path):
        path = tmp_path / "drfix.pid"
        path.write_text("999999999\n")
        with pytest.raises(ConfigError, match="stale"):
            stop_daemon(path)
        assert not path.exists()

    def test_pid_alive_basics(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(-1)
        assert not pid_alive(999999999)


# ---------------------------------------------------------------------------
# Request-timeout configuration
# ---------------------------------------------------------------------------


class TestRequestTimeout:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(REQUEST_TIMEOUT_ENV_VAR, raising=False)
        assert resolve_request_timeout() == REQUEST_TIMEOUT_S

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(REQUEST_TIMEOUT_ENV_VAR, "42.5")
        assert resolve_request_timeout() == 42.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(REQUEST_TIMEOUT_ENV_VAR, "42.5")
        assert resolve_request_timeout(7.0) == 7.0

    @pytest.mark.parametrize("raw", ["zero", "-3", "0"])
    def test_bad_values_fail_fast(self, monkeypatch, raw):
        monkeypatch.setenv(REQUEST_TIMEOUT_ENV_VAR, raw)
        with pytest.raises(ConfigError):
            resolve_request_timeout()

    def test_explicit_nonpositive_fails(self):
        with pytest.raises(ConfigError):
            resolve_request_timeout(0.0)

    def test_cli_rejects_nonpositive_request_timeout(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--request-timeout", "-1"])
        assert "positive" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Construction validation
# ---------------------------------------------------------------------------


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"shard_queue_depth": 0},
        {"max_retries": -1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ShardedDrFixService(start=False, **kwargs)

    def test_cache_capacity_still_validated(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_config_fingerprint_matches_in_process_service(self):
        config = DrFixConfig(model="gpt-4o")
        sharded = ShardedDrFixService(config, start=False)
        in_process = DrFixService(config, start=False)
        try:
            # Same keying discipline: a payload cached by one service form is
            # a warm hit for the other against a shared --cache-dir.
            assert sharded.config_fp == in_process.config_fp
        finally:
            in_process.shutdown()
