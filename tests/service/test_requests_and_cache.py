"""Unit tests for the service request model, result cache, and metrics."""

import pytest

from repro.core.config import DrFixConfig
from repro.errors import ConfigError
from repro.fingerprint import config_fingerprint
from repro.runtime.harness import GoFile, GoPackage
from repro.service import (
    DetectRequest,
    FixRequest,
    MetricsRecorder,
    RequestKind,
    ResultCache,
    ServiceResponse,
    ResponseStatus,
    latency_percentile,
    package_from_payload,
    request_from_payload,
)


def _package(source: str = "package p\n\nfunc F() int {\n\treturn 1\n}\n") -> GoPackage:
    return GoPackage(name="p", files=[GoFile("p.go", source)])


class TestRequestModel:
    def test_kinds_and_describe(self):
        detect = DetectRequest(package=_package(), runs=5, seed=3)
        fix = FixRequest(package=_package())
        assert detect.kind is RequestKind.DETECT
        assert fix.kind is RequestKind.FIX
        assert "detect(p, runs=5, seed=3)" == detect.describe()

    def test_validated_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigError):
            DetectRequest(package=GoPackage(name="p", files=[])).validated()
        with pytest.raises(ConfigError):
            DetectRequest(package=_package(), runs=0).validated()

    def test_cache_key_varies_by_everything_that_matters(self):
        fp = config_fingerprint(DrFixConfig())
        base = DetectRequest(package=_package(), runs=5, seed=0)
        assert base.cache_key(fp) == DetectRequest(package=_package(), runs=5, seed=0).cache_key(fp)
        # Kind, source, runs, seed, and config each change the key.
        assert base.cache_key(fp) != FixRequest(package=_package(), runs=5, seed=0).cache_key(fp)
        assert base.cache_key(fp) != DetectRequest(package=_package(), runs=6, seed=0).cache_key(fp)
        assert base.cache_key(fp) != DetectRequest(package=_package(), runs=5, seed=1).cache_key(fp)
        other_pkg = _package("package p\n\nfunc F() int {\n\treturn 2\n}\n")
        assert base.cache_key(fp) != DetectRequest(package=other_pkg, runs=5).cache_key(fp)
        other_fp = config_fingerprint(DrFixConfig(model="o1-preview"))
        assert base.cache_key(fp) != base.cache_key(other_fp)

    def test_execution_only_knobs_share_a_cache_key(self):
        # jobs/harness_jobs/engine do not change results, so they must not
        # fragment the cache (same discipline as the run store).
        base = DetectRequest(package=_package())
        serial = config_fingerprint(DrFixConfig(harness_jobs=1, engine="tree"))
        parallel = config_fingerprint(DrFixConfig(harness_jobs=8, engine="compiled", jobs=4))
        assert base.cache_key(serial) == base.cache_key(parallel)


class TestWireParsing:
    def test_round_trip(self):
        data = {"package": "demo", "files": {"a.go": "package demo\n"}, "runs": 7, "seed": 2}
        request = request_from_payload(data, kind="detect")
        assert isinstance(request, DetectRequest)
        assert request.package.name == "demo"
        assert request.runs == 7 and request.seed == 2

    def test_kind_from_body_and_default_runs(self):
        data = {"kind": "fix", "files": {"a.go": "package demo\n"}}
        request = request_from_payload(data, default_runs=4)
        assert isinstance(request, FixRequest)
        assert request.runs == 4

    def test_file_order_is_preserved(self):
        files = {"z.go": "package d\n", "a.go": "package d\n"}
        package = package_from_payload({"package": "d", "files": files})
        assert [f.name for f in package.files] == ["z.go", "a.go"]

    @pytest.mark.parametrize("data, fragment", [
        ({"files": {}}, "non-empty 'files'"),
        ({"files": {"a.go": 7}}, "string"),
        ({"files": {"a.go": "package d\n"}, "runs": "many"}, "integers"),
    ])
    def test_malformed_payloads(self, data, fragment):
        with pytest.raises(ConfigError, match=fragment):
            request_from_payload(data, kind="detect")

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown request kind"):
            request_from_payload({"files": {"a.go": "package d\n"}}, kind="lint")


class TestServiceResponse:
    def test_wire_form(self):
        response = ServiceResponse(
            request_id="r1", kind="detect", status=ResponseStatus.OK,
            payload={"passed": True}, cached=True, duration_ms=1.23456,
        )
        data = response.as_dict()
        assert data["status"] == "ok" and data["cached"] is True
        assert data["payload"] == {"passed": True}
        assert data["duration_ms"] == 1.235
        assert response.ok


class TestResultCache:
    def test_lru_eviction_and_bounds(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes 'a'
        cache.put("c", {"v": 3})  # evicts 'b' (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1} and cache.get("c") == {"v": 3}
        assert len(cache) == 2

    def test_entries_are_copy_protected(self):
        cache = ResultCache()
        payload = {"nested": {"list": [1, 2]}}
        cache.put("k", payload)
        payload["nested"]["list"].append(3)  # caller mutation after put
        first = cache.get("k")
        first["nested"]["list"].append(4)  # caller mutation after get
        assert cache.get("k") == {"nested": {"list": [1, 2]}}

    def test_hit_accounting(self):
        cache = ResultCache()
        assert cache.get("missing") is None
        cache.put("k", {})
        cache.get("k")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestMetrics:
    def test_latency_percentile(self):
        assert latency_percentile([], 0.5) == 0.0
        samples = list(range(1, 101))
        assert latency_percentile(samples, 0.50) == 51  # nearest-rank, 0-indexed
        assert latency_percentile(samples, 0.95) == 95
        assert latency_percentile([7.0], 0.95) == 7.0

    def test_recorder_snapshot(self):
        recorder = MetricsRecorder()
        recorder.on_submit()
        recorder.on_submit()
        recorder.on_reject()
        recorder.on_batch(2)
        recorder.on_served(10.0, cached=False)
        recorder.on_served(1.0, cached=True)
        snap = recorder.snapshot(queue_depth=3, in_flight=1)
        assert snap.submitted == 3 and snap.rejected == 1
        assert snap.served == 2 and snap.cache_hits == 1 and snap.cache_misses == 1
        assert snap.cache_hit_rate == 0.5
        assert snap.queue_depth == 3 and snap.in_flight == 1
        assert snap.mean_batch_size == 2.0
        assert snap.p50_latency_ms in (1.0, 10.0)
        assert snap.throughput_rps > 0
        data = snap.as_dict()
        assert data["cache_hit_rate"] == 0.5
        assert "p95_latency_ms" in data and "uptime_seconds" in data
        assert "req/s" in snap.render()
