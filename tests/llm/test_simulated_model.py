"""Tests for the simulated LLM, its profiles, and the prompt parser."""

import pytest

from repro.core.prompts import SYSTEM_PROMPT, build_messages, build_user_prompt
from repro.core.race_info import CodeItem
from repro.core.config import FixLocation, FixScope
from repro.llm.base import ChatMessage
from repro.llm.prompt_parser import parse_fix_prompt
from repro.llm.simulated import MODEL_PROFILES, SimulatedLLM, make_client


def make_item(case, scope=FixScope.FUNCTION) -> CodeItem:
    report = case.race_report(runs=10)
    return CodeItem(
        location=FixLocation.LEAF,
        scope=scope,
        file_name=case.racy_file,
        function_names=[case.racy_function],
        code=case.racy_source(),
        racy_variable=case.racy_variable,
        racy_lines=report.racy_lines(),
        racy_functions=report.involved_functions(),
    )


class TestPromptRoundTrip:
    def test_prompt_parses_back_to_the_same_task(self, err_capture_case):
        item = make_item(err_capture_case)
        example = (err_capture_case.racy_source(), err_capture_case.fixed_source())
        user = build_user_prompt(item, example=example, feedback="tests failed: race persists")
        task = parse_fix_prompt(SYSTEM_PROMPT, user)
        assert task.code.strip() == item.code.strip()
        assert task.racy_variable == item.racy_variable
        assert task.has_example
        assert task.example[0].strip() == example[0].strip()
        assert task.feedback == "tests failed: race persists"
        assert task.racy_functions == item.racy_functions

    def test_prompt_without_example_or_feedback(self, err_capture_case):
        item = make_item(err_capture_case)
        task = parse_fix_prompt(SYSTEM_PROMPT, build_user_prompt(item))
        assert not task.has_example and task.feedback == ""

    def test_scope_is_encoded(self, err_capture_case):
        item = make_item(err_capture_case, scope=FixScope.FILE)
        task = parse_fix_prompt(SYSTEM_PROMPT, build_user_prompt(item))
        assert task.scope == "file"

    def test_messages_have_system_and_user(self, err_capture_case):
        messages = build_messages(make_item(err_capture_case))
        assert [m.role for m in messages] == ["system", "user"]


class TestModelProfiles:
    def test_known_profiles_exist(self):
        assert {"gpt-4-turbo", "gpt-4o", "o1-preview", "oss-code-llama"} <= set(MODEL_PROFILES)

    def test_capability_ordering(self):
        turbo = MODEL_PROFILES["gpt-4-turbo"]
        gpt4o = MODEL_PROFILES["gpt-4o"]
        o1 = MODEL_PROFILES["o1-preview"]
        assert turbo.base_strategies < o1.base_strategies
        assert gpt4o.context_capacity < o1.context_capacity

    def test_example_unlocks_guided_strategy(self):
        profile = MODEL_PROFILES["gpt-4-turbo"]
        assert "sync_map_convert" not in profile.base_strategies
        assert "sync_map_convert" in profile.allowed_strategies("sync_map_convert")
        assert "sync_map_convert" not in profile.allowed_strategies(None)

    def test_make_client_rejects_unknown_model(self):
        with pytest.raises(KeyError):
            make_client("gpt-9-ultra")


class TestSimulatedCompletion:
    def test_simple_race_is_fixed_without_an_example(self, err_capture_case):
        client = make_client("gpt-4o")
        messages = build_messages(make_item(err_capture_case))
        response = client.complete(messages)
        assert not response.refused
        assert response.strategy == "redeclare"
        assert response.content != make_item(err_capture_case).code

    def test_complex_race_needs_a_demonstrating_example(self, shard_map_case):
        item = make_item(shard_map_case, scope=FixScope.FILE)
        client = make_client("gpt-4o")
        without = client.complete(build_messages(item))
        assert without.strategy != "sync_map_convert"
        example = (shard_map_case.racy_source(), shard_map_case.fixed_source())
        with_example = client.complete(
            build_messages(item, example=example,
                           feedback="the data race is still reported")
        )
        assert with_example.strategy == "sync_map_convert"
        assert with_example.guided_by_example

    def test_unparseable_code_is_refused(self):
        client = make_client("gpt-4o")
        response = client.complete([
            ChatMessage(role="system", content=SYSTEM_PROMPT),
            ChatMessage(role="user", content="<code>\nthis is not go code {{{\n</code>"),
        ])
        assert response.refused

    def test_determinism_for_identical_prompts(self, err_capture_case):
        client = make_client("gpt-4o")
        messages = build_messages(make_item(err_capture_case))
        assert client.complete(messages).content == client.complete(messages).content

    def test_weak_model_cannot_follow_complex_examples(self, shard_map_case):
        item = make_item(shard_map_case, scope=FixScope.FILE)
        example = (shard_map_case.racy_source(), shard_map_case.fixed_source())
        client = make_client("oss-code-llama")
        response = client.complete(build_messages(item, example=example))
        assert response.strategy != "sync_map_convert"

    def test_distraction_grows_with_context_and_shrinks_with_feedback(self, err_capture_case):
        client = make_client("gpt-4-turbo")
        item = make_item(err_capture_case, scope=FixScope.FILE)
        task = parse_fix_prompt(SYSTEM_PROMPT, build_user_prompt(item))
        small_task = parse_fix_prompt(SYSTEM_PROMPT, build_user_prompt(make_item(err_capture_case)))
        assert client._distraction_probability(task) > client._distraction_probability(small_task)
        task_with_feedback = parse_fix_prompt(
            SYSTEM_PROMPT, build_user_prompt(item, feedback="race persists")
        )
        assert client._distraction_probability(task_with_feedback) < client._distraction_probability(task)
