"""Tests for the fix strategies: detection, application, and end-to-end validity."""

import pytest

from repro.corpus.templates import TEMPLATE_REGISTRY
from repro.corpus.templates.capture_by_ref import (
    make_ctx_select_err_case,
    make_err_capture_case,
    make_limit_capture_case,
)
from repro.corpus.templates.advanced_sync import (
    make_atomic_counter_case,
    make_once_init_case,
    make_rwmutex_read_case,
)
from repro.corpus.templates.concurrent_map import make_shard_map_case
from repro.corpus.templates.loop_var import make_loop_var_case
from repro.corpus.templates.missing_sync import make_counter_case, make_waitgroup_add_case
from repro.corpus.templates.parallel_test import make_shared_hash_case
from repro.corpus.templates.others import make_config_copy_case, make_rand_source_case
from repro.diagnosis import infer_pattern_from_example
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies import (
    STRATEGY_ORDER,
    STRATEGY_REGISTRY,
    ordered_strategies,
    parse_scope,
)
from repro.runtime.harness import run_package_tests


def task_for(case, scope_kind: str = "file") -> FixTask:
    report = case.race_report(runs=12)
    assert report is not None
    return FixTask(
        code=case.racy_source() if scope_kind == "file" else case.racy_source(),
        scope=scope_kind,
        file_name=case.racy_file,
        racy_variable=case.racy_variable,
        racy_functions=report.involved_functions(),
    )


def apply_strategy(case, strategy_name: str) -> str:
    task = task_for(case)
    scope = parse_scope(task.code)
    strategy = STRATEGY_REGISTRY[strategy_name]
    plan = strategy.detect(task, scope)
    assert plan is not None, f"{strategy_name} did not detect its pattern"
    revised = strategy.apply(task, scope, plan)
    assert revised and revised != task.code
    return revised


def validates(case, revised: str) -> bool:
    report = case.race_report(runs=12)
    patched = case.package.replace_file(case.racy_file, revised)
    result = run_package_tests(patched, runs=12)
    return result.built and not result.has_race(report.bug_hash()) and not result.test_failures


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_every_strategy_has_a_unique_name(self):
        assert len(STRATEGY_REGISTRY) == len(set(STRATEGY_REGISTRY))

    def test_order_covers_exactly_the_registry(self):
        assert set(STRATEGY_ORDER) == set(STRATEGY_REGISTRY)

    def test_ordered_strategies_respects_allowed_filter(self):
        names = [s.name for s in ordered_strategies({"redeclare", "mutex_guard"})]
        assert names == ["redeclare", "mutex_guard"]


# ---------------------------------------------------------------------------
# Individual strategies
# ---------------------------------------------------------------------------


class TestIndividualStrategies:
    def test_redeclare_changes_assignment_to_declaration(self):
        case = make_err_capture_case(21, 0)
        revised = apply_strategy(case, "redeclare")
        assert revised.count(":=") == case.racy_source().count(":=") + 1
        assert validates(case, revised)

    def test_privatize_introduces_local_copy(self):
        case = make_limit_capture_case(22, 0)
        revised = apply_strategy(case, "privatize_local_copy")
        assert "localLimit := limit" in revised.replace("\t", "")
        assert validates(case, revised)

    def test_loop_var_copy_inserts_self_assignment(self):
        case = make_loop_var_case(23, 0)
        revised = apply_strategy(case, "loop_var_copy")
        assert f"{case.racy_variable} := {case.racy_variable}" in revised
        assert validates(case, revised)

    def test_move_wg_add_relocates_add_before_go(self):
        case = make_waitgroup_add_case(24, 0)
        revised = apply_strategy(case, "move_wg_add")
        add_index = revised.index("wg.Add(1)")
        go_index = revised.index("go func(")
        assert add_index < go_index
        assert validates(case, revised)

    def test_mutex_guard_adds_field_and_locks_methods(self):
        case = make_counter_case(25, 0)
        revised = apply_strategy(case, "mutex_guard")
        assert "mu sync.Mutex" in revised
        assert revised.count(".Lock()") >= 2
        assert validates(case, revised)

    def test_sync_map_convert_rewrites_all_operations(self):
        case = make_shard_map_case(26, 0)
        revised = apply_strategy(case, "sync_map_convert")
        assert "sync.Map" in revised
        assert ".Range(func(" in revised
        assert ".Delete(" in revised
        assert ".Store(" in revised
        assert validates(case, revised)

    def test_channel_error_adds_error_channel(self):
        case = make_ctx_select_err_case(27, 0)
        revised = apply_strategy(case, "channel_error")
        assert "errChan := make(chan error, 1)" in revised
        assert "errChan <- err" in revised
        assert validates(case, revised)

    def test_struct_copy_copies_before_mutation(self):
        case = make_config_copy_case(28, 0)
        revised = apply_strategy(case, "struct_copy")
        assert ":= *" in revised
        assert validates(case, revised)

    def test_rand_per_request_creates_fresh_source(self):
        case = make_rand_source_case(29, 0)
        revised = apply_strategy(case, "rand_per_request")
        assert "rand.New(rand.NewSource(" in revised
        assert validates(case, revised)

    def test_parallel_test_isolation_removes_shared_fixture(self):
        case = make_shared_hash_case(30, 0)
        report = case.race_report(runs=12)
        task = FixTask(
            code=case.racy_source(), scope="file", file_name=case.racy_file,
            racy_variable=case.racy_variable, racy_functions=report.involved_functions(),
        )
        scope = parse_scope(task.code)
        strategy = STRATEGY_REGISTRY["parallel_test_isolation"]
        plan = strategy.detect(task, scope)
        assert plan is not None and plan.data["variable"] == "sampleHash"
        revised = strategy.apply(task, scope, plan)
        assert "sampleHash :=" not in revised
        assert validates(case, revised)

    def test_strategies_do_not_misfire_on_clean_code(self):
        clean = """
package p

import "sync"

func Clean() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 1
}
"""
        task = FixTask(code=clean, scope="file", racy_variable="")
        scope = parse_scope(clean)
        for name in ("redeclare", "loop_var_copy", "move_wg_add", "sync_map_convert",
                     "channel_error", "struct_copy", "parallel_test_isolation",
                     "rand_per_request"):
            assert STRATEGY_REGISTRY[name].detect(task, scope) is None, name


# ---------------------------------------------------------------------------
# Example-pattern inference
# ---------------------------------------------------------------------------


class TestExampleInference:
    @pytest.mark.parametrize(
        "maker, expected",
        [
            (make_err_capture_case, "redeclare"),
            (make_limit_capture_case, "privatize_local_copy"),
            (make_loop_var_case, "loop_var_copy"),
            (make_waitgroup_add_case, "move_wg_add"),
            (make_counter_case, "mutex_guard"),
            (make_shard_map_case, "sync_map_convert"),
            (make_ctx_select_err_case, "channel_error"),
            (make_config_copy_case, "struct_copy"),
            (make_rand_source_case, "rand_per_request"),
            (make_shared_hash_case, "parallel_test_isolation"),
            (make_atomic_counter_case, "atomic_counter"),
            (make_rwmutex_read_case, "rwmutex_read_lock"),
            (make_once_init_case, "once_lazy_init"),
        ],
    )
    def test_demonstrated_strategy_is_inferred_from_example(self, maker, expected):
        case = maker(31, 1)
        assert infer_pattern_from_example(case.racy_source(), case.fixed_source()) == expected

    def test_empty_example_infers_nothing(self):
        assert infer_pattern_from_example("", "") is None

    def test_identical_code_infers_nothing(self):
        code = "package p\nfunc F() {}\n"
        assert infer_pattern_from_example(code, code) is None

    def test_inference_accuracy_over_every_fixable_template(self):
        hits = 0
        total = 0
        for category, templates in TEMPLATE_REGISTRY.items():
            for template in templates:
                case = template(97, 1)
                total += 1
                inferred = infer_pattern_from_example(case.racy_source(), case.fixed_source())
                if inferred == case.fix_strategy:
                    hits += 1
        assert hits / total >= 0.85
