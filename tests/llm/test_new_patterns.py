"""End-to-end tests for the three registry-extension repair scenarios:
sync/atomic counter rewrite, RWMutex read-path locking, and sync.Once
lazy-init — strategy detection/application, validation, and guided pipeline
fixes driven by retrieved examples."""

import pytest

from repro.core import DrFix, DrFixConfig, ExampleDatabase
from repro.corpus.templates.advanced_sync import (
    make_atomic_counter_case,
    make_once_init_case,
    make_rwmutex_read_case,
)
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies import STRATEGY_REGISTRY, parse_scope
from repro.runtime.harness import run_package_tests

MAKERS = {
    "atomic_counter": make_atomic_counter_case,
    "rwmutex_read_lock": make_rwmutex_read_case,
    "once_lazy_init": make_once_init_case,
}


def _apply(case, strategy_name: str) -> str:
    report = case.race_report(runs=12)
    assert report is not None
    task = FixTask(
        code=case.racy_source(),
        scope="file",
        file_name=case.racy_file,
        racy_variable=case.racy_variable,
        racy_functions=report.involved_functions(),
    )
    scope = parse_scope(task.code)
    strategy = STRATEGY_REGISTRY[strategy_name]
    plan = strategy.detect(task, scope)
    assert plan is not None, f"{strategy_name} did not detect its pattern"
    revised = strategy.apply(task, scope, plan)
    assert revised and revised != task.code
    return revised


def _validates(case, revised: str) -> bool:
    report = case.race_report(runs=12)
    patched = case.package.replace_file(case.racy_file, revised)
    result = run_package_tests(patched, runs=12)
    return result.built and not result.has_race(report.bug_hash()) and not result.test_failures


class TestStrategyApplication:
    def test_atomic_counter_rewrites_increment_and_read(self):
        case = make_atomic_counter_case(41, 0)
        revised = _apply(case, "atomic_counter")
        assert "atomic.AddInt64(&" in revised
        assert "atomic.LoadInt64(&" in revised
        assert _validates(case, revised)

    def test_rwmutex_read_lock_guards_bare_reader(self):
        case = make_rwmutex_read_case(41, 0)
        revised = _apply(case, "rwmutex_read_lock")
        assert ".RLock()" in revised
        assert "defer" in revised and ".RUnlock()" in revised
        assert _validates(case, revised)

    def test_once_lazy_init_introduces_once_guard(self):
        case = make_once_init_case(41, 0)
        revised = _apply(case, "once_lazy_init")
        assert "sync.Once" in revised
        assert ".Do(func() {" in revised
        assert _validates(case, revised)

    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_new_strategies_do_not_misfire_on_clean_code(self, strategy_name):
        clean = """
package p

import "sync"

func Clean() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 1
}
"""
        task = FixTask(code=clean, scope="file", racy_variable="state")
        scope = parse_scope(clean)
        assert STRATEGY_REGISTRY[strategy_name].detect(task, scope) is None


class TestGuidedPipelineFixes:
    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_each_new_template_achieves_nonzero_fix_rate_via_its_pattern(self, strategy_name):
        """Acceptance bar: with demonstrating examples in the database, the
        pipeline produces validated fixes that use the new pattern."""
        maker = MAKERS[strategy_name]
        config = DrFixConfig(model="gpt-4o")
        database = ExampleDatabase.from_cases([maker(1009, 1), maker(2017, 2)], config)
        pattern_wins = 0
        fixed = 0
        for seed in (41, 55, 68, 77, 90, 123):
            case = maker(seed, 1)
            outcome = DrFix(case.package, config=config, database=database).fix_case(case)
            if outcome.fixed:
                fixed += 1
                if outcome.strategy == strategy_name:
                    pattern_wins += 1
                    assert outcome.guided_by_example
        assert fixed > 0
        assert pattern_wins > 0, f"no validated fix used {strategy_name}"

    def test_outcome_diagnosis_matches_template_category(self):
        case = make_atomic_counter_case(55, 1)
        outcome = DrFix(case.package, config=DrFixConfig(model="gpt-4o")).fix_case(case)
        assert outcome.diagnosis is not None
        assert outcome.diagnosis.category is case.category
