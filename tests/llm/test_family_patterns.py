"""End-to-end tests for the four PR-6 race-family repair scenarios:
double-checked locking, channel-close completion signalling, bulk wg.Add
accounting, and sync.Map value-level locking — strategy detection and
application, validation, example inference, and guided pipeline fixes."""

import pytest

from repro.core import DrFix, DrFixConfig, ExampleDatabase
from repro.corpus.templates.new_families import (
    make_bulk_wgadd_case,
    make_channel_close_case,
    make_double_checked_case,
    make_syncmap_entry_case,
)
from repro.diagnosis.examples import infer_pattern_from_example
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies import STRATEGY_REGISTRY, parse_scope
from repro.runtime.harness import run_package_tests

MAKERS = {
    "double_checked_locking": make_double_checked_case,
    "channel_close_signal": make_channel_close_case,
    "bulk_wg_add": make_bulk_wgadd_case,
    "syncmap_value_lock": make_syncmap_entry_case,
}


def _apply(case, strategy_name: str) -> str:
    report = case.race_report(runs=12)
    assert report is not None
    task = FixTask(
        code=case.racy_source(),
        scope="file",
        file_name=case.racy_file,
        racy_variable=case.racy_variable,
        racy_functions=report.involved_functions(),
    )
    scope = parse_scope(task.code)
    strategy = STRATEGY_REGISTRY[strategy_name]
    plan = strategy.detect(task, scope)
    assert plan is not None, f"{strategy_name} did not detect its pattern"
    revised = strategy.apply(task, scope, plan)
    assert revised and revised != task.code
    return revised


def _validates(case, revised: str) -> bool:
    report = case.race_report(runs=12)
    patched = case.package.replace_file(case.racy_file, revised)
    result = run_package_tests(patched, runs=12)
    return result.built and not result.has_race(report.bug_hash()) and not result.test_failures


class TestStrategyApplication:
    def test_double_checked_locking_hoists_nil_check(self):
        case = make_double_checked_case(41, 0)
        revised = _apply(case, "double_checked_locking")
        # Exactly one nil check remains, and it sits under the lock.
        assert revised.count("== nil") == 1
        assert _validates(case, revised)

    def test_channel_close_signal_replaces_flag(self):
        case = make_channel_close_case(41, 0)
        revised = _apply(case, "channel_close_signal")
        assert "make(chan bool)" in revised
        assert "close(done)" in revised
        assert "select {" in revised
        assert _validates(case, revised)

    def test_bulk_wg_add_hoists_batch_accounting(self):
        case = make_bulk_wgadd_case(41, 0)
        revised = _apply(case, "bulk_wg_add")
        assert "wg.Add(workers)" in revised
        assert "wg.Add(1)" not in revised
        assert _validates(case, revised)

    def test_syncmap_value_lock_guards_entry_mutation(self):
        case = make_syncmap_entry_case(41, 0)
        revised = _apply(case, "syncmap_value_lock")
        assert "mu sync.Mutex" in revised
        assert ".mu.Lock()" in revised
        assert "defer" in revised and ".mu.Unlock()" in revised
        assert _validates(case, revised)

    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_family_strategies_do_not_misfire_on_clean_code(self, strategy_name):
        clean = """
package p

import "sync"

func Clean(n int) int {
	var wg sync.WaitGroup
	wg.Add(n)
	total := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			total = total + 1
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}
"""
        task = FixTask(code=clean, scope="file", racy_variable="total")
        scope = parse_scope(clean)
        assert STRATEGY_REGISTRY[strategy_name].detect(task, scope) is None


class TestExampleInference:
    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_template_example_pair_demonstrates_its_pattern(self, strategy_name):
        case = MAKERS[strategy_name](97, 1)
        inferred = infer_pattern_from_example(case.racy_source(), case.fixed_source())
        assert inferred == strategy_name


class TestGuidedPipelineFixes:
    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_each_family_achieves_nonzero_fix_rate_via_its_pattern(self, strategy_name):
        """Acceptance bar: with demonstrating examples in the database, the
        pipeline produces validated fixes that use the new pattern."""
        maker = MAKERS[strategy_name]
        config = DrFixConfig(model="gpt-4o")
        database = ExampleDatabase.from_cases([maker(1009, 1), maker(2017, 2)], config)
        pattern_wins = 0
        fixed = 0
        for seed in (41, 55, 68, 77, 90, 123):
            case = maker(seed, 1)
            outcome = DrFix(case.package, config=config, database=database).fix_case(case)
            if outcome.fixed:
                fixed += 1
                if outcome.strategy == strategy_name:
                    pattern_wins += 1
                    assert outcome.guided_by_example
        assert fixed > 0
        assert pattern_wins > 0, f"no validated fix used {strategy_name}"

    @pytest.mark.parametrize("strategy_name", sorted(MAKERS))
    def test_outcome_diagnosis_matches_template_category(self, strategy_name):
        case = MAKERS[strategy_name](55, 1)
        outcome = DrFix(case.package, config=DrFixConfig(model="gpt-4o")).fix_case(case)
        assert outcome.diagnosis is not None
        assert outcome.diagnosis.category is case.category
