#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables/figures on a small corpus.

This drives the same harness the benchmarks use, at a reduced corpus scale so
it finishes in about a minute, and prints every table with the paper's value
next to the measured one.  Use ``drfix evaluate --scale 1.0`` (or the
benchmarks) for the full-scale run recorded in EXPERIMENTS.md.

Run with::

    python examples/ablation_report.py
"""

from __future__ import annotations

import time

from repro.corpus.generator import CorpusConfig
from repro.evaluation.experiments import all_experiment_tables
from repro.evaluation.reporting import render_report
from repro.evaluation.runner import ExperimentContext


def main() -> None:
    start = time.time()
    context = ExperimentContext(
        corpus_config=CorpusConfig(db_examples=20, eval_fixable=22, eval_unfixable=10, seed=2025),
    )
    tables = all_experiment_tables(context)
    print(render_report(tables))
    print(f"regenerated {len(tables)} tables/figures in {time.time() - start:.0f}s "
          f"over {len(context.dataset.evaluation)} evaluation races")


if __name__ == "__main__":
    main()
