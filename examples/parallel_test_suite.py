#!/usr/bin/env python3
"""Fixing a race whose root cause is in the test, not in the code under test.

The paper's "parallel test suite" category (13% of fixes, Listing 7): table-
driven subtests run with ``t.Parallel()`` while sharing a single mutable
fixture.  The racing source lines live in the code under test, but the right
fix privatizes the fixture in the *test* — which is why Dr.Fix tries the test
function as a fix location before the leaf functions.

Run with::

    python examples/parallel_test_suite.py
"""

from __future__ import annotations

from repro.core import DrFix, DrFixConfig, ExampleDatabase
from repro.diagnosis.categories import RaceCategory
from repro.corpus.generator import generate_cases


def main() -> None:
    config = DrFixConfig(model="gpt-4o")
    db_cases = generate_cases([RaceCategory.PARALLEL_TEST_SUITE], 2, seed=91)
    database = ExampleDatabase.from_cases(db_cases, config)

    case = generate_cases([RaceCategory.PARALLEL_TEST_SUITE], 1, seed=777)[0]
    report = case.race_report(runs=12)

    print("== the racy test file ==")
    print(case.racy_source())
    print("== the race report (racing lines are in the code under test) ==")
    print(report.render())

    outcome = DrFix(case.package, config=config, database=database).fix_case(case)
    print("\n== Dr.Fix outcome ==")
    print(f"fixed: {outcome.fixed}")
    print(f"strategy: {outcome.strategy}")
    print(f"fix location: {outcome.location} (scope: {outcome.scope})")
    assert outcome.location == "test", "the fix should land in the test function"
    print("\n== patch ==")
    print(outcome.patch.diff(case.package))


if __name__ == "__main__":
    main()
