#!/usr/bin/env python3
"""Quickstart: detect and automatically fix the paper's Listing 1 data race.

The example builds a tiny Go package containing the classic
"``err`` captured by reference in a goroutine" race, runs the race detector
(the ``go test -race`` substitute), hands the report to the Dr.Fix pipeline,
and prints the validated patch.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DrFix, DrFixConfig
from repro.runtime.harness import GoFile, GoPackage, run_package_tests

SERVICE = """
package billing

import "sync"

func validate() error { return nil }
func loadInvoice(n int) error { return nil }
func publishLedger(n int) error { return nil }

func SettleInvoice(n int) error {
	err := validate()
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err = loadInvoice(n); err != nil {
			return
		}
	}()
	if err = publishLedger(n); err != nil {
		return err
	}
	wg.Wait()
	return err
}
"""

SERVICE_TEST = """
package billing

import "testing"

func TestSettleInvoice(t *testing.T) {
	if err := SettleInvoice(7); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}
"""


def main() -> None:
    package = GoPackage(
        name="billing",
        files=[GoFile("settle.go", SERVICE), GoFile("settle_test.go", SERVICE_TEST)],
    )

    print("== 1. detect the race (go test -race substitute) ==")
    detection = run_package_tests(package, runs=12)
    print(detection.summary())
    report = detection.reports[0]
    print(report.render())
    print(f"stable bug hash: {report.bug_hash()}\n")

    print("== 2. run the Dr.Fix pipeline ==")
    config = DrFixConfig(model="gpt-4o")
    pipeline = DrFix(package, config=config)  # no example database: inherent capability only
    outcome = pipeline.fix_report(report, baseline_hashes=detection.race_hashes())
    print(f"fixed: {outcome.fixed}  strategy: {outcome.strategy}  "
          f"location: {outcome.location}/{outcome.scope}  "
          f"attempts: {len(outcome.attempts)}\n")

    print("== 3. the validated patch ==")
    print(outcome.patch.diff(package))

    print("\n== 4. re-validate the patched package ==")
    revalidation = run_package_tests(outcome.patch.package, runs=12)
    print(revalidation.summary())


if __name__ == "__main__":
    main()
