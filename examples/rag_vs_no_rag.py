#!/usr/bin/env python3
"""RAG vs no-RAG on a complex race: converting a map field to sync.Map.

This example reproduces the paper's central claim at the scale of one bug:
the base model cannot restructure a struct's map field into a ``sync.Map``
on its own, but when the retrieval-augmented pipeline fetches a structurally
similar, previously fixed example (matched by concurrency *skeleton*), the
model follows the demonstrated pattern and produces a validated fix.

Run with::

    python examples/rag_vs_no_rag.py
"""

from __future__ import annotations

from repro.core import DrFix, DrFixConfig, ExampleDatabase
from repro.diagnosis.categories import RaceCategory
from repro.corpus.generator import generate_cases


def main() -> None:
    config = DrFixConfig(model="gpt-4o")

    # The "previously fixed races" a deployment accumulates: here, a handful of
    # curated examples including one sync.Map conversion.
    db_cases = generate_cases(
        [RaceCategory.CONCURRENT_MAP_ACCESS, RaceCategory.CAPTURE_BY_REFERENCE,
         RaceCategory.MISSING_SYNCHRONIZATION],
        count_per_category=2,
        seed=2024,
    )
    database = ExampleDatabase.from_cases(db_cases, config)
    print(f"example database: {len(database)} curated fixes")

    # A new, unseen race of the concurrent-map category (different domain noise).
    case = generate_cases([RaceCategory.CONCURRENT_MAP_ACCESS], 1, seed=555)[0]
    report = case.race_report(runs=12)
    print(f"new race: {case.case_id} on `{case.racy_variable}` "
          f"({case.category.display_name})")
    print(f"report hash: {report.bug_hash()}\n")

    print("== attempt without RAG (inherent capability only) ==")
    without = DrFix(case.package, config=config.without_rag()).fix_case(case)
    print(f"fixed: {without.fixed}  reason: {without.failure_reason or without.strategy}\n")

    print("== attempt with RAG + concurrency skeletons ==")
    with_rag = DrFix(case.package, config=config, database=database).fix_case(case)
    print(f"fixed: {with_rag.fixed}  strategy: {with_rag.strategy}  "
          f"guided by example: {with_rag.guided_by_example}  "
          f"retrieved example: {with_rag.example_id}")
    if with_rag.fixed:
        print("\npatch (excerpt):")
        diff = with_rag.patch.diff(case.package)
        print("\n".join(diff.splitlines()[:40]))

    skeleton = database.skeletonizer.skeletonize_source(
        case.racy_source(), racy_variables=[case.racy_variable]
    ).text
    print("\nthe retrieval key — the new race's concurrency skeleton:")
    print(skeleton)


if __name__ == "__main__":
    main()
