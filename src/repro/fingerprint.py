"""Shared fingerprint helpers: one keying discipline for every cache layer.

Three caches key work by "what would this compute?":

* the **run store** (:mod:`repro.evaluation.store`) keys per-case pipeline
  results by (corpus fingerprint, config fingerprint, case id);
* the **program cache** (:mod:`repro.runtime.compiler`) keys compiled
  packages by a source fingerprint;
* the **service result cache** (:mod:`repro.service`) keys served responses
  by (request kind, source fingerprint, config fingerprint).

This module is the single home for the configuration-hashing half of that
discipline, placed outside the evaluation layer so the service layer can key
its cache without importing the experiment harness.  The rules:

* a fingerprint is a stable digest of a **canonical JSON form** (dataclasses
  become sorted dicts, enums their values, tuples lists);
* **execution-only fields** — knobs that change how fast a run executes but
  never what it computes (``jobs``, ``harness_jobs``, ``engine``) — are
  excluded, so a parallel run hits the entries a serial run wrote;
* an optional **version** folds a format version into the digest, cleanly
  invalidating old entries when a serialisation changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional

#: DrFixConfig fields that change how fast a run executes but not what it
#: computes.  ``harness_jobs`` qualifies because the harness merges its
#: per-seed run results in submission order, making the worker count invisible
#: in the output.  ``engine`` qualifies because the compiled and tree engines
#: are bit-identical (enforced by the corpus-wide differential test).
EXECUTION_ONLY_FIELDS = frozenset({"jobs", "harness_jobs", "engine"})


def canonical(value: Any) -> Any:
    """Reduce a config value to a JSON-stable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if hasattr(value, "value") and value.__class__.__module__ != "builtins":
        return canonical(value.value)  # enums
    return value


def digest(payload: Dict[str, Any]) -> str:
    """A short stable hex digest of a canonical payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=10).hexdigest()


def config_fingerprint(config: Any, version: Optional[int] = None) -> str:
    """A stable hash of every result-affecting configuration field.

    ``version`` folds a serialisation format version into the digest (the run
    store passes its ``STORE_VERSION`` so a format bump invalidates entries).
    """
    payload = {
        name: value
        for name, value in canonical(config).items()
        if name not in EXECUTION_ONLY_FIELDS
    }
    if version is not None:
        payload["__store_version__"] = version
    return digest(payload)


def corpus_fingerprint(corpus_config: Any) -> str:
    """A stable hash of the corpus configuration (used as a cache namespace)."""
    return digest({"corpus": canonical(corpus_config)})


def shard_for(fingerprint: str, shards: int) -> int:
    """Route a fingerprint to one of ``shards`` buckets, stably.

    The sharded service routes requests by *source* fingerprint, so every
    request for one package lands on the same worker process — that worker's
    program cache stays hot for the package, and two concurrent requests for
    the same package serialize on one shard instead of computing twice.
    Hashing the fingerprint (rather than truncating it) keeps the buckets
    balanced even if the fingerprint encoding ever becomes non-uniform.
    """
    if shards < 1:
        raise ValueError("shard count must be positive")
    raw = hashlib.blake2b(fingerprint.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(raw, "big") % shards


__all__ = [
    "EXECUTION_ONLY_FIELDS",
    "canonical",
    "config_fingerprint",
    "corpus_fingerprint",
    "digest",
    "shard_for",
]
