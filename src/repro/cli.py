"""Command-line interface for the Dr.Fix reproduction.

Subcommands:

* ``drfix corpus``     — generate the synthetic corpus and print its statistics;
* ``drfix detect``     — run the race detector over a directory of ``.go`` files;
* ``drfix fix``        — run the full pipeline on a directory of ``.go`` files;
* ``drfix evaluate``   — regenerate every table and figure of the paper;
* ``drfix bench``      — measure the parallel/cached evaluation engine's speedup;
* ``drfix serve``      — run Dr.Fix as a service (JSON over HTTP or stdio);
* ``drfix version``    — report the installed package version (also ``--version``).

``evaluate`` and ``bench`` accept ``--jobs N`` (parallel case evaluation; also
settable via ``DRFIX_JOBS``) and ``--cache-dir DIR`` (persistent run store that
reuses per-case results across invocations).  ``detect`` parallelises the
per-seed interleaving runs themselves (``--jobs``, ``--fail-fast``), and
``fix`` validates the candidate patches of each (location, scope) batch
concurrently (``--jobs``) — all worker layers share the ``DRFIX_NESTED_BUDGET``
budget so nesting never oversubscribes the machine.

``detect`` and ``fix`` also accept ``--engine compiled|tree`` (default:
``DRFIX_ENGINE`` or the compile-once engine): the compiled engine lowers each
package once into pre-bound closures and reuses the build through the
process-wide program cache; ``tree`` is the reference tree-walk.  The two are
bit-identical (enforced by the corpus-wide differential test), so the flag
only changes speed.
"""

from __future__ import annotations

import argparse
import copy
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import DrFixConfig
from repro.errors import ConfigError
from repro.core.database import ExampleDatabase
from repro.core.pipeline import DrFix
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.diagnosis import RaceDiagnoser, all_patterns, category_from_value
from repro.evaluation.executor import JOBS_ENV_VAR, resolve_jobs
from repro.evaluation.experiments import all_experiment_tables
from repro.evaluation.reporting import render_report
from repro.evaluation.runner import EvaluationRunner, ExperimentContext
from repro.evaluation.store import RunStore, corpus_fingerprint
from repro.runtime.compiler import PROGRAM_CACHE
from repro.runtime.harness import GoFile, GoPackage, run_package_tests
from repro.runtime.schedule_index import SCHEDULE_CLASS_REGISTRY
from repro.service import (
    DrFixService,
    Pidfile,
    ServiceHTTPServer,
    ShardedDrFixService,
    resolve_request_timeout,
    serve_stdio,
    stop_daemon,
)


def drfix_version() -> str:
    """The installed distribution's version, falling back to the source tree.

    ``importlib.metadata`` answers for a ``pip install``-ed checkout; a bare
    ``PYTHONPATH=src`` checkout (no dist-info) falls back to
    ``repro.__version__``.
    """
    try:
        from importlib.metadata import version

        return version("drfix-repro")
    except Exception:
        from repro import __version__

        return __version__


# ---------------------------------------------------------------------------
# Shared argument validation
# ---------------------------------------------------------------------------
#
# Every subcommand that accepts worker/run counts validates them at the
# argparse boundary with the same types, so a bad value fails with one clear
# message instead of deep inside the executor or the harness.


def positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (runs, queue bounds)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def positive_float(text: str) -> float:
    """Argparse type for durations that must be > 0 (timeouts)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}")
    return value


def jobs_count(text: str) -> int:
    """Argparse type for ``--jobs``: positive worker count or negative for
    one worker per CPU; zero is rejected (it is the "unset" sentinel)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value == 0:
        raise argparse.ArgumentTypeError(
            "--jobs must not be 0; use a positive worker count, or a negative "
            "value for one worker per CPU")
    return value


def _load_package(directory: str) -> GoPackage:
    root = Path(directory)
    files: List[GoFile] = []
    for path in sorted(root.rglob("*.go")):
        files.append(GoFile(name=str(path.relative_to(root)), source=path.read_text()))
    if not files:
        raise SystemExit(f"no .go files found under {directory}")
    return GoPackage(name=root.name, files=files)


def _corpus_config(args: argparse.Namespace) -> CorpusConfig:
    return CorpusConfig().scaled(args.scale)


def cmd_corpus_generate(args: argparse.Namespace) -> int:
    """Generate a labeled mutant corpus (template bases + derived mutants)."""
    import json

    config = CorpusConfig(seed=args.seed, noise_level=args.noise_level)
    generator = CorpusGenerator(config)
    start = time.perf_counter()
    cases = generator.generate_mutant_corpus(
        args.count,
        mutants_per_base=args.mutants_per_base,
        flip_fraction=args.flip_fraction,
    )
    elapsed = time.perf_counter() - start
    racy = sum(1 for case in cases if case.expected_race)
    mutants = sum(1 for case in cases if case.base_case_id)
    print(f"generated {len(cases)} labeled cases in {elapsed:.2f}s "
          f"({len(cases) / max(elapsed, 1e-9):.1f} cases/s)")
    print(f"  {racy} racy, {len(cases) - racy} race-free (sync-injected); "
          f"{mutants} mutants from {len(cases) - mutants} template bases")
    by_category: dict = {}
    for case in cases:
        by_category[case.category.value] = by_category.get(case.category.value, 0) + 1
    for category, count in sorted(by_category.items()):
        print(f"  {category:<28} {count}")
    if args.validate_sample:
        from repro.corpus.validate import validate_corpus

        step = max(1, len(cases) // args.validate_sample)
        sample = cases[::step][:args.validate_sample]
        validation = validate_corpus(sample, runs=args.runs)
        print(validation.summary())
        if not validation.ok:
            return 1
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        for case in cases:
            case_dir = out / case.case_id
            case_dir.mkdir(parents=True, exist_ok=True)
            for file in case.package.files:
                target = case_dir / file.name
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(file.source)
            labels = {
                "case_id": case.case_id,
                "category": case.category.value,
                "expected_race": case.expected_race,
                "racy_file": case.racy_file,
                "racy_function": case.racy_function,
                "racy_variable": case.racy_variable,
                "fix_strategy": case.fix_strategy,
                "difficulty": case.difficulty.value,
                "base_case_id": case.base_case_id,
                "mutations": case.mutations,
            }
            (case_dir / "labels.json").write_text(json.dumps(labels, indent=2) + "\n")
        print(f"wrote {len(cases)} labeled cases to {out}")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    dataset = CorpusGenerator(_corpus_config(args)).generate()
    stats = dataset.statistics()
    print(f"vector-database examples: {len(dataset.db_examples)}")
    print(f"evaluation cases:         {len(dataset.evaluation)} "
          f"({len(dataset.fixable_eval_cases())} fixable, "
          f"{len(dataset.unfixable_eval_cases())} unfixable by design)")
    print(f"files: {stats.files} ({stats.product_files} product, {stats.test_files} test)")
    print(f"lines of Go: {stats.lines} ({stats.concurrency_lines} in files using concurrency)")
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        for case in dataset.all_cases():
            case_dir = out / case.case_id
            case_dir.mkdir(parents=True, exist_ok=True)
            for file in case.package.files:
                target = case_dir / file.name
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(file.source)
        print(f"wrote corpus packages to {out}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    package = _load_package(args.path)
    result = run_package_tests(
        package,
        runs=args.runs,
        jobs=args.jobs,
        executor=args.executor,
        stop_on_first_race=args.fail_fast,
        engine=args.engine,
        slicing=args.slicing,
        dedup=args.dedup,
    )
    print(result.summary())
    diagnoser = RaceDiagnoser(package)
    for report in result.reports:
        print()
        print(report.render())
        print(f"stable bug hash: {report.bug_hash()}")
        print(f"diagnosis: {diagnoser.diagnose(report).summary()}")
    return 0 if result.passed else 1


def cmd_patterns(args: argparse.Namespace) -> int:
    """Introspect the fix-pattern registry (detection order)."""
    category = None
    if args.category:
        category = category_from_value(args.category)
        if category is None:
            print(f"drfix: error: unknown category {args.category!r}", file=sys.stderr)
            return 2
    patterns = all_patterns()
    if category is not None:
        patterns = [p for p in patterns if category in p.categories]
    name_width = max((len(p.name) for p in patterns), default=4)
    print(f"{'pattern':<{name_width}}  spec  categories")
    for pattern in patterns:
        categories = ", ".join(c.value for c in pattern.categories) or "-"
        print(f"{pattern.name:<{name_width}}  {pattern.specificity:>4}  {categories}")
        if args.verbose:
            print(f"{'':<{name_width}}        {pattern.description}")
    print(f"{len(patterns)} pattern(s) registered")
    return 0


def cmd_fix(args: argparse.Namespace) -> int:
    package = _load_package(args.path)
    config = DrFixConfig(model=args.model)
    if args.adaptive_runs:
        config = config.with_adaptive_runs()
    if args.engine:
        config = config.with_engine(args.engine)
    if args.slicing:
        config = config.with_slicing(args.slicing)
    if args.dedup:
        config = config.with_dedup(args.dedup)
    detection = run_package_tests(package, runs=args.runs, engine=args.engine,
                                  slicing=args.slicing, dedup=args.dedup)
    if not detection.reports:
        print("no data race detected; nothing to fix")
        return 0
    database: Optional[ExampleDatabase] = None
    if not args.no_rag:
        corpus = CorpusGenerator(CorpusConfig().scaled(args.scale)).generate()
        database = ExampleDatabase.from_cases(corpus.db_examples, config)
    exit_code = 1
    for report in detection.reports:
        print(f"== fixing race {report.bug_hash()} on `{report.variable}` ==")
        # A fresh pipeline per report (fresh generator/validator counters):
        # the same stateless-per-request semantics the serving layer uses, so
        # `drfix serve` responses stay bit-identical to this command.
        pipeline = DrFix(package, config=config, database=database, jobs=args.jobs)
        outcome = pipeline.fix_report(report, baseline_hashes=detection.race_hashes())
        if outcome.fixed and outcome.patch is not None:
            exit_code = 0
            print(f"fixed via {outcome.strategy} at {outcome.location}/{outcome.scope} "
                  f"({outcome.lines_changed} lines changed)")
            print(outcome.patch.diff(package))
            if args.write:
                root = Path(args.path)
                for name in outcome.patch.changed_files:
                    (root / name).write_text(outcome.patch.package.file(name).source)
                print("patched files written in place")
        else:
            print(f"no validated fix: {outcome.failure_reason}")
    return exit_code


def cmd_evaluate(args: argparse.Namespace) -> int:
    context = ExperimentContext(
        corpus_config=_corpus_config(args),
        base_config=DrFixConfig(model=args.model),
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
    )
    tables = all_experiment_tables(context)
    report = render_report(tables)
    print(report)
    if context.store is not None:
        print(f"run store: {context.store.hits} hits, {context.store.misses} misses "
              f"({context.store.root})")
    if args.output:
        markdown = "\n\n".join(table.render_markdown() for table in tables)
        Path(args.output).write_text(markdown)
        print(f"wrote {args.output}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure the evaluation engine: parallel speedup and cache speedup.

    Builds one corpus + database, then times the same arm four ways — serial
    cold, parallel cold, store-cold, store-warm — on independent copies of the
    cases (so per-case detection caches cannot leak between phases), and
    checks that every phase produces identical metrics.
    """
    # Benchmarking parallelism with one worker would be meaningless, so with
    # no --jobs and no DRFIX_JOBS the parallel phase uses every CPU.
    explicit = args.jobs is not None or os.environ.get(JOBS_ENV_VAR, "").strip()
    jobs = resolve_jobs(args.jobs) if explicit else resolve_jobs(-1)
    context = ExperimentContext(
        corpus_config=_corpus_config(args),
        base_config=DrFixConfig(model=args.model),
    )
    cases = context.dataset.evaluation
    print(f"corpus: {len(cases)} evaluation cases (scale {args.scale})")

    def timed_run(label, jobs_, executor, store=None):
        runner = EvaluationRunner(
            context.base_config, context.skeleton_database, context.reviewer,
            jobs=jobs_, executor=executor, store=store,
        )
        fresh = copy.deepcopy(cases)
        start = time.perf_counter()
        run = runner.run(fresh, label=label)
        elapsed = time.perf_counter() - start
        return run, elapsed

    serial_run, serial_s = timed_run("serial", 1, "serial")
    print(f"serial          {serial_s:8.2f}s   {serial_run.fix_rate()}")

    parallel_run, parallel_s = timed_run("parallel", jobs, args.executor or "process")
    print(f"{parallel_run.executor_label:<15} {parallel_s:8.2f}s   "
          f"{parallel_run.fix_rate()}   speedup ×{serial_s / max(parallel_s, 1e-9):.2f}")

    cache_root = args.cache_dir or tempfile.mkdtemp(prefix="drfix-bench-")
    store = RunStore(cache_root, namespace=corpus_fingerprint(context.corpus_config))
    cold_run, cold_s = timed_run("store-cold", 1, "serial", store=store)
    warm_run, warm_s = timed_run("store-warm", 1, "serial", store=store)
    print(f"store cold      {cold_s:8.2f}s   ({cold_run.cache_misses} misses)")
    print(f"store warm      {warm_s:8.2f}s   ({warm_run.cache_hits} hits)   "
          f"speedup ×{cold_s / max(warm_s, 1e-9):.2f}")

    rates = {str(run.fix_rate()) for run in (serial_run, parallel_run, cold_run, warm_run)}
    if len(rates) != 1:
        print(f"DETERMINISM MISMATCH: {sorted(rates)}")
        return 1
    fixed = serial_run.fix_rate().fixed
    best_s = min(parallel_s, warm_s)
    print(f"fix throughput: serial {fixed / max(serial_s, 1e-9):.2f} fixes/s, "
          f"{parallel_run.executor_label} {fixed / max(parallel_s, 1e-9):.2f}, "
          f"store-warm {fixed / max(warm_s, 1e-9):.2f} "
          f"(best ×{serial_s / max(best_s, 1e-9):.1f} vs serial)")
    print(f"determinism: all four runs report {serial_run.fix_rate()}")
    cache_stats = PROGRAM_CACHE.stats()
    print("program cache: "
          f"{cache_stats['hits']} hits / {cache_stats['misses']} misses, "
          f"{cache_stats['evictions']} evictions, "
          f"{cache_stats['singleflight_waits']} single-flight waits, "
          f"{cache_stats['full_builds']} full / {cache_stats['derived_builds']} derived builds, "
          f"units {cache_stats['unit_hits']} reused / {cache_stats['unit_misses']} compiled")
    dedup_stats = SCHEDULE_CLASS_REGISTRY.stats()
    print("schedule dedup: "
          f"{dedup_stats['classes_explored']} classes explored, "
          f"{dedup_stats['runs_deduped']} runs deduped, "
          f"{dedup_stats['runs_skipped']} runs skipped, "
          f"{dedup_stats['prefix_rejections']} prefix rejections, "
          f"{dedup_stats['saturation_stops']} saturation stops, "
          f"{dedup_stats['indexes']} indexes")
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    print(f"drfix {drfix_version()}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run Dr.Fix as a service: JSON over HTTP, or line-delimited JSON stdio.

    With ``--workers N`` the service is the multi-process
    :class:`~repro.service.shard.ShardedDrFixService` (supervised worker
    processes, crash recovery, shared persistent cache); without it, the
    in-process :class:`DrFixService`.  ``--pidfile`` makes the server a
    well-behaved daemon (no double start, ``--stop`` to drain it), and
    SIGTERM always triggers a graceful drain: stop admitting, finish
    in-flight requests, flush the cache, remove the pidfile.
    """
    if args.stop:
        if not args.pidfile:
            raise ConfigError("--stop needs --pidfile to locate the daemon")
        pid = stop_daemon(args.pidfile, timeout_s=args.stop_timeout)
        print(f"drfix serve: stopped daemon (pid {pid})")
        return 0
    request_timeout = resolve_request_timeout(args.request_timeout)
    config = DrFixConfig(model=args.model)
    if args.engine:
        config = config.with_engine(args.engine)
    if args.slicing:
        config = config.with_slicing(args.slicing)
    if args.dedup:
        config = config.with_dedup(args.dedup)
    database: Optional[ExampleDatabase] = None
    if not args.no_rag:
        corpus = CorpusGenerator(CorpusConfig().scaled(args.scale)).generate()
        database = ExampleDatabase.from_cases(corpus.db_examples, config)
    if args.workers is not None:
        service = ShardedDrFixService(
            config,
            database=database,
            workers=args.workers,
            shard_queue_depth=args.shard_queue_depth,
            cache_capacity=args.cache_capacity,
            cache_dir=args.cache_dir,
        )
    else:
        service = DrFixService(
            config,
            database=database,
            max_queue_depth=args.max_queue,
            max_in_flight=args.max_in_flight,
            jobs=args.jobs,
            executor=args.executor,
            cache_capacity=args.cache_capacity,
            cache_dir=args.cache_dir,
        )
    pidfile = Pidfile(args.pidfile).acquire() if args.pidfile else None
    try:
        if args.mode == "stdio":
            served = serve_stdio(service, sys.stdin, sys.stdout,
                                 timeout=request_timeout, default_runs=args.runs)
            print(f"drfix serve: {served} request(s) served; "
                  f"{service.metrics().render()}", file=sys.stderr)
            return 0
        server = ServiceHTTPServer(service, (args.host, args.port),
                                   verbose=args.verbose,
                                   request_timeout=request_timeout,
                                   default_runs=args.runs)

        def _drain_on_sigterm(signum, frame) -> None:
            # Graceful drain: stop admitting (healthz turns 503), then stop
            # the accept loop from another thread (serve_forever must not be
            # shut down from its own thread).  In-flight requests finish in
            # service.shutdown() below.
            service.begin_drain()
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _drain_on_sigterm)
        print(f"drfix serve: listening on http://{args.host}:{server.port} "
              f"(POST /detect, POST /fix, GET /metrics, GET /healthz)",
              flush=True)
        try:
            server.serve_forever()
            print(f"drfix serve: draining; {service.metrics().render()}",
                  file=sys.stderr)
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            print(f"\ndrfix serve: {service.metrics().render()}")
        finally:
            service.shutdown(wait=True)
            server.server_close()
        return 0
    finally:
        service.shutdown(wait=True)
        if pidfile is not None:
            pidfile.release()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drfix",
        description="Reproduction of Dr.Fix: Automatically Fixing Data Races at Industry Scale",
    )
    parser.add_argument("--version", action="version",
                        version=f"drfix {drfix_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="generate the synthetic corpus")
    corpus.add_argument("--scale", type=float, default=0.25,
                        help="fraction of the full corpus size (default 0.25)")
    corpus.add_argument("--output", help="directory to write the corpus packages to")
    corpus.set_defaults(func=cmd_corpus)
    corpus_sub = corpus.add_subparsers(dest="corpus_command")
    corpus_generate = corpus_sub.add_parser(
        "generate",
        help="generate a labeled mutant corpus (template bases + seeded mutants)",
    )
    corpus_generate.add_argument("--seed", type=int, default=2025,
                                 help="corpus seed (default 2025); the output is "
                                      "byte-identical for a given seed")
    corpus_generate.add_argument("--count", type=positive_int, default=300,
                                 help="number of labeled cases to emit (default 300)")
    corpus_generate.add_argument("--mutants-per-base", type=int, default=3,
                                 help="mutants derived per template base (default 3)")
    corpus_generate.add_argument("--flip-fraction", type=float, default=0.2,
                                 help="fraction of mutants sync-injected into "
                                      "race-free negatives (default 0.2)")
    corpus_generate.add_argument("--noise-level", type=int, default=2,
                                 help="business-logic noise level 0..3 (default 2)")
    corpus_generate.add_argument("--validate-sample", type=int, default=0,
                                 help="run the metamorphic validator on N evenly "
                                      "sampled cases (0 = skip)")
    corpus_generate.add_argument("--runs", type=positive_int, default=10,
                                 help="detection runs per validated case (default 10)")
    corpus_generate.add_argument("--output",
                                 help="directory to write cases + labels.json to")
    corpus_generate.set_defaults(func=cmd_corpus_generate)

    detect = sub.add_parser("detect", help="run the race detector over a directory of .go files")
    detect.add_argument("path")
    detect.add_argument("--runs", type=positive_int, default=12)
    detect.add_argument("--jobs", type=jobs_count, default=1,
                        help="parallel interleaving-run workers (negative = all CPUs)")
    detect.add_argument("--executor", choices=["serial", "thread", "process"],
                        default=None, help="execution backend for the runs")
    detect.add_argument("--fail-fast", action="store_true",
                        help="cancel outstanding runs once a race is found")
    detect.add_argument("--engine", choices=["compiled", "tree"], default=None,
                        help="interpreter engine (default: DRFIX_ENGINE or the "
                             "compile-once engine; the engines are bit-identical)")
    detect.add_argument("--slicing", choices=["on", "off"], default=None,
                        help="slice-aware instrumentation elision in the "
                             "compiled engine (default: DRFIX_SLICING or on)")
    detect.add_argument("--dedup", choices=["on", "off"], default=None,
                        help="schedule-class deduplication across runs "
                             "(default: DRFIX_DEDUP or on)")
    detect.set_defaults(func=cmd_detect)

    fix = sub.add_parser("fix", help="run the Dr.Fix pipeline over a directory of .go files")
    fix.add_argument("path")
    fix.add_argument("--model", default="gpt-4o", help="model profile to use")
    fix.add_argument("--runs", type=positive_int, default=12, help="detection runs")
    fix.add_argument("--scale", type=float, default=0.25, help="example-database scale")
    fix.add_argument("--no-rag", action="store_true", help="disable retrieval-augmented generation")
    fix.add_argument("--write", action="store_true", help="write validated patches in place")
    fix.add_argument("--jobs", type=jobs_count, default=None,
                     help="concurrent candidate-validation workers (default: DRFIX_JOBS or 1)")
    fix.add_argument("--adaptive-runs", action="store_true",
                     help="derive the validator's run count from a detection-"
                          "probability bound instead of the fixed validator_runs")
    fix.add_argument("--engine", choices=["compiled", "tree"], default=None,
                     help="interpreter engine for detection and validation runs")
    fix.add_argument("--slicing", choices=["on", "off"], default=None,
                     help="slice-aware instrumentation elision in the "
                          "compiled engine (default: DRFIX_SLICING or on)")
    fix.add_argument("--dedup", choices=["on", "off"], default=None,
                     help="schedule-class deduplication for detection and "
                          "validation runs (default: DRFIX_DEDUP or on)")
    fix.set_defaults(func=cmd_fix)

    patterns = sub.add_parser(
        "patterns", help="list the registered fix patterns (detection order)"
    )
    patterns.add_argument("--category", help="only patterns addressing this race category "
                                             "(e.g. missing-synchronization)")
    patterns.add_argument("--verbose", "-v", action="store_true",
                          help="include each pattern's description")
    patterns.set_defaults(func=cmd_patterns)

    evaluate = sub.add_parser("evaluate", help="regenerate every table and figure of the paper")
    evaluate.add_argument("--scale", type=float, default=0.25)
    evaluate.add_argument("--model", default="gpt-4o")
    evaluate.add_argument("--output", help="write a Markdown report to this path")
    _add_engine_flags(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    bench = sub.add_parser(
        "bench", help="benchmark the evaluation engine (parallel and cache speedup)"
    )
    bench.add_argument("--scale", type=float, default=0.12,
                       help="fraction of the full corpus size (default 0.12)")
    bench.add_argument("--model", default="gpt-4o")
    _add_engine_flags(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="run Dr.Fix as a service (JSON over HTTP, or stdio)"
    )
    serve.add_argument("--mode", choices=["http", "stdio"], default="http",
                       help="transport: HTTP server (default) or line-delimited "
                            "JSON on stdin/stdout")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="HTTP port (0 picks a free port)")
    serve.add_argument("--model", default="gpt-4o", help="model profile to serve with")
    serve.add_argument("--scale", type=float, default=0.25,
                       help="example-database scale (ignored with --no-rag)")
    serve.add_argument("--no-rag", action="store_true",
                       help="serve without the retrieval database")
    serve.add_argument("--runs", type=positive_int, default=10,
                       help="default detection runs per request")
    serve.add_argument("--jobs", type=jobs_count, default=None,
                       help="batch worker count (default: DRFIX_JOBS or 1; "
                            "negative = all CPUs)")
    serve.add_argument("--executor", choices=["serial", "thread", "process"],
                       default="thread", help="batch execution backend")
    serve.add_argument("--workers", type=positive_int, default=None,
                       help="serve from N supervised worker processes sharded "
                            "by source fingerprint (default: in-process)")
    serve.add_argument("--shard-queue-depth", type=positive_int, default=16,
                       help="per-shard queue bound with --workers (default 16); "
                            "overflow gets a structured 'overloaded' response")
    serve.add_argument("--request-timeout", type=positive_float, default=None,
                       help="seconds a frontend waits for one response "
                            "(default: DRFIX_REQUEST_TIMEOUT or 600)")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent result-cache directory: warm hits "
                            "survive restarts and are shared across workers")
    serve.add_argument("--pidfile", default=None,
                       help="acquire this pidfile on start (refuses a double "
                            "start; removed on exit)")
    serve.add_argument("--stop", action="store_true",
                       help="signal the daemon named by --pidfile with SIGTERM "
                            "and wait for its graceful drain")
    serve.add_argument("--stop-timeout", type=positive_float, default=30.0,
                       help="seconds --stop waits for the daemon to exit "
                            "(default 30)")
    serve.add_argument("--max-queue", type=positive_int, default=64,
                       help="admission-control queue bound (default 64); "
                            "submissions past it get a structured 'overloaded' "
                            "response")
    serve.add_argument("--max-in-flight", type=positive_int, default=4,
                       help="max requests dispatched per batch (default 4)")
    serve.add_argument("--cache-capacity", type=positive_int, default=256,
                       help="fingerprint result-cache entries (default 256)")
    serve.add_argument("--engine", choices=["compiled", "tree"], default=None,
                       help="interpreter engine for served runs")
    serve.add_argument("--slicing", choices=["on", "off"], default=None,
                       help="slice-aware instrumentation elision for served "
                            "runs (default: DRFIX_SLICING or on)")
    serve.add_argument("--dedup", choices=["on", "off"], default=None,
                       help="schedule-class deduplication for served runs "
                            "(default: DRFIX_DEDUP or on)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.set_defaults(func=cmd_serve)

    version = sub.add_parser("version", help="print the installed version")
    version.set_defaults(func=cmd_version)

    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=jobs_count, default=None,
                        help="parallel case-evaluation workers "
                             "(default: DRFIX_JOBS or 1; negative = all CPUs)")
    parser.add_argument("--executor", choices=["serial", "thread", "process"],
                        default=None,
                        help="execution backend (default: process when --jobs > 1)")
    parser.add_argument("--cache-dir",
                        help="persistent run-store directory; per-case results are "
                             "cached there and reused across invocations")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, OSError) as exc:
        print(f"drfix: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
