"""Layer 7 — Dr.Fix as a service.

An async serving layer over the pipeline in two scales:

* :class:`DrFixService` — in-process: bounded admission, batch scheduling
  through the shared executor substrate, a fingerprint-keyed result cache;
* :class:`ShardedDrFixService` — multi-process: N supervised worker
  processes sharded by source fingerprint, crash recovery with retries,
  a crash-loop circuit breaker, graceful drain, and a shared persistent
  on-disk result cache (:class:`PersistentResultCache`) whose warm hits
  survive restarts.

Both speak the same request/response protocol and are served by the same
stdlib-only HTTP/stdio frontends.  Fault injection for the sharded service
rides in via ``DRFIX_FAULT_PLAN`` (:mod:`repro.service.faults`); pidfile
discipline for ``drfix serve`` lives in :mod:`repro.service.pidfile`.  See
``docs/architecture.md`` (§Layer 7) for the request lifecycle and the
failure-mode table.
"""

from repro.service.cache import CACHE_VERSION, PersistentResultCache, ResultCache
from repro.service.core import (
    DrFixService,
    ServiceTicket,
    detect_payload,
    execute_detect,
    execute_fix,
    fix_outcome_payload,
)
from repro.service.faults import FAULT_PLAN_ENV_VAR, FaultClause, FaultPlan
from repro.service.frontend import (
    REQUEST_TIMEOUT_ENV_VAR,
    REQUEST_TIMEOUT_S,
    ServiceHTTPServer,
    resolve_request_timeout,
    serve_stdio,
)
from repro.service.metrics import MetricsRecorder, ServiceMetrics, latency_percentile
from repro.service.pidfile import Pidfile, stop_daemon
from repro.service.requests import (
    DetectRequest,
    FixRequest,
    RequestKind,
    ResponseStatus,
    ServiceRequest,
    ServiceResponse,
    package_from_payload,
    request_from_payload,
)
from repro.service.shard import ShardedDrFixService
from repro.service.supervisor import (
    SupervisorStats,
    WorkerHandle,
    WorkerState,
    WorkerSupervisor,
)

__all__ = [
    "CACHE_VERSION",
    "DetectRequest",
    "DrFixService",
    "FAULT_PLAN_ENV_VAR",
    "FaultClause",
    "FaultPlan",
    "FixRequest",
    "MetricsRecorder",
    "PersistentResultCache",
    "Pidfile",
    "REQUEST_TIMEOUT_ENV_VAR",
    "REQUEST_TIMEOUT_S",
    "RequestKind",
    "ResponseStatus",
    "ResultCache",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceTicket",
    "ShardedDrFixService",
    "SupervisorStats",
    "WorkerHandle",
    "WorkerState",
    "WorkerSupervisor",
    "detect_payload",
    "execute_detect",
    "execute_fix",
    "fix_outcome_payload",
    "latency_percentile",
    "package_from_payload",
    "request_from_payload",
    "resolve_request_timeout",
    "serve_stdio",
    "stop_daemon",
]
