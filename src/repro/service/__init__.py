"""Layer 7 — Dr.Fix as a service.

An in-process async serving layer over the pipeline: bounded admission,
batch scheduling through the shared executor substrate, a fingerprint-keyed
result cache, service metrics, and stdlib-only HTTP/stdio frontends.  See
``docs/architecture.md`` (§Layer 7) for the request lifecycle.
"""

from repro.service.cache import ResultCache
from repro.service.core import (
    DrFixService,
    ServiceTicket,
    detect_payload,
    execute_detect,
    execute_fix,
    fix_outcome_payload,
)
from repro.service.frontend import ServiceHTTPServer, serve_stdio
from repro.service.metrics import MetricsRecorder, ServiceMetrics, latency_percentile
from repro.service.requests import (
    DetectRequest,
    FixRequest,
    RequestKind,
    ResponseStatus,
    ServiceRequest,
    ServiceResponse,
    package_from_payload,
    request_from_payload,
)

__all__ = [
    "DetectRequest",
    "DrFixService",
    "FixRequest",
    "MetricsRecorder",
    "RequestKind",
    "ResponseStatus",
    "ResultCache",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceTicket",
    "detect_payload",
    "execute_detect",
    "execute_fix",
    "fix_outcome_payload",
    "latency_percentile",
    "package_from_payload",
    "request_from_payload",
    "serve_stdio",
]
