"""Pidfile locking and daemon signalling for ``drfix serve``.

A long-running serve daemon needs three small operational guarantees:

* **no double start** — acquiring the pidfile is an atomic
  ``O_CREAT | O_EXCL`` create; a second ``drfix serve`` against the same
  pidfile fails fast with a :class:`ConfigError` naming the live pid;
* **stale-pidfile detection** — a pidfile whose recorded pid is no longer
  alive (machine rebooted, daemon SIGKILLed) is removed and re-acquired
  instead of wedging every future start;
* **cooperative stop** — ``drfix serve --stop`` reads the pidfile, sends
  SIGTERM (the daemon's graceful-drain signal), and waits for the process to
  exit and the pidfile to disappear.

The pidfile content is the daemon's pid in ASCII plus a newline — readable by
``kill $(cat drfix.pid)`` as well as by :func:`stop_daemon`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive but not ours
        return True
    return True


def read_pid(path: "Path | str") -> Optional[int]:
    """The pid recorded in ``path``, or ``None`` when absent/garbled."""
    try:
        text = Path(path).read_text().strip()
    except OSError:
        return None
    try:
        return int(text)
    except ValueError:
        return None


class Pidfile:
    """An exclusive pidfile held for the lifetime of one serve daemon.

    Usable as a context manager::

        with Pidfile(path):
            run_the_server()
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self._acquired = False

    # ------------------------------------------------------------------

    def acquire(self) -> "Pidfile":
        """Atomically create the pidfile, breaking a stale one if needed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                holder = read_pid(self.path)
                if holder is not None and pid_alive(holder):
                    raise ConfigError(
                        f"drfix serve already running (pid {holder}, "
                        f"pidfile {self.path}); use --stop to stop it")
                if attempt:  # pragma: no cover - lost a create race twice
                    raise ConfigError(
                        f"could not acquire pidfile {self.path}")
                # Stale: the recorded process is gone.  Remove and retry the
                # exclusive create (a concurrent starter may win the retry —
                # then the second pass sees a *live* holder and errors out).
                try:
                    self.path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}\n")
            self._acquired = True
            return self
        raise ConfigError(f"could not acquire pidfile {self.path}")  # pragma: no cover

    def release(self) -> None:
        """Remove the pidfile iff this process still owns it."""
        if not self._acquired:
            return
        self._acquired = False
        if read_pid(self.path) == os.getpid():
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "Pidfile":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def stop_daemon(path: "Path | str", timeout_s: float = 30.0,
                poll_interval_s: float = 0.05) -> int:
    """Signal the daemon recorded in ``path`` with SIGTERM and wait it out.

    Returns the pid that was stopped.  Raises :class:`ConfigError` when no
    daemon is running (missing/stale pidfile) or when it ignores the signal
    past ``timeout_s`` — the caller decides whether to escalate.
    """
    pidfile = Path(path)
    pid = read_pid(pidfile)
    if pid is None:
        raise ConfigError(f"no pidfile at {pidfile}: is the daemon running?")
    if not pid_alive(pid):
        # Stale: clean it up so the next start does not have to.
        try:
            pidfile.unlink()
        except OSError:
            pass
        raise ConfigError(
            f"pidfile {pidfile} is stale (pid {pid} is gone); removed it")
    os.kill(pid, 15)  # SIGTERM: the daemon's graceful-drain signal
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        # The daemon removes its pidfile as the last step of a clean drain,
        # so a vanished (or re-owned) pidfile is success even while the pid
        # still shows as alive — an exited-but-unreaped child is a zombie,
        # and ``kill(pid, 0)`` succeeds on zombies.
        if read_pid(pidfile) != pid or not pid_alive(pid):
            return pid
        time.sleep(poll_interval_s)
    raise ConfigError(
        f"daemon (pid {pid}) did not exit within {timeout_s} s of SIGTERM")


__all__ = ["Pidfile", "pid_alive", "read_pid", "stop_daemon"]
