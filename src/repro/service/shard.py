"""Fault-tolerant multi-process sharded serving (``drfix serve --workers N``).

:class:`ShardedDrFixService` is the scale-out master over the Layer-7 serving
semantics of :class:`~repro.service.core.DrFixService`: the same request and
response model, the same deterministic payloads, the same admission-control
protocol — but the work runs in N resident **worker processes**, so detection
throughput scales with cores instead of being capped by the GIL.

Topology::

    clients ──▶ master (submit / cache probe / route by source fingerprint)
                  │
                  ├── shard 0: bounded queue ══▶ worker process 0 ══▶┐
                  ├── shard 1: bounded queue ══▶ worker process 1 ══▶┤ collector
                  └── shard …   (pipe pairs, one per incarnation)    │ (conn.wait)
                           ▲ supervisor (heartbeats, restarts) ◀─────┘

Every worker incarnation gets its own **simplex pipe pair** (request in,
response out) created at spawn time.  This is the crash-safety keystone: a
``multiprocessing.Queue`` shared between workers serializes writers through a
cross-process lock and a feeder thread, and a worker that dies at the wrong
instant — between the pipe write and the lock release, a window the fault
plan's ``kill`` hits reliably under load — leaves that lock held *forever*,
wedging every later incarnation while its heartbeat still beats.  With one
writer per pipe there is no shared lock to poison and no feeder thread to
die mid-send: a crashing worker can only break its own channel, which dies
with it (the master retires the pipe and the supervisor handles the death).

* **routing** — requests route by :func:`repro.fingerprint.shard_for` over
  the package's source fingerprint, so one package always lands on one
  worker: that worker's program cache stays hot and identical in-flight
  requests serialize instead of duplicating work;
* **shared persistent cache** — the master probes the result cache (memory
  LRU, optionally backed by the on-disk
  :class:`~repro.service.cache.PersistentResultCache`) *before* routing and
  stores every computed payload after; a warm hit never touches a worker,
  is shared across all shards, and survives a full restart;
* **one request in flight per worker** — the master dispatches the next
  queued request only after collecting the previous response.  This is what
  makes crash recovery exact: at most one request can be lost to a worker
  death, and the master knows precisely which one;
* **crash recovery** — a lost in-flight request is retried on the restarted
  worker (at most ``max_retries`` times), then answered with a structured
  ``worker_failed`` response.  Payloads are deterministic, so a retried
  response is bit-identical to an undisturbed one (the fault-injection tests
  assert this byte for byte);
* **backpressure** — per-shard queues are bounded; an overflowing shard
  answers ``overloaded`` immediately, the same protocol as the single-process
  service's admission control;
* **graceful drain** — :meth:`begin_drain` stops admission (``/healthz``
  turns 503), :meth:`drain` waits for every admitted request to resolve,
  poison-pills the workers, and flushes the persistent cache.  SIGTERM in
  ``drfix serve`` maps onto exactly this sequence.

Failure injection for tests rides in via ``DRFIX_FAULT_PLAN``
(:mod:`repro.service.faults`), which the worker body consults at
deterministic points.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import DrFixConfig
from repro.core.database import ExampleDatabase
from repro.errors import ConfigError
from repro.execution import NESTED_BUDGET_ENV_VAR, shard_worker_budget
from repro.fingerprint import config_fingerprint, shard_for
from repro.service.cache import PersistentResultCache, ResultCache
from repro.service.core import ServiceTicket, _execute_request
from repro.service.faults import FaultPlan
from repro.service.metrics import MetricsRecorder, ServiceMetrics
from repro.service.requests import ResponseStatus, ServiceRequest, ServiceResponse
from repro.service.supervisor import (
    WorkerHandle,
    WorkerState,
    WorkerSupervisor,
)


# ---------------------------------------------------------------------------
# Worker process body
# ---------------------------------------------------------------------------


def worker_main(
    shard: int,
    incarnation: int,
    request_conn: Any,
    response_conn: Any,
    heartbeat: Any,
    config: DrFixConfig,
    database: Optional[ExampleDatabase],
    nested_budget: int,
    heartbeat_interval_s: float,
    fault_spec: str,
) -> None:
    """Resident worker: receive a request, execute it, respond; repeat until
    the ``None`` poison pill (or the master going away entirely).

    The worker exports its share of the machine through
    ``DRFIX_NESTED_BUDGET`` so every inner executor (harness seed runs, batch
    validation) clamps to it — N workers each budgeted ``cpus // N`` can
    never oversubscribe, the same accounting every other layer honors.  A
    heartbeat thread stamps a shared value on a fixed cadence so the
    supervisor can tell *busy* (still beating) from *wedged* (stale).

    Both channels are this incarnation's private simplex pipes: responses are
    sent synchronously from this thread (no feeder thread, no shared write
    lock), so a crash at *any* instant leaves nothing behind that a sibling
    or successor could block on.
    """
    os.environ[NESTED_BUDGET_ENV_VAR] = str(nested_budget)
    # The master owns interactive shutdown: a Ctrl-C must drain through the
    # master's signal handling, not kill workers mid-request at random.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    injector = FaultPlan.parse(fault_spec).injector(shard, incarnation)
    stop_beat = threading.Event()
    wedged = threading.Event()

    def beat() -> None:
        while not (stop_beat.is_set() or wedged.is_set()):
            heartbeat.value = time.monotonic()
            stop_beat.wait(heartbeat_interval_s)

    threading.Thread(target=beat, name=f"drfix-shard{shard}-heartbeat",
                     daemon=True).start()
    received = 0
    while True:
        try:
            item = request_conn.recv()
        except (EOFError, OSError):
            return  # master is gone; nothing left to serve
        if item is None:
            stop_beat.set()
            try:
                response_conn.send(("bye", shard, incarnation, None, None, None))
            except (BrokenPipeError, OSError):
                pass
            return
        request_id, request = item
        received += 1
        injector.fire("receive", received, wedged)
        payload, detail = _execute_request(config, database, request)
        injector.fire("respond", received, wedged)
        response_conn.send(
            ("result", shard, incarnation, request_id, payload, detail))


# ---------------------------------------------------------------------------
# Master-side bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class _ShardEntry:
    """One admitted request: ticket + enough state to retry it exactly."""

    ticket: ServiceTicket
    request: ServiceRequest
    key: str
    shard: int
    submitted_at: float
    retries: int = 0


@dataclass
class _ShardQueue:
    """Master-side bounded queue feeding one worker slot."""

    handle: WorkerHandle
    pending: "deque[_ShardEntry]" = field(default_factory=deque)


class ShardedDrFixService:
    """Multi-process sharded Dr.Fix service with worker supervision."""

    def __init__(
        self,
        config: Optional[DrFixConfig] = None,
        database: Optional[ExampleDatabase] = None,
        *,
        workers: int = 2,
        shard_queue_depth: int = 16,
        cache_capacity: int = 256,
        cache_dir: "str | os.PathLike | None" = None,
        max_retries: int = 2,
        heartbeat_interval_s: float = 0.1,
        liveness_deadline_s: float = 30.0,
        restart_backoff_s: float = 0.05,
        restart_backoff_cap_s: float = 2.0,
        breaker_threshold: int = 4,
        drain_timeout_s: float = 60.0,
        fault_plan: Optional[str] = None,
        start: bool = True,
    ):
        if workers <= 0:
            raise ConfigError("workers must be positive")
        if shard_queue_depth <= 0:
            raise ConfigError("shard_queue_depth must be positive")
        if max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        self.config = (config or DrFixConfig(model="gpt-4o")).validated()
        self.database = database
        self.workers = workers
        self.shard_queue_depth = shard_queue_depth
        self.max_retries = max_retries
        self.heartbeat_interval_s = heartbeat_interval_s
        self.drain_timeout_s = drain_timeout_s
        self.config_fp = config_fingerprint(self.config)
        self.fault_plan = FaultPlan.resolve(fault_plan)
        self.cache: ResultCache = (
            PersistentResultCache(cache_dir, cache_capacity) if cache_dir
            else ResultCache(cache_capacity))
        self.recorder = MetricsRecorder()
        self.nested_budget = shard_worker_budget(workers)

        # ``fork`` keeps worker startup in the low milliseconds (no
        # re-import); platforms without it fall back to the default method.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._cond = threading.Condition()
        # Response pipes of dead incarnations, kept until the collector sees
        # their EOF: a late (duplicate) response is drained, then the fd is
        # closed.  Only the collector thread closes readers — closing a pipe
        # another thread is select()ing on is undefined.
        self._retired_readers: List[Any] = []
        self._sequence = 0
        self._accepting = True
        self._draining = False
        self._started = False
        self._stopped = False
        self._entries: Dict[str, _ShardEntry] = {}
        self._retry_count = 0
        self._worker_failures = 0
        self._drops = 0
        self._shards: List[_ShardQueue] = []
        for index in range(workers):
            handle = WorkerHandle(
                shard=index,
                # lock=False: the heartbeat is one aligned 8-byte store, and
                # a lock here would be shared state a dying worker could
                # leave held (wedging the supervisor's liveness read).
                heartbeat=self._ctx.Value("d", time.monotonic(), lock=False),
            )
            self._shards.append(_ShardQueue(handle=handle))
        self.supervisor = WorkerSupervisor(
            [sq.handle for sq in self._shards],
            self._cond,
            self._spawn_worker,
            on_death=self._on_worker_death,
            on_ready=self._on_worker_ready,
            on_broken=self._on_worker_broken,
            liveness_deadline_s=liveness_deadline_s,
            restart_backoff_s=restart_backoff_s,
            restart_backoff_cap_s=restart_backoff_cap_s,
            breaker_threshold=breaker_threshold,
        )
        self._collector_stop = threading.Event()
        self._collector: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._started:
                return
            self._started = True
        self.supervisor.start()
        self._collector = threading.Thread(
            target=self._collector_loop, name="drfix-shard-collector", daemon=True)
        self._collector.start()

    def __enter__(self) -> "ShardedDrFixService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def begin_drain(self) -> None:
        """Stop admitting new requests; already-admitted work keeps running."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful drain: finish every admitted request, then stop workers.

        Admitted requests are *never dropped while workers can serve them* —
        the supervisor keeps restarting crashed workers during the drain.
        Only the drain deadline (or a tripped breaker) resolves leftovers,
        structurally, as ``worker_failed``; nothing ever hangs.
        """
        self.begin_drain()
        deadline = time.monotonic() + (self.drain_timeout_s if timeout is None
                                       else timeout)
        leftovers: List[_ShardEntry] = []
        with self._cond:
            while self._outstanding_locked() and time.monotonic() < deadline:
                self._cond.wait(0.1)
            self._accepting = False
            for sq in self._shards:
                while sq.pending:
                    entry = sq.pending.popleft()
                    self._entries.pop(entry.ticket.request_id, None)
                    if not entry.ticket.done():
                        leftovers.append(entry)
            for rid in list(self._entries):
                entry = self._entries.pop(rid)
                if not entry.ticket.done():
                    leftovers.append(entry)
        for entry in leftovers:
            self._drops += 1
            self.recorder.on_drop()
            self._resolve(entry, ResponseStatus.WORKER_FAILED,
                          detail="request abandoned at drain deadline")
        self.supervisor.stop()
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(5.0)
            self._collector = None
        # The collector is gone, so closing readers is race-free now.
        with self._cond:
            conns = list(self._retired_readers)
            self._retired_readers.clear()
            for sq in self._shards:
                conns.extend(c for c in (sq.handle.request_conn,
                                         sq.handle.response_conn)
                             if c is not None)
                sq.handle.request_conn = None
                sq.handle.response_conn = None
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - double close is harmless
                pass
        if isinstance(self.cache, PersistentResultCache):
            self.cache.flush()
        with self._cond:
            self._stopped = True

    def shutdown(self, wait: bool = True) -> None:
        """Drain and stop (``wait`` kept for symmetry with DrFixService)."""
        with self._cond:
            if self._stopped:
                return
        self.drain()

    # -- submission ----------------------------------------------------

    def submit(self, request: ServiceRequest) -> ServiceTicket:
        """Admit (or reject) one request; never blocks on a queue."""
        request = request.validated()
        now = time.monotonic()
        key = request.cache_key(self.config_fp)
        with self._cond:
            self._sequence += 1
            ticket = ServiceTicket(f"s{self._sequence:06d}", request.kind.value)
            accepting = self._accepting and not self._draining and self._started
        if not accepting:
            self.recorder.on_reject()
            detail = ("service is draining" if self._draining
                      else "service is not running")
            ticket.resolve(ServiceResponse(
                request_id=ticket.request_id, kind=ticket.kind,
                status=ResponseStatus.OVERLOADED, detail=detail))
            return ticket
        # Cache probe outside the lock (a persistent hit may read disk).
        payload = self.cache.get(key)
        if payload is not None:
            self.recorder.on_submit()
            latency_ms = (time.monotonic() - now) * 1000.0
            self.recorder.on_served(latency_ms, cached=True)
            ticket.resolve(ServiceResponse(
                request_id=ticket.request_id, kind=ticket.kind,
                status=ResponseStatus.OK, payload=payload, cached=True,
                duration_ms=latency_ms))
            return ticket
        shard = shard_for(request.source_fingerprint(), self.workers)
        entry = _ShardEntry(ticket=ticket, request=request, key=key,
                            shard=shard, submitted_at=now)
        with self._cond:
            sq = self._shards[shard]
            if sq.handle.state is WorkerState.BROKEN:
                failure = ("worker for shard "
                           f"{shard} is circuit-broken (crash loop)")
            elif len(sq.pending) >= self.shard_queue_depth:
                failure = None
                self.recorder.on_reject()
                detail = (f"shard {shard} queue full "
                          f"({len(sq.pending)}/{self.shard_queue_depth})")
            else:
                self.recorder.on_submit()
                sq.pending.append(entry)
                self._entries[ticket.request_id] = entry
                self._dispatch_locked(shard)
                return ticket
        if sq.handle.state is WorkerState.BROKEN:
            self._worker_failures += 1
            self.recorder.on_submit()
            self._resolve(entry, ResponseStatus.WORKER_FAILED, detail=failure)
            return ticket
        ticket.resolve(ServiceResponse(
            request_id=ticket.request_id, kind=ticket.kind,
            status=ResponseStatus.OVERLOADED, detail=detail))
        return ticket

    def call(self, request: ServiceRequest,
             timeout: Optional[float] = None) -> ServiceResponse:
        """Blocking convenience: submit and wait for the response."""
        return self.submit(request).result(timeout)

    # -- observability -------------------------------------------------

    def queue_depth(self) -> int:
        with self._cond:
            return sum(len(sq.pending) for sq in self._shards)

    def worker_status(self) -> List[Dict[str, Any]]:
        now = time.monotonic()
        with self._cond:
            return [sq.handle.status(now, queue_depth=len(sq.pending))
                    for sq in self._shards]

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: supervisor state + per-worker detail."""
        with self._cond:
            draining = self._draining or not self._accepting
            broken = sum(1 for sq in self._shards
                         if sq.handle.state is WorkerState.BROKEN)
            depth = sum(len(sq.pending) for sq in self._shards)
            in_flight = sum(1 for sq in self._shards
                            if sq.handle.in_flight_id is not None)
        status = ("draining" if draining
                  else "degraded" if broken else "ok")
        return {
            "status": status,
            "workers": self.worker_status(),
            "broken_shards": broken,
            "queue_depth": depth,
            "in_flight": in_flight,
            "cache_entries": len(self.cache),
        }

    def supervisor_stats(self) -> Dict[str, Any]:
        with self._cond:
            stats = self.supervisor.stats.as_dict()
            stats.update({
                "workers": self.workers,
                "retries": self._retry_count,
                "worker_failures": self._worker_failures,
                "drops": self._drops,
                "nested_budget": self.nested_budget,
                "shards": [
                    {
                        "shard": sq.handle.shard,
                        "state": sq.handle.state.value,
                        "queue_depth": len(sq.pending),
                        "served": sq.handle.served,
                        "restarts": sq.handle.restarts,
                    }
                    for sq in self._shards
                ],
            })
        return stats

    def metrics(self) -> ServiceMetrics:
        with self._cond:
            depth = sum(len(sq.pending) for sq in self._shards)
            in_flight = sum(1 for sq in self._shards
                            if sq.handle.in_flight_id is not None)
        snapshot = self.recorder.snapshot(queue_depth=depth, in_flight=in_flight)
        return dataclasses.replace(snapshot, supervisor=self.supervisor_stats())

    # -- supervisor callbacks (lock held) ------------------------------

    def _spawn_worker(self, handle: WorkerHandle) -> None:
        """Fresh incarnation, fresh channels (lock held by the caller).

        The previous incarnation's pipes are retired, never reused: its
        request pipe is closed here (only dispatch writes to it, under this
        same lock) and its response pipe is handed to the collector, which
        drains any final message and closes it on EOF.  The worker-side fds
        are closed in the master right after the fork, so a dead incarnation
        is the *only* writer of its response pipe and EOF is guaranteed.
        """
        request_r, request_w = self._ctx.Pipe(duplex=False)
        response_r, response_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            name=f"drfix-shard-{handle.shard}",
            args=(handle.shard, handle.incarnation, request_r, response_w,
                  handle.heartbeat, self.config,
                  self.database, self.nested_budget,
                  self.heartbeat_interval_s, self.fault_plan.spec),
            # Daemonic: if the master dies hard, the OS reaps the fleet.  The
            # nested budget keeps inner layers serial/threaded, so workers
            # never need process pools of their own.
            daemon=True,
        )
        process.start()
        request_r.close()
        response_w.close()
        if handle.request_conn is not None:
            try:
                handle.request_conn.close()
            except OSError:  # pragma: no cover - double close is harmless
                pass
        if handle.response_conn is not None:
            self._retired_readers.append(handle.response_conn)
        handle.request_conn = request_w
        handle.response_conn = response_r
        handle.process = process

    def _on_worker_death(self, handle: WorkerHandle) -> None:
        """Retry (or structurally fail) the request the dead worker held."""
        request_id = handle.in_flight_id
        handle.in_flight_id = None
        if request_id is None:
            return
        entry = self._entries.get(request_id)
        if entry is None or entry.ticket.done():
            return
        entry.retries += 1
        if entry.retries > self.max_retries:
            self._entries.pop(request_id, None)
            self._worker_failures += 1
            self._resolve(entry, ResponseStatus.WORKER_FAILED,
                          detail=(f"worker for shard {entry.shard} died "
                                  f"{entry.retries} times serving this request "
                                  f"(exit code {handle.last_exit_code})"))
        else:
            self._retry_count += 1
            # Front of the queue: the retried request keeps its place.
            self._shards[entry.shard].pending.appendleft(entry)

    def _on_worker_ready(self, handle: WorkerHandle) -> None:
        self._dispatch_locked(handle.shard)

    def _on_worker_broken(self, handle: WorkerHandle) -> None:
        """Breaker tripped: fail this shard's whole queue, structurally."""
        sq = self._shards[handle.shard]
        detail = (f"worker for shard {handle.shard} is crash-looping "
                  f"({handle.consecutive_failures} consecutive failures); "
                  "circuit breaker open")
        while sq.pending:
            entry = sq.pending.popleft()
            self._entries.pop(entry.ticket.request_id, None)
            if not entry.ticket.done():
                self._worker_failures += 1
                self._resolve(entry, ResponseStatus.WORKER_FAILED, detail=detail)

    # -- dispatch and collection ---------------------------------------

    def _dispatch_locked(self, shard: int) -> None:
        sq = self._shards[shard]
        handle = sq.handle
        if handle.state is not WorkerState.READY or handle.in_flight_id is not None:
            return
        while sq.pending:
            entry = sq.pending.popleft()
            if entry.ticket.done():
                self._entries.pop(entry.ticket.request_id, None)
                continue
            handle.in_flight_id = entry.ticket.request_id
            handle.state = WorkerState.BUSY
            try:
                handle.request_conn.send(
                    (entry.ticket.request_id, entry.request))
            except (BrokenPipeError, OSError):
                # The worker died under us.  Leave the entry marked in
                # flight and make the death unambiguous: the supervisor's
                # death path retries (or structurally fails) it.
                if handle.process is not None and handle.process.is_alive():
                    handle.process.kill()  # pragma: no cover - defensive
            return

    def _collector_loop(self) -> None:
        """Multiplex every live (and retired) response pipe.

        ``connection.wait`` marks a pipe ready both for a message and for
        EOF; ``recv`` raising is how a dead incarnation's channel announces
        itself, and the collector is the single place readers are closed.
        """
        while not self._collector_stop.is_set():
            with self._cond:
                readers = [sq.handle.response_conn for sq in self._shards
                           if sq.handle.response_conn is not None]
                readers.extend(self._retired_readers)
            if not readers:  # every shard broken or mid-respawn
                time.sleep(0.02)
                continue
            try:
                ready = mp_connection.wait(readers, timeout=0.1)
            except OSError:  # pragma: no cover - reader raced a close
                continue
            for conn in ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._retire_reader(conn)
                    continue
                self._collect_message(message)

    def _retire_reader(self, conn: Any) -> None:
        """A response pipe hit EOF: its incarnation is dead.  Drop it."""
        with self._cond:
            if conn in self._retired_readers:
                self._retired_readers.remove(conn)
            for sq in self._shards:
                if sq.handle.response_conn is conn:
                    sq.handle.response_conn = None
        try:
            conn.close()
        except OSError:  # pragma: no cover - double close is harmless
            pass

    def _collect_message(self, message: Any) -> None:
        kind, shard, _incarnation, request_id, payload, detail = message
        if kind != "result":
            return
        with self._cond:
            entry = self._entries.pop(request_id, None)
            handle = self._shards[shard].handle
            handle.served += 1
            self.supervisor.note_success(handle)
            if handle.in_flight_id == request_id:
                handle.in_flight_id = None
                if handle.state is WorkerState.BUSY:
                    handle.state = WorkerState.READY
            self._dispatch_locked(shard)
            self._cond.notify_all()
        if entry is None or entry.ticket.done():
            # A duplicate response (the request was retried and both
            # incarnations answered) — payloads are deterministic, so
            # whichever response resolved first was already correct.
            return
        if payload is None:
            self._resolve(entry, ResponseStatus.ERROR, detail=detail)
        else:
            self.cache.put(entry.key, payload)
            self._resolve(entry, ResponseStatus.OK, payload=payload)

    def _resolve(self, entry: _ShardEntry, status: ResponseStatus, *,
                 payload: Optional[Dict[str, Any]] = None, detail: str = "") -> None:
        latency_ms = (time.monotonic() - entry.submitted_at) * 1000.0
        self.recorder.on_served(latency_ms, cached=False,
                                error=status is not ResponseStatus.OK)
        entry.ticket.resolve(ServiceResponse(
            request_id=entry.ticket.request_id,
            kind=entry.ticket.kind,
            status=status,
            payload=payload if payload is not None else {},
            cached=False,
            detail=detail,
            duration_ms=latency_ms,
        ))

    # -- internals -----------------------------------------------------

    def _outstanding_locked(self) -> bool:
        if any(sq.pending for sq in self._shards):
            return True
        return bool(self._entries)


__all__ = ["ShardedDrFixService", "worker_main"]
