"""Stdlib-only frontends for :class:`~repro.service.core.DrFixService`.

Two transports, zero dependencies:

* **JSON over HTTP** (:class:`ServiceHTTPServer`, ``http.server``):

  * ``POST /detect`` and ``POST /fix`` — body ``{"package": name, "files":
    {name: source}, "runs": N, "seed": S}``; the response is the
    :class:`~repro.service.requests.ServiceResponse` wire form.  An
    ``overloaded`` response maps to HTTP 503 (with a ``Retry-After`` header),
    a malformed request to 400, an execution error to 500 — the JSON body is
    authoritative either way;
  * ``GET /metrics`` — the :class:`~repro.service.metrics.ServiceMetrics`
    snapshot; ``GET /healthz`` — liveness plus queue depth.

* **Line-delimited JSON over stdio** (:func:`serve_stdio`): one request
  object per line (``{"kind": "detect", "files": …}``), one response object
  per line, in order.  ``{"kind": "metrics"}`` returns the snapshot;
  ``{"kind": "shutdown"}`` (or EOF) ends the session.  This is the transport
  for driving the service from another process without opening a port.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, IO, Optional, Tuple

from repro.errors import ConfigError, ReproError
from repro.service.core import DrFixService
from repro.service.requests import ResponseStatus, request_from_payload

#: Ceiling on one request body; a serving layer must bound what it buffers.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: How long a frontend waits for the service to answer one request (default;
#: override with ``--request-timeout`` or the environment variable below).
REQUEST_TIMEOUT_S = 600.0
#: Environment override for the frontend request timeout, in seconds.
REQUEST_TIMEOUT_ENV_VAR = "DRFIX_REQUEST_TIMEOUT"


def resolve_request_timeout(explicit: Optional[float] = None) -> float:
    """The frontend request timeout: explicit flag > environment > default.

    Fails fast with :class:`ConfigError` on a malformed or non-positive
    value — a serving process must not come up with a timeout it will never
    honor.
    """
    if explicit is not None:
        value = explicit
    else:
        raw = os.environ.get(REQUEST_TIMEOUT_ENV_VAR, "").strip()
        if not raw:
            return REQUEST_TIMEOUT_S
        try:
            value = float(raw)
        except ValueError:
            raise ConfigError(
                f"{REQUEST_TIMEOUT_ENV_VAR} must be a number of seconds, "
                f"got {raw!r}")
    if not value > 0:
        raise ConfigError(f"request timeout must be positive, got {value}")
    return value


def _status_code(status: ResponseStatus) -> int:
    if status is ResponseStatus.OK:
        return 200
    if status is ResponseStatus.OVERLOADED:
        return 503
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the service lives on the server object."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # pragma: no cover - log formatting only
            super().log_message(format, *args)

    def _write_json(self, code: int, payload: Dict[str, Any],
                    headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ConfigError("Content-Length must be an integer")
        if length <= 0:
            raise ConfigError("request body required")
        if length > MAX_BODY_BYTES:
            raise ConfigError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ConfigError("request body is not valid JSON")
        if not isinstance(data, dict):
            raise ConfigError("request body must be a JSON object")
        return data

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/metrics":
            self._write_json(200, service.metrics().as_dict())
        elif self.path == "/healthz":
            health = service.health()
            # A draining server is alive but no longer admits work: 503 tells
            # a load balancer to stop routing here while the drain finishes.
            code = 503 if health.get("status") == "draining" else 200
            self._write_json(code, health)
        else:
            self._write_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        kind = self.path.lstrip("/")
        if kind not in ("detect", "fix"):
            self._write_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            data = self._read_body()
            request = request_from_payload(
                data, kind=kind, default_runs=self.server.default_runs)
        except ReproError as exc:
            # The body may be partly (or not at all) read at this point, so a
            # keep-alive connection would desync on the leftover bytes —
            # close it after the error response.
            self.close_connection = True
            self._write_json(400, {"error": str(exc)},
                             headers={"Connection": "close"})
            return
        try:
            response = self.server.service.call(
                request, timeout=self.server.request_timeout)
        except TimeoutError:
            # The request stays queued and will still be executed (warming
            # the cache); the client gets a structured timeout, not a
            # dropped socket.
            self._write_json(504, {
                "status": "error",
                "error": f"request not served within {self.server.request_timeout} s",
            })
            return
        headers = {"Retry-After": "1"} if response.status is ResponseStatus.OVERLOADED else None
        self._write_json(_status_code(response.status), response.as_dict(), headers)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP frontend bound to one service.

    ``service`` is either the in-process :class:`DrFixService` or the
    multi-process :class:`~repro.service.shard.ShardedDrFixService` — the two
    share the submit/call/metrics/health protocol, so the frontend is
    transport only.  Threaded so that slow cold requests never
    head-of-line-block the ``/metrics`` and ``/healthz`` probes; actual work
    still funnels through the service's bounded queues, so concurrency stays
    admission-controlled.
    """

    daemon_threads = True

    def __init__(self, service: DrFixService, address: Tuple[str, int] = ("127.0.0.1", 0),
                 verbose: bool = False, request_timeout: float = REQUEST_TIMEOUT_S,
                 default_runs: int = 10):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.request_timeout = request_timeout
        self.default_runs = default_runs

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (used by tests/benchmarks)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="drfix-service-http", daemon=True)
        thread.start()
        return thread


# ---------------------------------------------------------------------------
# Stdio transport
# ---------------------------------------------------------------------------


def handle_stdio_line(service: DrFixService, line: str,
                      timeout: float = REQUEST_TIMEOUT_S,
                      default_runs: int = 10) -> Optional[Dict[str, Any]]:
    """Serve one line-delimited JSON request; ``None`` means shut down."""
    text = line.strip()
    if not text:
        return {}
    try:
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError("each request line must be a JSON object")
        kind = str(data.get("kind") or "").strip().lower()
        if kind == "shutdown":
            return None
        if kind == "metrics":
            return {"kind": "metrics", "status": "ok",
                    "payload": service.metrics().as_dict()}
        request = request_from_payload(data, default_runs=default_runs)
    except (ReproError, ValueError) as exc:
        return {"status": "error", "error": str(exc)}
    try:
        return service.call(request, timeout=timeout).as_dict()
    except TimeoutError as exc:
        # A structured error line; the stdio session itself survives.
        return {"status": "error", "error": str(exc)}


def serve_stdio(service: DrFixService, stdin: IO[str], stdout: IO[str],
                timeout: float = REQUEST_TIMEOUT_S, default_runs: int = 10) -> int:
    """Serve line-delimited JSON until EOF or ``shutdown``; returns lines served."""
    served = 0
    for line in stdin:
        result = handle_stdio_line(service, line, timeout=timeout,
                                   default_runs=default_runs)
        if result is None:
            break
        if not result:  # blank line
            continue
        stdout.write(json.dumps(result) + "\n")
        stdout.flush()
        served += 1
    return served


__all__ = [
    "MAX_BODY_BYTES",
    "REQUEST_TIMEOUT_ENV_VAR",
    "REQUEST_TIMEOUT_S",
    "ServiceHTTPServer",
    "handle_stdio_line",
    "resolve_request_timeout",
    "serve_stdio",
]
