"""Fingerprint-keyed result caches for the serving layer.

:class:`ResultCache` is a bounded, thread-safe in-memory LRU mapping a
request's cache key (source fingerprint × config fingerprint × request knobs,
see :meth:`repro.service.requests.ServiceRequest.cache_key`) to the
deterministic response payload.  Safe by construction: the differential test
proves a served payload is bit-identical to a direct invocation, so replaying
a stored payload for an identical key cannot change any observable result —
only its latency.

:class:`PersistentResultCache` layers the evaluation run store's on-disk JSON
discipline (:mod:`repro.evaluation.store`) underneath the LRU: every ``put``
writes through to one versioned JSON file (atomic temp-file + ``os.replace``,
so concurrent readers never see a torn entry), and a memory miss falls back to
disk before declaring a true miss.  This is what makes warm hits survive a
full service restart and lets every shard of the sharded service share one
warm set — the master probes the cache before routing, so a payload computed
once is never recomputed by any worker.

Entries are deep-copied on both ``put`` and ``get`` so callers can never
mutate a cached payload in place (the HTTP frontend, the stdio frontend, and
programmatic clients all receive private copies).
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

#: Disambiguates concurrent temp files: the pid alone is not enough (two
#: threads of one process replacing the same key would collide), so the temp
#: name folds in a process-wide monotonic counter as well.
_TMP_COUNTER = itertools.count()

#: Bump when the serialised shape of a persistent entry changes: old files
#: stop validating and count as misses, the same invalidation discipline as
#: the run store's ``STORE_VERSION``.
CACHE_VERSION = 1


class ResultCache:
    """Bounded LRU of served payloads keyed by request fingerprint."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key`` (a private copy), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Copy outside the lock: entries are never mutated in place (put()
        # stores a private copy), so concurrent lookups need not serialize
        # behind a potentially large deep copy.
        return copy.deepcopy(entry)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a payload (copied), evicting the least-recently-used entry."""
        entry = copy.deepcopy(payload)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "memory_entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class PersistentResultCache(ResultCache):
    """LRU over a shared on-disk store: warm hits survive restarts.

    Layout (two-level fan-out keeps directories small at scale)::

        <root>/<key[:2]>/<key>.json

    Each entry is ``{"version": CACHE_VERSION, "key": key, "payload": …}``.
    The key already folds in the config fingerprint (the request's cache key
    is a digest of kind × source-fp × config-fp × knobs), so one directory can
    be shared by services running different configurations without collisions.
    Unreadable, mismatched, or stale-version files count as misses and are
    ignored — a corrupt entry can cost a recomputation, never a wrong answer.
    """

    def __init__(self, root: "Path | str", capacity: int = 256):
        super().__init__(capacity)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = super().get(key)
        if payload is not None:
            return payload
        data = self._load_disk(key)
        if data is None:
            with self._lock:
                self.disk_misses += 1
            return None
        with self._lock:
            self.disk_hits += 1
        # Promote to memory without re-writing the file we just read.
        self._store_memory(key, data)
        return data

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        super().put(key, payload)
        self._write_disk(key, payload)

    # ------------------------------------------------------------------

    def _store_memory(self, key: str, payload: Dict[str, Any]) -> None:
        entry = copy.deepcopy(payload)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def _load_disk(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or data.get("version") != CACHE_VERSION
                or data.get("key") != key
                or not isinstance(data.get("payload"), dict)):
            return None
        return data["payload"]

    def _write_disk(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps({"version": CACHE_VERSION, "key": key,
                           "payload": payload}, sort_keys=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
        tmp.write_text(text)
        os.replace(tmp, path)
        with self._lock:
            self.disk_writes += 1

    # ------------------------------------------------------------------

    def hit_rate(self) -> float:
        """Effective hit rate: a disk hit is a hit (it skipped the workers)."""
        with self._lock:
            total = self.hits + self.misses
            return (self.hits + self.disk_hits) / total if total else 0.0

    def entry_count(self) -> int:
        """Entries on disk (the set that survives a restart)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))

    def flush(self) -> int:
        """Writes are synchronous (write-through), so flushing is a fence:
        it reports how many entries the drain leaves durable on disk."""
        return self.entry_count()

    def stats(self) -> Dict[str, int]:
        base = super().stats()
        with self._lock:
            base.update({
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "disk_writes": self.disk_writes,
            })
        return base


__all__ = ["CACHE_VERSION", "PersistentResultCache", "ResultCache"]
