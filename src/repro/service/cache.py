"""Fingerprint-keyed result cache for the serving layer.

A bounded, thread-safe LRU mapping a request's cache key (source fingerprint ×
config fingerprint × request knobs, see
:meth:`repro.service.requests.ServiceRequest.cache_key`) to the deterministic
response payload.  Safe by construction: the differential test proves a served
payload is bit-identical to a direct invocation, so replaying a stored payload
for an identical key cannot change any observable result — only its latency.

Entries are deep-copied on both ``put`` and ``get`` so callers can never
mutate a cached payload in place (the HTTP frontend, the stdio frontend, and
programmatic clients all receive private copies).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional


class ResultCache:
    """Bounded LRU of served payloads keyed by request fingerprint."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key`` (a private copy), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Copy outside the lock: entries are never mutated in place (put()
        # stores a private copy), so concurrent lookups need not serialize
        # behind a potentially large deep copy.
        return copy.deepcopy(entry)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a payload (copied), evicting the least-recently-used entry."""
        entry = copy.deepcopy(payload)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


__all__ = ["ResultCache"]
