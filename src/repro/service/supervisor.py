"""Worker supervision for the sharded serving layer.

:class:`WorkerSupervisor` owns the *lifecycle* of the shard worker processes:
it watches them, restarts them, and decides when to stop trying.  The routing
of requests onto workers stays in :class:`~repro.service.shard.ShardedDrFixService`;
the split keeps each half testable on its own.

Supervision policy (the paper's deployment story is a service that must keep
running against a monorepo, not a script):

* **death detection** — a monitor thread polls every handle; a worker whose
  process has exited is handled within one poll interval.  The service's
  ``on_death`` callback decides the fate of the request that was in flight
  (retry on the next incarnation, or fail it structurally after too many
  attempts);
* **liveness deadline** — every worker heartbeats into a shared *lock-free*
  ``multiprocessing.Value`` (an aligned 8-byte store; a lock would be one
  more thing a dying worker could poison); a worker whose heartbeat goes
  stale past the deadline is presumed wedged and is killed (then handled as
  any other death).  The heartbeat runs on its own thread inside the worker,
  so a *busy* worker still beats — only a truly stuck one goes stale;
* **supervised restart with exponential backoff** — each consecutive failure
  doubles the restart delay (capped), so a flapping worker cannot consume the
  machine respawning;
* **crash-loop circuit breaker** — after ``breaker_threshold`` consecutive
  failures the shard is marked :attr:`WorkerState.BROKEN` and no longer
  restarted; the service fails that shard's queue structurally
  (``worker_failed``) instead of retrying forever.  A successful response
  resets the failure streak.

All handle state transitions happen under the *service's* lock (passed in as
``cond``), so the supervisor, the response collector, and the submit path can
never observe half-updated routing state.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class WorkerState(enum.Enum):
    """Lifecycle of one shard's worker slot (the slot outlives incarnations)."""

    READY = "ready"          # process alive, no request in flight
    BUSY = "busy"            # process alive, one request dispatched
    RESTARTING = "restarting"  # process dead, respawn scheduled (backoff)
    BROKEN = "broken"        # circuit breaker tripped: no further restarts
    STOPPED = "stopped"      # drained and shut down


@dataclass
class WorkerHandle:
    """One shard's worker slot: process, channel, heartbeat, and counters."""

    shard: int
    heartbeat: Any                 # raw (lock-free) 'd' value (worker -> master)
    request_conn: Any = None       # simplex pipe, master's write end
    response_conn: Any = None      # simplex pipe, master's read end
    process: Optional[Any] = None  # multiprocessing.Process
    state: WorkerState = WorkerState.RESTARTING
    incarnation: int = -1          # bumped to 0 by the first spawn
    in_flight_id: Optional[str] = None
    served: int = 0                # responses collected, across incarnations
    restarts: int = 0              # respawns after the initial start
    consecutive_failures: int = 0
    restart_at: float = 0.0        # monotonic deadline for the next respawn
    last_exit_code: Optional[int] = None

    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.heartbeat.value

    def status(self, now: Optional[float] = None, queue_depth: int = 0) -> Dict[str, Any]:
        """The per-worker block served by ``GET /healthz``."""
        return {
            "shard": self.shard,
            "pid": self.pid(),
            "state": self.state.value,
            "incarnation": self.incarnation,
            "served": self.served,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "last_exit_code": self.last_exit_code,
            "last_heartbeat_age_s": round(self.heartbeat_age(now), 3),
            "queue_depth": queue_depth,
            "in_flight": self.in_flight_id is not None,
        }


@dataclass
class SupervisorStats:
    """Supervision counters surfaced at ``GET /metrics`` (under the lock)."""

    restarts: int = 0
    liveness_kills: int = 0
    breaker_trips: int = 0
    worker_deaths: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "restarts": self.restarts,
            "liveness_kills": self.liveness_kills,
            "breaker_trips": self.breaker_trips,
            "worker_deaths": self.worker_deaths,
        }


class WorkerSupervisor:
    """Monitor thread + restart policy over a fixed set of worker handles.

    ``spawn(handle)`` (re)creates the worker process for a handle and is
    provided by the service (it owns the queues and the worker entry point).
    ``on_death(handle)`` runs under the lock before any restart decision, so
    the service can requeue or fail the in-flight request.  ``on_broken``
    runs when the breaker trips; ``on_ready`` after every (re)spawn.
    """

    def __init__(
        self,
        handles: List[WorkerHandle],
        cond: threading.Condition,
        spawn: Callable[[WorkerHandle], None],
        *,
        on_death: Callable[[WorkerHandle], None],
        on_ready: Callable[[WorkerHandle], None],
        on_broken: Callable[[WorkerHandle], None],
        liveness_deadline_s: float = 30.0,
        restart_backoff_s: float = 0.05,
        restart_backoff_cap_s: float = 2.0,
        breaker_threshold: int = 4,
        poll_interval_s: float = 0.02,
    ):
        self.handles = handles
        self._cond = cond
        self._spawn = spawn
        self._on_death = on_death
        self._on_ready = on_ready
        self._on_broken = on_broken
        self.liveness_deadline_s = liveness_deadline_s
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_cap_s = restart_backoff_cap_s
        self.breaker_threshold = breaker_threshold
        self.poll_interval_s = poll_interval_s
        self.stats = SupervisorStats()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        with self._cond:
            for handle in self.handles:
                self._spawn_locked(handle, initial=True)
        self._thread = threading.Thread(
            target=self._monitor_loop, name="drfix-shard-supervisor", daemon=True)
        self._thread.start()

    def stop(self, join_timeout_s: float = 10.0) -> None:
        """Stop monitoring, poison-pill live workers, and reap them.

        Called after the service has drained its queues, so a live worker's
        next queue item is the ``None`` pill.  Workers that ignore it (wedged)
        are killed — shutdown must terminate unconditionally.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(join_timeout_s)
            self._thread = None
        with self._cond:
            live = [h for h in self.handles
                    if h.process is not None and h.process.is_alive()]
            for handle in live:
                try:
                    handle.request_conn.send(None)
                except (AttributeError, BrokenPipeError, OSError):
                    pass  # already dead: the kill below is the backstop
        deadline = time.monotonic() + join_timeout_s
        for handle in live:
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        with self._cond:
            for handle in self.handles:
                handle.state = WorkerState.STOPPED
                handle.in_flight_id = None

    # -- policy hooks used by the service ------------------------------

    def note_success(self, handle: WorkerHandle) -> None:
        """A collected response resets the shard's failure streak (lock held)."""
        handle.consecutive_failures = 0

    # -- internals -----------------------------------------------------

    def _spawn_locked(self, handle: WorkerHandle, initial: bool = False) -> None:
        handle.incarnation += 1
        handle.heartbeat.value = time.monotonic()
        handle.in_flight_id = None
        self._spawn(handle)
        handle.state = WorkerState.READY
        if not initial:
            handle.restarts += 1
            self.stats.restarts += 1

    def _backoff_for(self, failures: int) -> float:
        return min(self.restart_backoff_cap_s,
                   self.restart_backoff_s * (2 ** max(0, failures - 1)))

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            now = time.monotonic()
            with self._cond:
                for handle in self.handles:
                    self._tick_locked(handle, now)

    def _tick_locked(self, handle: WorkerHandle, now: float) -> None:
        if handle.state in (WorkerState.BROKEN, WorkerState.STOPPED):
            return
        if handle.state is WorkerState.RESTARTING:
            if now >= handle.restart_at:
                self._spawn_locked(handle)
                self._on_ready(handle)
                self._cond.notify_all()
            return
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            # Liveness: a worker that stopped heartbeating past the deadline
            # is wedged (its heartbeat thread beats even while it computes).
            if handle.heartbeat_age(now) > self.liveness_deadline_s:
                self.stats.liveness_kills += 1
                process.kill()
                process.join(1.0)
                # Fall through to the death path below on the next check.
                if process.is_alive():  # pragma: no cover - kill is forceful
                    return
            else:
                return
        # The worker died (or was just liveness-killed).
        handle.last_exit_code = process.exitcode
        handle.consecutive_failures += 1
        self.stats.worker_deaths += 1
        self._on_death(handle)
        if handle.consecutive_failures >= self.breaker_threshold:
            handle.state = WorkerState.BROKEN
            self.stats.breaker_trips += 1
            self._on_broken(handle)
        else:
            handle.state = WorkerState.RESTARTING
            handle.restart_at = now + self._backoff_for(handle.consecutive_failures)
        self._cond.notify_all()


__all__ = [
    "SupervisorStats",
    "WorkerHandle",
    "WorkerState",
    "WorkerSupervisor",
]
