"""Service observability: counters, latency percentiles, throughput.

:class:`MetricsRecorder` is the service's internal, lock-guarded accumulator;
:class:`ServiceMetrics` is the immutable snapshot handed to callers (the
``/metrics`` HTTP endpoint, the stdio ``metrics`` command, and the load
benchmark all render it).  Latencies are kept in a bounded window so a
long-running service's memory stays flat under sustained traffic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def latency_percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample set (0.0 when empty).

    Takes the fraction as 0..1.  Deliberately named apart from
    :func:`repro.evaluation.metrics.percentile` (0..100, linear
    interpolation, the Table 7 convention) so the two conventions can never
    be swapped silently.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class ServiceMetrics:
    """One immutable snapshot of the service's counters."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    queue_depth: int = 0
    in_flight: int = 0
    batches: int = 0
    batched_requests: int = 0
    p50_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    throughput_rps: float = 0.0
    uptime_seconds: float = 0.0
    #: Snapshot of the interpreter's two-level program cache (entry hits and
    #: misses, single-flight waits, full vs derived builds, per-function unit
    #: reuse) — :meth:`repro.runtime.compiler.ProgramCache.stats`.
    program_cache: Dict[str, int] = field(default_factory=dict)
    #: Snapshot of the schedule-class dedup registry (classes explored, runs
    #: deduped/skipped, PCT prefix rejections, saturation stops, live
    #: indexes) — :meth:`repro.runtime.schedule_index.ScheduleClassRegistry.
    #: stats`.
    dedup: Dict[str, int] = field(default_factory=dict)
    #: Sharded-service supervision counters (restarts, retries, breaker trips,
    #: per-shard queue depth) — empty for the in-process service.
    supervisor: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "p50_latency_ms": round(self.p50_latency_ms, 3),
            "p95_latency_ms": round(self.p95_latency_ms, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "program_cache": dict(self.program_cache),
            "dedup": dict(self.dedup),
            "supervisor": dict(self.supervisor),
        }

    def render(self) -> str:
        return (
            f"served {self.served}/{self.submitted} "
            f"(rejected {self.rejected}, errors {self.errors}), "
            f"cache hit rate {self.cache_hit_rate:.0%}, "
            f"p50 {self.p50_latency_ms:.1f} ms, p95 {self.p95_latency_ms:.1f} ms, "
            f"{self.throughput_rps:.2f} req/s"
        )


@dataclass
class MetricsRecorder:
    """Thread-safe accumulator behind :class:`ServiceMetrics` snapshots."""

    latency_window: int = 4096
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        self.started_at = time.monotonic()
        self.submitted = 0
        self.served = 0
        self.rejected = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self._latencies_ms: deque = deque(maxlen=self.latency_window)

    # ------------------------------------------------------------------

    def on_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    def on_reject(self) -> None:
        with self._lock:
            self.submitted += 1
            self.rejected += 1

    def on_drop(self) -> None:
        """An already-admitted request resolved as rejected (shutdown drain);
        ``submitted`` was counted at admission, so only ``rejected`` moves."""
        with self._lock:
            self.rejected += 1

    def on_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def on_served(self, latency_ms: float, cached: bool, error: bool = False) -> None:
        with self._lock:
            self.served += 1
            if error:
                self.errors += 1
            elif cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies_ms.append(latency_ms)

    # ------------------------------------------------------------------

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0) -> ServiceMetrics:
        # Imported lazily: the metrics module must stay importable without
        # pulling the whole runtime stack in (and vice versa).
        from repro.runtime.compiler import PROGRAM_CACHE
        from repro.runtime.schedule_index import SCHEDULE_CLASS_REGISTRY

        program_cache = PROGRAM_CACHE.stats()
        dedup = SCHEDULE_CLASS_REGISTRY.stats()
        with self._lock:
            latencies: List[float] = list(self._latencies_ms)
            uptime = time.monotonic() - self.started_at
            return ServiceMetrics(
                submitted=self.submitted,
                served=self.served,
                rejected=self.rejected,
                errors=self.errors,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                queue_depth=queue_depth,
                in_flight=in_flight,
                batches=self.batches,
                batched_requests=self.batched_requests,
                p50_latency_ms=latency_percentile(latencies, 0.50),
                p95_latency_ms=latency_percentile(latencies, 0.95),
                throughput_rps=self.served / uptime if uptime > 0 else 0.0,
                uptime_seconds=uptime,
                program_cache=program_cache,
                dedup=dedup,
            )


__all__ = ["MetricsRecorder", "ServiceMetrics", "latency_percentile"]
