"""Dr.Fix as a service: async batch serving over the executor substrate.

The paper's system is consumed as a continuously running service — race
reports stream in from CI, fixes stream back out — not as a one-shot script.
:class:`DrFixService` is that serving layer, in-process and stdlib-only:

* **admission control** — a bounded request queue (``max_queue_depth``); a
  submission past the bound resolves *immediately* with a structured
  ``overloaded`` response instead of growing memory or blocking the client;
* **batch scheduling** — a scheduler thread coalesces queued requests into
  batches of at most ``max_in_flight`` and dispatches each batch through the
  shared :class:`~repro.execution.CaseExecutor`, so the service worker pool
  participates in the same ``DRFIX_NESTED_BUDGET`` accounting as every other
  layer (service jobs × per-seed harness runs never oversubscribe);
* **fingerprint result cache** — responses are cached by source fingerprint ×
  config fingerprint (:mod:`repro.service.cache`); a repeated submission of an
  identical package returns the warm payload without re-running the scheduler.
  Identical requests *within* one batch are also deduplicated: the work runs
  once and fans out to every waiting ticket;
* **stateless per-request execution** — every request builds a fresh
  :class:`~repro.core.pipeline.DrFix`/harness invocation, so served responses
  are bit-identical to direct calls (enforced by the differential test), which
  is what makes the cache safe by construction;
* **metrics** — a :class:`~repro.service.metrics.ServiceMetrics` snapshot
  (served counts, cache hit rate, queue depth, p50/p95 latency, throughput).

Clients interact through tickets::

    with DrFixService(config, database) as service:
        ticket = service.submit(DetectRequest(package=pkg))
        response = ticket.result(timeout=60)

or the blocking convenience :meth:`DrFixService.call`.  The HTTP/stdio
frontends in :mod:`repro.service.frontend` are thin adapters over this class.
"""

from __future__ import annotations

import copy
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import DrFixConfig
from repro.core.database import ExampleDatabase
from repro.core.pipeline import DrFix, FixOutcome
from repro.diagnosis import RaceDiagnoser
from repro.errors import ConfigError
from repro.execution import CaseExecutor, ExecutorKind, resolve_kind
from repro.fingerprint import config_fingerprint
from repro.runtime.harness import GoPackage, PackageRunResult, run_package_tests
from repro.service.cache import PersistentResultCache, ResultCache
from repro.service.metrics import MetricsRecorder, ServiceMetrics
from repro.service.requests import (
    RequestKind,
    ResponseStatus,
    ServiceRequest,
    ServiceResponse,
)


# ---------------------------------------------------------------------------
# Deterministic payloads
# ---------------------------------------------------------------------------
#
# Payloads carry only deterministic fields (no wall-clock durations), so a
# cached payload is byte-for-byte what a cold run would produce.  The
# differential test renders *direct* harness/pipeline invocations through
# these same builders and compares them against served responses.
#
# One piece of process-lifetime state must be scrubbed to get there: the
# ``0x00c…`` cell addresses in rendered reports come from a process-global
# allocation counter (:mod:`repro.runtime.memory`), so the *same* detection
# repeated later in one process renders different addresses.  Payloads
# renumber them from a fixed base in first-appearance order — deterministic,
# distinctness-preserving, and still ThreadSanitizer-shaped — so a served
# response is a pure function of (package, config, runs, seed).

#: The renderer prints cell addresses as ``0x{address:012x}`` counting up from
#: ``0xc000000000`` in steps of 0x10 (see ``repro.runtime.memory``).
_ADDRESS_RE = re.compile(r"0x00c[0-9a-f]{9}")
_ADDRESS_BASE = 0xC000000000
_ADDRESS_STEP = 0x10


def normalize_addresses(value: Any, mapping: Optional[Dict[str, str]] = None) -> Any:
    """Renumber process-global cell addresses in first-appearance order.

    Walks strings, lists, and dicts (payloads are built with deterministic
    ordering, so first appearance is deterministic too); distinct addresses
    stay distinct.
    """
    if mapping is None:
        mapping = {}

    def remap(match: "re.Match[str]") -> str:
        text = match.group(0)
        if text not in mapping:
            mapping[text] = f"0x{_ADDRESS_BASE + len(mapping) * _ADDRESS_STEP:012x}"
        return mapping[text]

    if isinstance(value, str):
        return _ADDRESS_RE.sub(remap, value)
    if isinstance(value, list):
        return [normalize_addresses(item, mapping) for item in value]
    if isinstance(value, dict):
        return {key: normalize_addresses(item, mapping) for key, item in value.items()}
    return value


def detect_payload(package: GoPackage, result: PackageRunResult) -> Dict[str, Any]:
    """The deterministic wire form of one detection run."""
    diagnoser = RaceDiagnoser(package)
    return {
        "package": result.package,
        "built": result.built,
        "passed": result.passed,
        "summary": result.summary(),
        "runs": result.runs,
        "tests_discovered": result.tests_discovered,
        "build_errors": list(result.build_errors),
        "test_failures": list(result.test_failures),
        "output": list(result.output),
        "output_lines_truncated": result.output_lines_truncated,
        "scheduler_steps": result.scheduler_steps,
        "race_hashes": result.race_hashes(),
        "reports": [
            {
                "bug_hash": report.bug_hash(),
                "variable": report.variable,
                "render": report.render(),
                "diagnosis": diagnoser.diagnose(report).summary(),
            }
            for report in result.reports
        ],
    }


def fix_outcome_payload(package: GoPackage, outcome: FixOutcome) -> Dict[str, Any]:
    """The deterministic wire form of one pipeline outcome."""
    changed: Dict[str, str] = {}
    diff = ""
    if outcome.patch is not None:
        diff = outcome.patch.diff(package)
        for name in outcome.patch.changed_files:
            file = outcome.patch.package.file(name)
            if file is not None:
                changed[name] = file.source
    return {
        "bug_hash": outcome.bug_hash,
        "fixed": outcome.fixed,
        "strategy": outcome.strategy,
        "location": outcome.location,
        "scope": outcome.scope,
        "guided_by_example": outcome.guided_by_example,
        "example_id": outcome.example_id,
        "lines_changed": outcome.lines_changed,
        "failure_reason": outcome.failure_reason,
        "model_calls": outcome.model_calls,
        "validations": outcome.validations,
        "attempts": len(outcome.attempts),
        "diagnosis": outcome.diagnosis.summary() if outcome.diagnosis is not None else "",
        "diff": diff,
        "changed_files": changed,
    }


def execute_detect(request: ServiceRequest, config: DrFixConfig) -> Dict[str, Any]:
    """Run the detector for one request: a pure function of its inputs."""
    result = run_package_tests(
        request.package,
        runs=request.runs,
        seed=request.seed,
        jobs=config.harness_jobs,
        engine=config.engine or None,
        slicing=config.slicing or None,
        dedup=config.dedup or None,
        saturation_after=config.saturation_after,
    )
    return normalize_addresses(detect_payload(request.package, result))


def execute_fix(request: ServiceRequest, config: DrFixConfig,
                database: Optional[ExampleDatabase]) -> Dict[str, Any]:
    """Detect, then run the pipeline on every report — stateless per request.

    Each report gets a *fresh* :class:`DrFix` (fresh generator/validator
    counters), so the payload for a package is independent of whatever the
    service handled before it — the property the differential test checks.
    """
    detection = run_package_tests(
        request.package,
        runs=request.runs,
        seed=request.seed,
        jobs=config.harness_jobs,
        engine=config.engine or None,
        slicing=config.slicing or None,
        dedup=config.dedup or None,
        saturation_after=config.saturation_after,
    )
    results: List[Dict[str, Any]] = []
    if detection.built:
        baseline = detection.race_hashes()
        for report in detection.reports:
            pipeline = DrFix(request.package, config=config, database=database)
            outcome = pipeline.fix_report(report, baseline_hashes=baseline)
            results.append(fix_outcome_payload(request.package, outcome))
    payload = {
        "package": detection.package,
        "built": detection.built,
        "detection_summary": detection.summary(),
        "race_hashes": detection.race_hashes(),
        "build_errors": list(detection.build_errors),
        "fixed_any": any(r["fixed"] for r in results),
        "results": results,
    }
    return normalize_addresses(payload)


def _execute_request(config: DrFixConfig, database: Optional[ExampleDatabase],
                     request: ServiceRequest) -> Tuple[Optional[Dict[str, Any]], str]:
    """Worker body: (payload, "") on success, (None, detail) on failure.

    Module-level with picklable arguments so batches can dispatch through the
    process backend too; exceptions are folded into structured ``error``
    responses — a worker must never take the batch (or the service) down.
    """
    try:
        if request.kind is RequestKind.DETECT:
            return execute_detect(request, config), ""
        return execute_fix(request, config, database), ""
    except Exception as exc:  # noqa: BLE001 - the service converts to a response
        return None, f"{type(exc).__name__}: {exc}"


# ---------------------------------------------------------------------------
# Tickets and queue entries
# ---------------------------------------------------------------------------


class ServiceTicket:
    """A client's handle on one submitted request."""

    def __init__(self, request_id: str, kind: str):
        self.request_id = request_id
        self.kind = kind
        self._event = threading.Event()
        self._response: Optional[ServiceResponse] = None

    def resolve(self, response: ServiceResponse) -> None:
        self._response = response
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        """Block until the response is ready (raises ``TimeoutError``)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not served within {timeout} seconds"
            )
        assert self._response is not None
        return self._response


@dataclass
class _Pending:
    """One admitted request waiting in (or popped from) the queue."""

    ticket: ServiceTicket
    request: ServiceRequest
    key: str
    submitted_at: float


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class DrFixService:
    """In-process async batch server over the Dr.Fix pipeline."""

    def __init__(
        self,
        config: Optional[DrFixConfig] = None,
        database: Optional[ExampleDatabase] = None,
        *,
        max_queue_depth: int = 64,
        max_in_flight: int = 4,
        jobs: Optional[int] = None,
        executor: "ExecutorKind | str | None" = "thread",
        cache_capacity: int = 256,
        cache_dir: Optional[str] = None,
        batch_linger_s: float = 0.0,
        start: bool = True,
    ):
        if max_queue_depth <= 0:
            raise ConfigError("max_queue_depth must be positive")
        if max_in_flight <= 0:
            raise ConfigError("max_in_flight must be positive")
        self.config = (config or DrFixConfig(model="gpt-4o")).validated()
        self.database = database
        self.max_queue_depth = max_queue_depth
        self.max_in_flight = max_in_flight
        self.jobs = jobs
        if executor is not None:
            # Validate the backend name now so it fails at construction, not
            # inside the scheduler thread where it could strand tickets.
            resolve_kind(executor)
        self.executor_kind = executor
        self.batch_linger_s = batch_linger_s
        self.config_fp = config_fingerprint(self.config)
        self.cache: ResultCache = (
            PersistentResultCache(cache_dir, cache_capacity) if cache_dir
            else ResultCache(cache_capacity))
        self.recorder = MetricsRecorder()
        self._cond = threading.Condition()
        self._pending: "deque[_Pending]" = deque()
        self._in_flight = 0
        self._sequence = 0
        #: Admission gate: True from construction until shutdown, so requests
        #: may be queued before :meth:`start` spins the scheduler up (tests
        #: use this to fill the queue deterministically).
        self._accepting = True
        self._running = False
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._running:
                return
            self._accepting = True
            self._running = True
            self._thread = threading.Thread(
                target=self._scheduler_loop, name="drfix-service-scheduler", daemon=True
            )
            self._thread.start()

    def begin_drain(self) -> None:
        """Stop admitting new requests; the scheduler keeps serving admitted
        ones.  The graceful half of :meth:`shutdown` — ``drfix serve`` calls
        this from its SIGTERM handler before waiting out the in-flight work."""
        with self._cond:
            self._accepting = False
            self._cond.notify_all()

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting; the scheduler drains already-admitted requests.

        If the scheduler was never started (``start=False``), admitted
        requests cannot be served — they are resolved with ``overloaded``
        here rather than left to hang their tickets forever.
        """
        with self._cond:
            self._accepting = False
            self._running = False
            stranded: List[_Pending] = []
            if self._thread is None:
                stranded = list(self._pending)
                self._pending.clear()
            self._cond.notify_all()
        for entry in stranded:
            self.recorder.on_drop()
            entry.ticket.resolve(ServiceResponse(
                request_id=entry.ticket.request_id, kind=entry.ticket.kind,
                status=ResponseStatus.OVERLOADED,
                detail="service shut down before it was started",
            ))
        if wait and self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "DrFixService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # -- submission ----------------------------------------------------

    def submit(self, request: ServiceRequest) -> ServiceTicket:
        """Admit (or reject) one request; never blocks on the queue."""
        request = request.validated()
        now = time.monotonic()
        with self._cond:
            self._sequence += 1
            ticket = ServiceTicket(f"r{self._sequence:06d}", request.kind.value)
            if not self._accepting:
                detail = "service is shut down"
            elif len(self._pending) >= self.max_queue_depth:
                detail = (
                    f"queue full ({len(self._pending)}/{self.max_queue_depth} "
                    f"queued, {self._in_flight} in flight)"
                )
            else:
                self.recorder.on_submit()
                self._pending.append(
                    _Pending(ticket=ticket, request=request,
                             key=request.cache_key(self.config_fp), submitted_at=now)
                )
                self._cond.notify()
                return ticket
        # Structured backpressure: resolve immediately, outside the lock.
        self.recorder.on_reject()
        ticket.resolve(ServiceResponse(
            request_id=ticket.request_id, kind=ticket.kind,
            status=ResponseStatus.OVERLOADED, detail=detail,
        ))
        return ticket

    def call(self, request: ServiceRequest,
             timeout: Optional[float] = None) -> ServiceResponse:
        """Blocking convenience: submit and wait for the response."""
        return self.submit(request).result(timeout)

    # -- observability -------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        with self._cond:
            depth, in_flight = len(self._pending), self._in_flight
        return self.recorder.snapshot(queue_depth=depth, in_flight=in_flight)

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body (same shape as the sharded service's,
        minus the per-worker blocks — the in-process service has none)."""
        with self._cond:
            draining = not self._accepting
            depth, in_flight = len(self._pending), self._in_flight
        return {
            "status": "draining" if draining else "ok",
            "workers": [],
            "broken_shards": 0,
            "queue_depth": depth,
            "in_flight": in_flight,
            "cache_entries": len(self.cache),
        }

    # -- the batch scheduler -------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                # Event-driven: submit() and shutdown() both notify, so the
                # idle wait needs no timeout (no polling wakeups).
                while self._running and not self._pending:
                    self._cond.wait()
                if not self._pending:
                    if not self._running:
                        return
                    continue
                if (self.batch_linger_s > 0
                        and len(self._pending) < self.max_in_flight
                        and self._running):
                    # Give a burst a moment to coalesce into one batch.
                    self._cond.wait(self.batch_linger_s)
                batch: List[_Pending] = []
                while self._pending and len(batch) < self.max_in_flight:
                    batch.append(self._pending.popleft())
                self._in_flight = len(batch)
            try:
                self._serve_batch(batch)
            except Exception as exc:  # noqa: BLE001 - the scheduler must survive
                # A failure in the batch path itself (not a worker — those are
                # guarded in _execute_request) must not kill the scheduler
                # thread and strand every future ticket: resolve whatever the
                # batch left unresolved and keep serving.
                detail = f"internal batch failure: {type(exc).__name__}: {exc}"
                for entry in batch:
                    if not entry.ticket.done():
                        self._finish(entry, ResponseStatus.ERROR, detail=detail)
            finally:
                with self._cond:
                    self._in_flight = 0

    def _serve_batch(self, batch: List[_Pending]) -> None:
        self.recorder.on_batch(len(batch))
        # Group identical requests up front, so the cache is probed once per
        # *unique* key: the ResultCache counters stay per-unique-key while
        # the MetricsRecorder counts per-request (followers of an in-batch
        # duplicate count as hits — their work was shared), keeping the two
        # hit rates consistent in meaning.
        groups: "Dict[str, List[_Pending]]" = {}
        for entry in batch:
            groups.setdefault(entry.key, []).append(entry)
        # Warm pass: anything already cached resolves without touching a worker.
        leaders: List[_Pending] = []
        for key, entries in groups.items():
            payload = self.cache.get(key)
            if payload is not None:
                # cache.get returned one private copy; duplicates in the
                # group each get their own so no two responses alias.
                for index, entry in enumerate(entries):
                    self._finish(entry, ResponseStatus.OK,
                                 payload=payload if index == 0
                                 else copy.deepcopy(payload),
                                 cached=True)
            else:
                # Deduplicated miss: the leader computes, followers share.
                leaders.append(entries[0])
        if not leaders:
            return
        worker = partial(_execute_request, self.config, self.database)
        # A fresh CaseExecutor per batch matches how every other layer uses
        # the substrate.  The default backend is ``thread``: workers share
        # the process-wide program cache and pool startup is negligible.
        # The ``process`` backend pays pool startup + a per-worker program
        # cache warm-up on *every batch* — prefer it only for long batches
        # of genuinely cold, CPU-bound work.
        pool = CaseExecutor(kind=self.executor_kind, jobs=self.jobs)
        outcomes = pool.map(worker, [leader.request for leader in leaders])
        for leader, (payload, detail) in zip(leaders, outcomes):
            followers = groups[leader.key]
            if payload is None:
                for entry in followers:
                    self._finish(entry, ResponseStatus.ERROR, detail=detail)
                continue
            self.cache.put(leader.key, payload)
            for index, entry in enumerate(followers):
                # The leader computed; followers shared the computation but
                # receive private copies (responses must never alias).
                self._finish(entry, ResponseStatus.OK,
                             payload=payload if index == 0
                             else copy.deepcopy(payload),
                             cached=index > 0)

    def _finish(self, entry: _Pending, status: ResponseStatus, *,
                payload: Optional[Dict[str, Any]] = None, cached: bool = False,
                detail: str = "") -> None:
        latency_ms = (time.monotonic() - entry.submitted_at) * 1000.0
        self.recorder.on_served(latency_ms, cached=cached,
                                error=status is ResponseStatus.ERROR)
        entry.ticket.resolve(ServiceResponse(
            request_id=entry.ticket.request_id,
            kind=entry.ticket.kind,
            status=status,
            payload=payload if payload is not None else {},
            cached=cached,
            detail=detail,
            duration_ms=latency_ms,
        ))


__all__ = [
    "DrFixService",
    "ServiceTicket",
    "detect_payload",
    "execute_detect",
    "execute_fix",
    "fix_outcome_payload",
    "normalize_addresses",
]
