"""Deterministic fault injection for the sharded serving layer.

Every failure mode the supervisor must survive — a worker dying mid-request,
a crash loop, a wedged process that stops heartbeating, a slow shard — is
exercised in tests through one deterministic hook: a **fault plan** parsed
from the ``DRFIX_FAULT_PLAN`` environment variable (or passed directly to
:class:`~repro.service.shard.ShardedDrFixService`).  Faults fire on *request
counts*, never on wall-clock, so a plan replays identically run after run.

Grammar — clauses separated by ``;``, fields by ``:``::

    DRFIX_FAULT_PLAN="kill:worker=1:after=3"
    DRFIX_FAULT_PLAN="kill:after=1:incarnation=any; delay:worker=0:ms=50"

* **action** (first field): ``kill`` (hard ``os._exit`` — the request in
  flight is lost), ``crash`` (uncaught exception unwinds the worker process),
  ``delay`` (sleep ``ms`` then continue), ``wedge`` (stop heartbeating and
  hang — exercises the liveness deadline).
* ``worker=K`` — only shard ``K`` (default: every worker);
* ``after=M`` — fire on the worker's ``M``-th received request (default 1);
* ``point=receive|respond`` — before executing the request, or after
  executing but before the response is sent (default ``receive``);
* ``incarnation=I|any`` — only the ``I``-th spawn of that shard's worker
  (default 0, the first: a restarted worker is healthy unless the plan says
  ``any``, which is how a crash *loop* is scripted);
* ``ms=N`` — duration for ``delay``/``wedge`` (wedge defaults to hanging
  until the supervisor kills it).

Unknown actions or malformed fields fail fast with
:class:`~repro.errors.ConfigError` — the same discipline as
``DRFIX_ENGINE``/``DRFIX_SLICING``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError

#: Environment variable carrying the fault plan (empty/unset = no faults).
FAULT_PLAN_ENV_VAR = "DRFIX_FAULT_PLAN"

#: Worker exit codes, distinguishable in supervisor logs/tests.
KILL_EXIT_CODE = 70
CRASH_EXIT_CODE = 71

_ACTIONS = ("kill", "crash", "delay", "wedge")
_POINTS = ("receive", "respond")


@dataclass(frozen=True)
class FaultClause:
    """One scripted fault: fires at most once per worker incarnation."""

    action: str
    worker: Optional[int] = None  # None = any worker
    after: int = 1
    point: str = "receive"
    incarnation: Optional[int] = 0  # None = any incarnation
    ms: float = 0.0

    def matches(self, worker: int, incarnation: int, point: str, count: int) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        if self.incarnation is not None and self.incarnation != incarnation:
            return False
        return self.point == point and self.after == count

    def describe(self) -> str:
        fields = [self.action,
                  f"worker={'any' if self.worker is None else self.worker}",
                  f"after={self.after}", f"point={self.point}",
                  f"incarnation={'any' if self.incarnation is None else self.incarnation}"]
        if self.action in ("delay", "wedge"):
            fields.append(f"ms={self.ms:g}")
        return ":".join(fields)


def _parse_int(field: str, value: str, *, allow_any: bool = False) -> Optional[int]:
    if allow_any and value == "any":
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigError(f"fault plan: {field} must be an integer"
                          f"{' or any' if allow_any else ''}, got {value!r}")
    if parsed < 0:
        raise ConfigError(f"fault plan: {field} must be non-negative, got {parsed}")
    return parsed


def _parse_clause(text: str) -> FaultClause:
    fields = [part.strip() for part in text.split(":") if part.strip()]
    if not fields:
        raise ConfigError("fault plan: empty clause")
    action = fields[0].lower()
    if action not in _ACTIONS:
        raise ConfigError(f"fault plan: unknown action {action!r} "
                          f"(expected {', '.join(_ACTIONS)})")
    worker: Optional[int] = None
    after = 1
    point = "receive"
    incarnation: Optional[int] = 0
    ms = 0.0
    for field in fields[1:]:
        if "=" not in field:
            raise ConfigError(f"fault plan: expected key=value, got {field!r}")
        key, _, value = field.partition("=")
        key, value = key.strip().lower(), value.strip().lower()
        if key == "worker":
            worker = _parse_int("worker", value, allow_any=True)
        elif key == "after":
            after = _parse_int("after", value) or 0
            if after < 1:
                raise ConfigError(f"fault plan: after must be >= 1, got {after}")
        elif key == "point":
            if value not in _POINTS:
                raise ConfigError(f"fault plan: unknown point {value!r} "
                                  f"(expected {' or '.join(_POINTS)})")
            point = value
        elif key == "incarnation":
            incarnation = _parse_int("incarnation", value, allow_any=True)
        elif key == "ms":
            try:
                ms = float(value)
            except ValueError:
                raise ConfigError(f"fault plan: ms must be a number, got {value!r}")
            if ms < 0:
                raise ConfigError(f"fault plan: ms must be non-negative, got {ms:g}")
        else:
            raise ConfigError(f"fault plan: unknown field {key!r} (expected "
                              "worker, after, point, incarnation, ms)")
    return FaultClause(action=action, worker=worker, after=after, point=point,
                       incarnation=incarnation, ms=ms)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable set of fault clauses (empty = no faults)."""

    clauses: Tuple[FaultClause, ...] = ()
    spec: str = ""

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        text = (spec or "").strip()
        if not text:
            return cls()
        clauses = tuple(_parse_clause(part) for part in text.split(";")
                        if part.strip())
        return cls(clauses=clauses, spec=text)

    @classmethod
    def resolve(cls, spec: Optional[str] = None) -> "FaultPlan":
        """Explicit spec first, then ``DRFIX_FAULT_PLAN``, then no faults."""
        if spec is not None:
            return cls.parse(spec)
        return cls.parse(os.environ.get(FAULT_PLAN_ENV_VAR, ""))

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def injector(self, worker: int, incarnation: int) -> "FaultInjector":
        return FaultInjector(self, worker, incarnation)


class FaultInjector:
    """Per-worker-process fault trigger, consulted at the named points.

    Lives inside the worker process; ``fire`` is called with the running
    request count, so whether a clause triggers is a pure function of the
    request sequence the worker has seen — fully deterministic.
    """

    def __init__(self, plan: FaultPlan, worker: int, incarnation: int):
        self._plan = plan
        self._worker = worker
        self._incarnation = incarnation
        self._fired: set = set()

    def fire(self, point: str, count: int,
             wedge_event: Optional[threading.Event] = None) -> None:
        """Trigger any matching clause.  May never return (kill/crash/wedge)."""
        for index, clause in enumerate(self._plan.clauses):
            if index in self._fired:
                continue
            if not clause.matches(self._worker, self._incarnation, point, count):
                continue
            self._fired.add(index)
            if clause.action == "delay":
                time.sleep(clause.ms / 1000.0)
            elif clause.action == "kill":
                # Hard death: no cleanup, no response — the in-flight request
                # is lost exactly as if the OS OOM-killed the worker.
                os._exit(KILL_EXIT_CODE)
            elif clause.action == "crash":
                raise SystemExit(CRASH_EXIT_CODE)
            elif clause.action == "wedge":
                # Stop heartbeating, then hang: the liveness deadline — not a
                # crash — is what must recover this worker.
                if wedge_event is not None:
                    wedge_event.set()
                time.sleep(clause.ms / 1000.0 if clause.ms else 3600.0)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_PLAN_ENV_VAR",
    "FaultClause",
    "FaultInjector",
    "FaultPlan",
    "KILL_EXIT_CODE",
]
