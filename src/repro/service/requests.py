"""Request and response model for the Dr.Fix serving layer.

A request names a Go package (files shipped inline, order-preserving — file
order is part of the package identity) plus the detection knobs, and is keyed
for the result cache by **source fingerprint × config fingerprint**: the same
discipline as the evaluation run store and the runtime program cache.  Two
requests with the same key would compute bit-identical payloads (the service's
differential test enforces this against direct invocations), which is what
makes serving cached responses safe by construction.

Responses are JSON-shaped end to end: the ``payload`` carries only
deterministic fields (reports, hashes, diffs — never wall-clock durations), so
a cache hit is byte-for-byte the response a cold run would have produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.fingerprint import config_fingerprint, digest
from repro.runtime.compiler import package_fingerprint
from repro.runtime.harness import GoFile, GoPackage


class RequestKind(enum.Enum):
    """What the service should do with the submitted package."""

    DETECT = "detect"
    FIX = "fix"


class ResponseStatus(enum.Enum):
    """Terminal state of one request."""

    OK = "ok"
    #: Structured backpressure: the queue was at its bound (or the service was
    #: shut down); the client should retry later.  Never raised as an
    #: exception — admission control is part of the protocol.
    OVERLOADED = "overloaded"
    ERROR = "error"
    #: Structured crash report from the sharded service: the worker process
    #: serving this request died more times than the retry budget allows (or
    #: its shard's circuit breaker is open).  Like ``overloaded``, this is
    #: protocol, not an exception — a supervised crash must never become a
    #: hung client.
    WORKER_FAILED = "worker_failed"


@dataclass(frozen=True)
class ServiceRequest:
    """Base request: one package plus the detection knobs."""

    package: GoPackage
    runs: int = 10
    seed: int = 0

    kind: RequestKind = field(init=False, default=RequestKind.DETECT)

    def validated(self) -> "ServiceRequest":
        if not self.package.files:
            raise ConfigError("a service request needs at least one Go file")
        if self.runs <= 0:
            raise ConfigError("runs must be a positive integer")
        return self

    # ------------------------------------------------------------------

    def source_fingerprint(self) -> str:
        return package_fingerprint(self.package)

    def cache_key(self, config_fp: str) -> str:
        """Source fingerprint × config fingerprint (plus the request knobs)."""
        return digest({
            "kind": self.kind.value,
            "source": self.source_fingerprint(),
            "config": config_fp,
            "runs": self.runs,
            "seed": self.seed,
        })

    def describe(self) -> str:
        return f"{self.kind.value}({self.package.name}, runs={self.runs}, seed={self.seed})"


@dataclass(frozen=True)
class DetectRequest(ServiceRequest):
    """Run the race detector over the package (the ``drfix detect`` path)."""

    kind: RequestKind = field(init=False, default=RequestKind.DETECT)


@dataclass(frozen=True)
class FixRequest(ServiceRequest):
    """Detect, then run the Dr.Fix pipeline on every report (``drfix fix``)."""

    kind: RequestKind = field(init=False, default=RequestKind.FIX)


@dataclass
class ServiceResponse:
    """Terminal response for one request."""

    request_id: str
    kind: str
    status: ResponseStatus
    #: Deterministic result payload (empty on rejection/error).
    payload: Dict[str, Any] = field(default_factory=dict)
    #: True when the payload came from the fingerprint result cache.
    cached: bool = False
    #: Human-readable detail for ``overloaded``/``error`` responses.
    detail: str = ""
    #: Wall-clock milliseconds from admission to completion (not part of the
    #: payload, so cached and cold responses stay bit-identical where it
    #: matters).
    duration_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "status": self.status.value,
            "cached": self.cached,
            "detail": self.detail,
            "duration_ms": round(self.duration_ms, 3),
            "payload": self.payload,
        }


# ---------------------------------------------------------------------------
# Wire form (shared by the HTTP and stdio frontends)
# ---------------------------------------------------------------------------


def package_from_payload(data: Dict[str, Any]) -> GoPackage:
    """Build a :class:`GoPackage` from the wire form.

    ``files`` maps file name → source; insertion order is preserved (it is
    part of the package identity — test discovery iterates files in order).
    """
    files_raw = data.get("files")
    if not isinstance(files_raw, dict) or not files_raw:
        raise ConfigError("request needs a non-empty 'files' object of name → source")
    files = []
    for name, source in files_raw.items():
        if not isinstance(name, str) or not isinstance(source, str):
            raise ConfigError("'files' entries must map string names to string sources")
        files.append(GoFile(name=name, source=source))
    name = data.get("package") or "pkg"
    if not isinstance(name, str):
        raise ConfigError("'package' must be a string")
    return GoPackage(name=name, files=files)


def request_from_payload(data: Dict[str, Any], kind: Optional[str] = None,
                         default_runs: int = 10) -> ServiceRequest:
    """Parse one wire request (``kind`` may come from the URL or the body)."""
    raw_kind = kind if kind is not None else data.get("kind")
    try:
        parsed_kind = RequestKind(str(raw_kind or "").strip().lower())
    except ValueError:
        valid = ", ".join(k.value for k in RequestKind)
        raise ConfigError(f"unknown request kind {raw_kind!r} (expected {valid})")
    package = package_from_payload(data)
    try:
        runs = int(data.get("runs", default_runs))
        seed = int(data.get("seed", 0))
    except (TypeError, ValueError):
        raise ConfigError("'runs' and 'seed' must be integers")
    cls = DetectRequest if parsed_kind is RequestKind.DETECT else FixRequest
    return cls(package=package, runs=runs, seed=seed).validated()


__all__ = [
    "DetectRequest",
    "FixRequest",
    "RequestKind",
    "ResponseStatus",
    "ServiceRequest",
    "ServiceResponse",
    "config_fingerprint",
    "package_from_payload",
    "request_from_payload",
]
