"""Race-category taxonomy: the vocabulary of the diagnosis layer.

The categories follow Table 3 (categories of races *fixed* by Dr.Fix and of
the examples in the vector database) and Table 5 (categories of races Dr.Fix
could *not* fix).  The corpus generator labels every synthetic race with a
:class:`RaceCategory`, :class:`~repro.diagnosis.diagnose.RaceDiagnoser`
assigns one to every raw race report, and the evaluation harness aggregates
results by it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class RaceCategory(enum.Enum):
    """Categories of data races (Table 3 of the paper)."""

    CAPTURE_BY_REFERENCE = "capture-by-reference"
    MISSING_SYNCHRONIZATION = "missing-synchronization"
    PARALLEL_TEST_SUITE = "parallel-test-suite"
    LOOP_VARIABLE_CAPTURE = "loop-variable-capture"
    CONCURRENT_MAP_ACCESS = "concurrent-map-access"
    CONCURRENT_SLICE_ACCESS = "concurrent-slice-access"
    OTHERS = "others"

    @property
    def display_name(self) -> str:
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES: Dict[RaceCategory, str] = {
    RaceCategory.CAPTURE_BY_REFERENCE: "Capture-by-reference in goroutines",
    RaceCategory.MISSING_SYNCHRONIZATION: "Missing/incorrect synchronization",
    RaceCategory.PARALLEL_TEST_SUITE: "Parallel test suite",
    RaceCategory.LOOP_VARIABLE_CAPTURE: "Capture of loop variable",
    RaceCategory.CONCURRENT_MAP_ACCESS: "Concurrent map access",
    RaceCategory.CONCURRENT_SLICE_ACCESS: "Concurrent slice access",
    RaceCategory.OTHERS: "Others",
}


#: Frequencies of Dr.Fix-produced fixes by category (Table 3, "Dr.Fix fixes").
PAPER_FIX_FREQUENCIES: Dict[RaceCategory, float] = {
    RaceCategory.CAPTURE_BY_REFERENCE: 0.41,
    RaceCategory.MISSING_SYNCHRONIZATION: 0.26,
    RaceCategory.PARALLEL_TEST_SUITE: 0.13,
    RaceCategory.LOOP_VARIABLE_CAPTURE: 0.06,
    RaceCategory.CONCURRENT_MAP_ACCESS: 0.05,
    RaceCategory.CONCURRENT_SLICE_ACCESS: 0.05,
    RaceCategory.OTHERS: 0.04,
}

#: Frequencies of the curated examples in the vector database (Table 3, "VectorDB").
PAPER_VECTORDB_FREQUENCIES: Dict[RaceCategory, float] = {
    RaceCategory.CAPTURE_BY_REFERENCE: 0.375,
    RaceCategory.MISSING_SYNCHRONIZATION: 0.147,
    RaceCategory.PARALLEL_TEST_SUITE: 0.118,
    RaceCategory.LOOP_VARIABLE_CAPTURE: 0.0257,
    RaceCategory.CONCURRENT_MAP_ACCESS: 0.0515,
    RaceCategory.CONCURRENT_SLICE_ACCESS: 0.0257,
    RaceCategory.OTHERS: 0.257,
}


class UnfixedReason(enum.Enum):
    """Why a race was not fixed (Table 5 of the paper)."""

    MULTI_FILE = "more-than-2-file-changes"
    CHANGE_PARALLELISM = "change-reduce-remove-parallelism"
    BUSINESS_LOGIC = "change-business-logic"
    ISOLATE_TEST = "unable-to-isolate-failing-test"
    EXTERNAL = "external"
    LARGE_REFACTORING = "large-code-refactoring"
    OTHERS = "others"
    DEEP_COPY = "using-deep-copy"
    SINGLETON = "singleton-pattern"
    NONTRIVIAL = "non-trivial-even-for-experts"

    @property
    def display_name(self) -> str:
        return _UNFIXED_DISPLAY[self]


_UNFIXED_DISPLAY: Dict[UnfixedReason, str] = {
    UnfixedReason.MULTI_FILE: "More than 2 File Changes",
    UnfixedReason.CHANGE_PARALLELISM: "Change/Reduce/Remove Parallelism",
    UnfixedReason.BUSINESS_LOGIC: "Change the Business Logic",
    UnfixedReason.ISOLATE_TEST: "Unable to Isolate the Failing Test",
    UnfixedReason.EXTERNAL: "External",
    UnfixedReason.LARGE_REFACTORING: "Large Code Refactoring",
    UnfixedReason.OTHERS: "Others",
    UnfixedReason.DEEP_COPY: "Using Deep Copy",
    UnfixedReason.SINGLETON: "Singleton Pattern",
    UnfixedReason.NONTRIVIAL: "Non-trivial Even for Experts",
}

#: Table 5 frequencies (fractions of the 138 unfixed races).
PAPER_UNFIXED_FREQUENCIES: Dict[UnfixedReason, float] = {
    UnfixedReason.MULTI_FILE: 0.21,
    UnfixedReason.CHANGE_PARALLELISM: 0.19,
    UnfixedReason.BUSINESS_LOGIC: 0.15,
    UnfixedReason.ISOLATE_TEST: 0.10,
    UnfixedReason.EXTERNAL: 0.10,
    UnfixedReason.LARGE_REFACTORING: 0.06,
    UnfixedReason.OTHERS: 0.06,
    UnfixedReason.DEEP_COPY: 0.05,
    UnfixedReason.SINGLETON: 0.04,
    UnfixedReason.NONTRIVIAL: 0.04,
}


def all_categories() -> List[RaceCategory]:
    """Categories in the display order used by Table 3."""
    return [
        RaceCategory.CAPTURE_BY_REFERENCE,
        RaceCategory.MISSING_SYNCHRONIZATION,
        RaceCategory.PARALLEL_TEST_SUITE,
        RaceCategory.LOOP_VARIABLE_CAPTURE,
        RaceCategory.CONCURRENT_MAP_ACCESS,
        RaceCategory.CONCURRENT_SLICE_ACCESS,
        RaceCategory.OTHERS,
    ]


@dataclass
class CategoryDistribution:
    """A category histogram with convenience accessors used in reports."""

    counts: Dict[RaceCategory, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, category: RaceCategory) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(category, 0) / self.total

    def as_rows(self) -> List[tuple[str, int, float]]:
        return [
            (category.display_name, self.counts.get(category, 0), self.fraction(category))
            for category in all_categories()
        ]
