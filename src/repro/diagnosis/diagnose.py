"""Report diagnosis: from a raw race report to a structured :class:`Diagnosis`.

The paper treats race *categorization* as the hinge between detection and
repair: the category drives example retrieval, prompt construction, and which
fix pattern the model imitates.  :class:`RaceDiagnoser` implements that hinge
in one place — it combines the report's own evidence (the racy variable's
description, access kinds, involved files) with a light AST analysis of the
repository (goroutine closures, struct fields, range loops) and produces a
:class:`Diagnosis`: category, access pattern, involved symbols and scopes,
candidate fix patterns, and a confidence score.

The classification rules are ordered from most to least specific; each rule
records the evidence it fired on, so downstream consumers (prompts, feedback,
the CLI) can explain the diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import patterns_for_category
from repro.errors import GoSyntaxError
from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_file
from repro.runtime.harness import GoPackage
from repro.runtime.race_report import RaceReport

#: Standard-library objects whose internal state is thread-unsafe by design
#: (the paper's "Others" category: shared rand sources, hashes, ...).
_LIBRARY_STATE_PREFIXES = ("rand.", "md5.", "sha256.", "sha.", "Time.")


def clean_variable_name(raw: str) -> str:
    """Normalize a report's variable description to a program identifier."""
    if not raw:
        return ""
    name = raw
    for suffix in ("(map)", "(slice header)"):
        name = name.replace(suffix, "")
    name = name.split("(")[0]
    if "." in name:
        name = name.split(".")[-1]
    name = name.strip()
    if name.startswith("map["):
        return ""
    return name


@dataclass
class Diagnosis:
    """Structured interpretation of one race report."""

    category: RaceCategory
    #: ``"write-write"`` or ``"read-write"`` (reads normalized first).
    access_pattern: str = "write-write"
    #: The normalized racy identifier (empty when the report has none).
    racy_variable: str = ""
    #: The report's raw variable description (``"shards(map)"``, ...).
    raw_variable: str = ""
    #: Functions involved in either racing stack (report order).
    symbols: List[str] = field(default_factory=list)
    #: Files involved in either racing stack (the candidate fix scopes).
    scopes: List[str] = field(default_factory=list)
    #: How certain the classifier is (0..1).
    confidence: float = 0.5
    #: What the classification was based on (human-readable).
    evidence: str = ""

    @property
    def candidate_patterns(self) -> List[str]:
        """Fix patterns addressing this category, in detection order."""
        return [p.name for p in patterns_for_category(self.category)]

    def summary(self) -> str:
        """One-line rendering for CLI output and failure feedback."""
        patterns = ", ".join(self.candidate_patterns) or "none"
        return (
            f"category={self.category.value} ({self.access_pattern}, "
            f"confidence {self.confidence:.2f}); evidence: {self.evidence}; "
            f"candidate patterns: {patterns}"
        )


class RaceDiagnoser:
    """Classify race reports against one code repository."""

    def __init__(self, package: GoPackage):
        self.package = package
        self._parsed: Dict[str, Optional[ast.File]] = {}

    # ------------------------------------------------------------------

    def diagnose(self, report: RaceReport) -> Diagnosis:
        """Produce exactly one :class:`Diagnosis` for ``report``."""
        raw = report.variable or ""
        cleaned = clean_variable_name(raw)
        scopes = [f for f in report.involved_files() if self.package.file(f) is not None]
        category, confidence, evidence = self._classify(report, raw, cleaned, scopes)
        return Diagnosis(
            category=category,
            access_pattern=_access_pattern(report),
            racy_variable=cleaned,
            raw_variable=raw,
            symbols=report.involved_functions(),
            scopes=scopes,
            confidence=confidence,
            evidence=evidence,
        )

    # ------------------------------------------------------------------

    def _classify(
        self, report: RaceReport, raw: str, cleaned: str, scopes: List[str]
    ) -> Tuple[RaceCategory, float, str]:
        parsed = [p for p in (self._parse(name) for name in scopes) if p is not None]

        # 1. wg.Add issued inside the goroutine body: the canonical
        # mis-synchronization of Listing 6 — it leaves the parent's continuation
        # unordered after the children, whatever datum the race lands on.
        if any(self._has_add_inside_goroutine(file) for file in parsed):
            return (
                RaceCategory.MISSING_SYNCHRONIZATION,
                0.9,
                "wg.Add is issued inside the goroutine it accounts for",
            )
        # 2. Parallel subtests: a test file in the racing stacks calls t.Parallel.
        if self._test_scope_is_parallel(scopes):
            return (
                RaceCategory.PARALLEL_TEST_SUITE,
                0.9,
                "a test file on the racing stacks runs parallel subtests",
            )
        # 3/4. The detector marks map and slice-header conflicts explicitly.
        if "(map)" in raw:
            return RaceCategory.CONCURRENT_MAP_ACCESS, 0.95, "the conflicting accesses target a map"
        if "(slice header)" in raw or self._is_slice_field(parsed, cleaned):
            return (
                RaceCategory.CONCURRENT_SLICE_ACCESS,
                0.9,
                "the conflicting accesses target a slice",
            )
        # 5. Thread-unsafe library state (shared rand sources, hashes, ...).
        if raw.startswith(_LIBRARY_STATE_PREFIXES):
            return (
                RaceCategory.OTHERS,
                0.85,
                "the race is on thread-unsafe standard-library state",
            )
        # 6a. A mutable value held in a ``sync.Map`` whose field is written
        # without value-level synchronization: the map's own operations are
        # safe, but the entries it hands out are not (sync.Map misuse).
        if cleaned and any(
            self._has_syncmap_field(file) and self._writes_field_of_syncmap_value(file, cleaned)
            for file in parsed
        ):
            return (
                RaceCategory.CONCURRENT_MAP_ACCESS,
                0.9,
                f"`{cleaned}` belongs to a value held in a sync.Map and is mutated "
                "without value-level synchronization",
            )
        # 6b. Double-checked locking: a field nil-checked outside the mutex
        # that guards its initialization.
        if cleaned and "." in raw:
            type_name = raw.split(".")[0]
            if any(self._double_checked_field(file, type_name, cleaned) for file in parsed):
                return (
                    RaceCategory.MISSING_SYNCHRONIZATION,
                    0.9,
                    f"`{cleaned}` is initialized under a lock but nil-checked outside it "
                    "(double-checked locking)",
                )
        # 6. A loop variable captured by goroutines spawned in the loop body.
        if cleaned and any(self._is_captured_loop_var(file, cleaned) for file in parsed):
            return (
                RaceCategory.LOOP_VARIABLE_CAPTURE,
                0.9,
                f"`{cleaned}` is a loop variable captured by goroutines in the loop body",
            )
        # 7. A variable of the enclosing function written inside a goroutine
        # closure (capture by reference).
        if cleaned and any(self._is_captured_write(file, cleaned) for file in parsed):
            return (
                RaceCategory.CAPTURE_BY_REFERENCE,
                0.85,
                f"`{cleaned}` is captured by reference and written inside a goroutine",
            )
        # 8. A struct field mutated through its methods without synchronization.
        if cleaned and "." in raw:
            type_name = raw.split(".")[0]
            if any(self._method_writes_field(file, type_name, cleaned) for file in parsed):
                return (
                    RaceCategory.MISSING_SYNCHRONIZATION,
                    0.8,
                    f"methods of `{type_name}` mutate `{cleaned}` without synchronization",
                )
            # 9. A struct mutated through a shared pointer parameter: the
            # callee should have copied the value ("Others" in Table 3).
            if any(self._function_writes_param_field(file, cleaned) for file in parsed):
                return (
                    RaceCategory.OTHERS,
                    0.7,
                    f"`{cleaned}` is mutated through a struct pointer shared across calls",
                )
        # 10. Package-level state written by involved functions.
        if cleaned and any(self._is_package_level_var(file, cleaned) for file in parsed):
            return (
                RaceCategory.MISSING_SYNCHRONIZATION,
                0.7,
                f"package-level `{cleaned}` is written without synchronization",
            )
        return (
            RaceCategory.MISSING_SYNCHRONIZATION,
            0.4,
            "shared state accessed without an ordering edge (no more specific shape found)",
        )

    # -- parsing --------------------------------------------------------------------

    def _parse(self, file_name: str) -> Optional[ast.File]:
        if file_name not in self._parsed:
            file = self.package.file(file_name)
            if file is None:
                self._parsed[file_name] = None
            else:
                try:
                    self._parsed[file_name] = parse_file(file.source, file_name)
                except GoSyntaxError:
                    self._parsed[file_name] = None
        return self._parsed[file_name]

    # -- rule predicates ------------------------------------------------------------

    @staticmethod
    def _has_add_inside_goroutine(file: ast.File) -> bool:
        for node in ast.walk(file):
            if isinstance(node, ast.GoStmt) and isinstance(node.call.fun, ast.FuncLit):
                for inner in ast.walk(node.call.fun.body):
                    if isinstance(inner, ast.CallExpr) and isinstance(inner.fun, ast.SelectorExpr) \
                            and inner.fun.sel == "Add":
                        return True
        return False

    def _test_scope_is_parallel(self, scopes: List[str]) -> bool:
        for name in scopes:
            file = self.package.file(name)
            if file is not None and file.is_test_file() and "t.Parallel()" in file.source:
                return True
        return False

    @staticmethod
    def _is_slice_field(parsed: List[ast.File], cleaned: str) -> bool:
        if not cleaned:
            return False
        for file in parsed:
            for spec in file.type_decls():
                if isinstance(spec.type_, ast.StructType):
                    for struct_field in spec.type_.fields:
                        if cleaned in struct_field.names and isinstance(
                            struct_field.type_, ast.ArrayType
                        ):
                            return True
        return False

    @staticmethod
    def _is_captured_loop_var(file: ast.File, cleaned: str) -> bool:
        for node in ast.walk(file):
            if not isinstance(node, ast.RangeStmt):
                continue
            loop_vars = {
                expr.name
                for expr in (node.key, node.value)
                if isinstance(expr, ast.Ident) and expr.name != "_"
            }
            if cleaned not in loop_vars:
                continue
            for inner in ast.walk(node.body):
                if isinstance(inner, ast.GoStmt) and isinstance(inner.call.fun, ast.FuncLit):
                    closure = inner.call.fun
                    params = {n for f in closure.type_.params for n in f.names}
                    args = {a.name for a in inner.call.args if isinstance(a, ast.Ident)}
                    if cleaned in params or cleaned in args:
                        continue
                    if _references(closure.body, cleaned):
                        return True
        return False

    @staticmethod
    def _is_captured_write(file: ast.File, cleaned: str) -> bool:
        """A closure of a goroutine-spawning function writes ``cleaned`` (a
        variable of the enclosing function).  Closures launched indirectly
        (``run := func() {...}; go run()``) count the same as ``go func()``."""
        for decl in file.func_decls():
            if decl.body is None:
                continue
            if not any(isinstance(n, ast.GoStmt) for n in ast.walk(decl.body)):
                continue
            declared = _declared_names(decl)
            for node in ast.walk(decl.body):
                if not isinstance(node, ast.FuncLit):
                    continue
                for inner in ast.walk(node.body):
                    targets: List[ast.Expr] = []
                    if isinstance(inner, ast.AssignStmt) and inner.tok != ":=":
                        targets = inner.lhs
                    elif isinstance(inner, ast.IncDecStmt):
                        targets = [inner.x]
                    for target in targets:
                        base = ast.base_name(target)
                        if base not in declared:
                            continue
                        if isinstance(target, ast.Ident) and target.name == cleaned:
                            return True
                        if isinstance(target, ast.SelectorExpr) and target.sel == cleaned:
                            return True
        return False

    @staticmethod
    def _method_writes_field(file: ast.File, type_name: str, cleaned: str) -> bool:
        for decl in file.func_decls():
            if decl.recv is None or decl.body is None:
                continue
            recv_type = decl.recv.type_
            if isinstance(recv_type, ast.StarExpr):
                recv_type = recv_type.x
            if not (isinstance(recv_type, ast.Ident) and recv_type.name == type_name):
                continue
            receiver = decl.recv.names[0] if decl.recv.names else ""
            if _writes_selector(decl.body, receiver, cleaned):
                return True
        return False

    @staticmethod
    def _function_writes_param_field(file: ast.File, cleaned: str) -> bool:
        for decl in file.func_decls():
            if decl.recv is not None or decl.body is None:
                continue
            params = {n for f in decl.type_.params for n in f.names}
            for name in params:
                if _writes_selector(decl.body, name, cleaned):
                    return True
        return False

    @staticmethod
    def _has_syncmap_field(file: ast.File) -> bool:
        for spec in file.type_decls():
            if isinstance(spec.type_, ast.StructType):
                for struct_field in spec.type_.fields:
                    type_ = struct_field.type_
                    if isinstance(type_, ast.SelectorExpr) and type_.sel == "Map" \
                            and isinstance(type_.x, ast.Ident) and type_.x.name == "sync":
                        return True
        return False

    @staticmethod
    def _writes_field_of_syncmap_value(file: ast.File, cleaned: str) -> bool:
        """Some function loads a value out of a map (``Load``/``LoadOrStore``)
        and then writes ``cleaned`` on it (possibly through aliases)."""
        for decl in file.func_decls():
            if decl.body is None:
                continue
            loaded: set = set()
            for node in ast.walk(decl.body):
                if not (isinstance(node, ast.AssignStmt) and node.tok == ":="):
                    continue
                from_load = any(
                    isinstance(inner, ast.CallExpr)
                    and isinstance(inner.fun, ast.SelectorExpr)
                    and inner.fun.sel in ("Load", "LoadOrStore")
                    for value in node.rhs
                    for inner in ast.walk(value)
                )
                aliases = any(
                    isinstance(inner, ast.Ident) and inner.name in loaded
                    for value in node.rhs
                    for inner in ast.walk(value)
                )
                if from_load or aliases:
                    for target in node.lhs:
                        if isinstance(target, ast.Ident) and target.name != "_":
                            loaded.add(target.name)
            for name in loaded:
                if _writes_selector(decl.body, name, cleaned):
                    return True
        return False

    @staticmethod
    def _double_checked_field(file: ast.File, type_name: str, cleaned: str) -> bool:
        """A method of ``type_name`` nil-checks ``recv.cleaned`` outside the
        lock and assigns it inside a locked region within that check."""
        for decl in file.func_decls():
            if decl.recv is None or decl.body is None:
                continue
            recv_type = decl.recv.type_
            if isinstance(recv_type, ast.StarExpr):
                recv_type = recv_type.x
            if not (isinstance(recv_type, ast.Ident) and recv_type.name == type_name):
                continue
            receiver = decl.recv.names[0] if decl.recv.names else ""
            for node in ast.walk(decl.body):
                if not isinstance(node, ast.IfStmt):
                    continue
                if not _is_nil_check(node.cond, receiver, cleaned):
                    continue
                has_lock = any(
                    isinstance(inner, ast.CallExpr)
                    and isinstance(inner.fun, ast.SelectorExpr)
                    and inner.fun.sel == "Lock"
                    for inner in ast.walk(node.body)
                )
                if has_lock and _writes_selector(node.body, receiver, cleaned):
                    return True
        return False

    @staticmethod
    def _is_package_level_var(file: ast.File, cleaned: str) -> bool:
        for decl in file.decls:
            if isinstance(decl, ast.GenDecl) and decl.tok == "var":
                for spec in decl.specs:
                    if isinstance(spec, ast.ValueSpec) and cleaned in spec.names:
                        return True
        return False


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _is_nil_check(cond: ast.Expr, receiver: str, field_name: str) -> bool:
    return (
        isinstance(cond, ast.BinaryExpr)
        and cond.op == "=="
        and isinstance(cond.x, ast.SelectorExpr)
        and cond.x.sel == field_name
        and ast.base_name(cond.x) == receiver
        and isinstance(cond.y, ast.Ident)
        and cond.y.name == "nil"
    )


def _access_pattern(report: RaceReport) -> str:
    kinds = sorted(
        ("write" if trace.is_write else "read") for trace in (report.first, report.second)
    )
    return "-".join(kinds)


def _references(node: ast.Node, name: str) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Ident) and inner.name == name:
            return True
    return False


def _declared_names(decl: ast.FuncDecl) -> set:
    names = set()
    for param in decl.type_.params:
        names.update(param.names)
    for node in ast.walk(decl.body):
        if isinstance(node, ast.AssignStmt) and node.tok == ":=":
            for target in node.lhs:
                if isinstance(target, ast.Ident):
                    names.add(target.name)
        elif isinstance(node, ast.DeclStmt):
            for spec in node.decl.specs:
                if isinstance(spec, ast.ValueSpec):
                    names.update(spec.names)
        elif isinstance(node, ast.RangeStmt):
            for expr in (node.key, node.value):
                if isinstance(expr, ast.Ident):
                    names.add(expr.name)
    return names


def _writes_selector(body: ast.BlockStmt, base: str, field_name: str) -> bool:
    if not base:
        return False
    for node in ast.walk(body):
        targets: List[ast.Expr] = []
        if isinstance(node, ast.AssignStmt):
            targets = node.lhs
        elif isinstance(node, ast.IncDecStmt):
            targets = [node.x]
        for target in targets:
            if isinstance(target, ast.SelectorExpr) and target.sel == field_name \
                    and ast.base_name(target) == base:
                return True
    return False
