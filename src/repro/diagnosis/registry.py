"""The pluggable fix-pattern registry.

A :class:`FixPattern` is one concurrency-repair recipe promoted to a
first-class registry entry: it binds a strategy implementation (an AST
transformation living in :mod:`repro.llm.strategies`) to the diagnosis
metadata the rest of the pipeline needs — the race categories it addresses,
its *specificity* (how narrowly it applies, which orders detection so a
generic pattern never shadows a targeted one), and an *example signature*
that recognizes when a retrieved (buggy, fixed) pair demonstrates the
pattern (how RAG "unlocks" it for the model).

Patterns register themselves with the :func:`fix_pattern` class decorator at
strategy-definition site, so adding a new repair scenario is one decorated
class plus a corpus template — no parallel tables to keep in sync.  The
registry is introspectable from the CLI via ``drfix patterns``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.diagnosis.categories import RaceCategory

#: ``(buggy, fixed) -> bool``: does the pair demonstrate this pattern?
ExampleSignature = Callable[[str, str], bool]


@dataclass(frozen=True)
class FixPattern:
    """One registered repair pattern."""

    #: Unique pattern name (also the strategy name recorded in outcomes).
    name: str
    #: The :class:`~repro.llm.strategies.base.FixStrategy` subclass.
    strategy_cls: type
    #: One-line human description (shown by ``drfix patterns`` and Table 4).
    description: str = ""
    #: Race categories this pattern typically repairs.
    categories: Tuple[RaceCategory, ...] = ()
    #: Detection order: higher means more specific, tried earlier.
    specificity: int = 0
    #: Example-inference scan order: lower is checked first.  Signatures are
    #: not mutually exclusive (a fix that introduces a mutex also adds lock
    #: calls), so distinctive signatures must outrank generic ones.
    example_rank: int = 1000
    #: Recognizer for (buggy, fixed) pairs demonstrating this pattern.
    signature: Optional[ExampleSignature] = None

    def make_strategy(self):
        """A fresh strategy instance (callers may cache it)."""
        return self.strategy_cls()


_PATTERNS: Dict[str, FixPattern] = {}
_BUILTINS_LOADED = False


def fix_pattern(
    *,
    categories: Iterable[RaceCategory] = (),
    specificity: int = 0,
    example_rank: int = 1000,
    description: str = "",
    signature: Optional[ExampleSignature] = None,
    name: Optional[str] = None,
):
    """Class decorator registering a strategy class as a :class:`FixPattern`."""

    def register(cls):
        pattern = FixPattern(
            name=name or cls.name,
            strategy_cls=cls,
            description=description or _first_doc_line(cls),
            categories=tuple(categories),
            specificity=specificity,
            example_rank=example_rank,
            signature=signature,
        )
        existing = _PATTERNS.get(pattern.name)
        if existing is not None and existing.strategy_cls is not cls:
            raise ValueError(
                f"fix pattern {pattern.name!r} is already registered "
                f"by {existing.strategy_cls.__name__}"
            )
        _PATTERNS[pattern.name] = pattern
        return cls

    return register


def _first_doc_line(cls) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _ensure_loaded() -> None:
    """Import the built-in strategy modules so their decorators register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.llm.strategies  # noqa: F401  (side effect: registration)


def all_patterns() -> List[FixPattern]:
    """Every registered pattern in detection order (most specific first)."""
    _ensure_loaded()
    return sorted(_PATTERNS.values(), key=lambda p: (-p.specificity, p.name))


def pattern_names() -> List[str]:
    """Pattern names in detection order."""
    return [pattern.name for pattern in all_patterns()]


def get_pattern(pattern_name: str) -> FixPattern:
    _ensure_loaded()
    try:
        return _PATTERNS[pattern_name]
    except KeyError:
        raise KeyError(
            f"unknown fix pattern {pattern_name!r} (available: {sorted(_PATTERNS)})"
        ) from None


def patterns_for_category(category: RaceCategory) -> List[FixPattern]:
    """Patterns addressing ``category``, in detection order."""
    return [p for p in all_patterns() if category in p.categories]


def category_from_value(value: str) -> Optional[RaceCategory]:
    """Parse a category's wire value (``"concurrent-map-access"``); None if unknown."""
    for category in RaceCategory:
        if category.value == value:
            return category
    return None
