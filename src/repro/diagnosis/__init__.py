"""The diagnosis layer: one subsystem between detection and repair.

The source paper treats race *categorization* as the hinge of the whole
pipeline — the category drives example retrieval, prompt construction, and
which fix pattern the model imitates.  This package owns that hinge:

* :mod:`repro.diagnosis.categories` — the race-category taxonomy (Tables 3/5)
  and the paper's reference frequency distributions;
* :mod:`repro.diagnosis.diagnose` — :class:`RaceDiagnoser`, which converts a
  raw :class:`~repro.runtime.race_report.RaceReport` into a structured
  :class:`Diagnosis` (category, access pattern, involved symbols/scopes,
  confidence, candidate fix patterns);
* :mod:`repro.diagnosis.registry` — the pluggable :class:`FixPattern`
  registry: strategies register themselves with the :func:`fix_pattern`
  decorator, ordered by specificity and introspectable via ``drfix patterns``;
* :mod:`repro.diagnosis.examples` — :func:`infer_pattern_from_example`, the
  registry-driven classification of retrieved (buggy, fixed) pairs.

Adding a new repair scenario is now additive: one ``@fix_pattern``-decorated
strategy class plus one corpus template — detection ordering, example
inference, prompt hints, CLI introspection, and per-category evaluation all
follow from the registration.
"""

from repro.diagnosis.categories import (
    PAPER_FIX_FREQUENCIES,
    PAPER_UNFIXED_FREQUENCIES,
    PAPER_VECTORDB_FREQUENCIES,
    CategoryDistribution,
    RaceCategory,
    UnfixedReason,
    all_categories,
)
from repro.diagnosis.diagnose import Diagnosis, RaceDiagnoser, clean_variable_name
from repro.diagnosis.examples import infer_pattern_from_example
from repro.diagnosis.registry import (
    FixPattern,
    all_patterns,
    category_from_value,
    fix_pattern,
    get_pattern,
    pattern_names,
    patterns_for_category,
)

__all__ = [
    "RaceCategory",
    "UnfixedReason",
    "CategoryDistribution",
    "all_categories",
    "PAPER_FIX_FREQUENCIES",
    "PAPER_VECTORDB_FREQUENCIES",
    "PAPER_UNFIXED_FREQUENCIES",
    "Diagnosis",
    "RaceDiagnoser",
    "clean_variable_name",
    "infer_pattern_from_example",
    "FixPattern",
    "fix_pattern",
    "all_patterns",
    "get_pattern",
    "pattern_names",
    "patterns_for_category",
    "category_from_value",
]
