"""Example-pair diagnosis: which repair pattern does a (buggy, fixed) pair
demonstrate?

This is the registry-driven successor of the inference that used to live in
``repro.llm.strategies.infer_strategy_from_example``.  Each registered
:class:`~repro.diagnosis.registry.FixPattern` carries a textual *signature*
predicate; :func:`infer_pattern_from_example` scans the signatures in each
pattern's ``example_rank`` order and returns the first match.  The
classification looks only at the example text — exactly the signal a real
model would imitate.

The predicate helpers below are deliberately plain text/line analyses (no AST)
so they behave identically on function- and file-scoped snippets.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.diagnosis.registry import all_patterns


def infer_pattern_from_example(buggy: str, fixed: str) -> Optional[str]:
    """Identify which repair pattern a (buggy, fixed) example demonstrates.

    Returns a pattern name or ``None`` when the example does not clearly
    demonstrate a registered pattern.
    """
    if not buggy.strip() or not fixed.strip():
        return None
    ranked = sorted(all_patterns(), key=lambda p: (p.example_rank, p.name))
    for pattern in ranked:
        if pattern.signature is not None and pattern.signature(buggy, fixed):
            return pattern.name
    return None


# ---------------------------------------------------------------------------
# Signature predicates (referenced by the @fix_pattern registrations)
# ---------------------------------------------------------------------------


def _count(text: str, needle: str) -> int:
    return text.count(needle)


def added_sync_map(buggy: str, fixed: str) -> bool:
    """The fix introduces ``sync.Map`` (Store/Range conversions follow)."""
    return _count(fixed, "sync.Map") > _count(buggy, "sync.Map")


def added_error_channel(buggy: str, fixed: str) -> bool:
    """A new channel of error appears."""
    return _count(fixed, "chan error") > _count(buggy, "chan error")


def isolated_parallel_fixture(buggy: str, fixed: str) -> bool:
    """``t.Parallel`` present and a shared fixture is now constructed per case."""
    return "t.Parallel()" in fixed and _removed_shared_fixture(buggy, fixed)


def added_fresh_rand_source(buggy: str, fixed: str) -> bool:
    """A fresh ``rand.NewSource`` per request replaces a shared source."""
    return _count(fixed, "rand.NewSource(") > _count(buggy, "rand.NewSource(")


def added_mutex_decl(buggy: str, fixed: str) -> bool:
    """A new ``sync.Mutex`` declaration appears."""
    return _count(fixed, "sync.Mutex") > _count(buggy, "sync.Mutex")


def added_lock_calls(buggy: str, fixed: str) -> bool:
    """New ``.Lock()`` calls complete an existing locking discipline."""
    return _count(fixed, ".Lock()") > _count(buggy, ".Lock()")


def added_atomic_calls(buggy: str, fixed: str) -> bool:
    """The fix rewrites plain accesses to ``sync/atomic`` operations."""
    return _count(fixed, "atomic.") > _count(buggy, "atomic.")


def added_read_locking(buggy: str, fixed: str) -> bool:
    """New ``.RLock()`` calls guard a previously bare read path."""
    return _count(fixed, ".RLock()") > _count(buggy, ".RLock()")


def added_once_guard(buggy: str, fixed: str) -> bool:
    """A ``sync.Once`` now guards the initialization."""
    return _count(fixed, "sync.Once") > _count(buggy, "sync.Once")


def moved_wg_add(buggy: str, fixed: str) -> bool:
    """``wg.Add`` moved from inside the goroutine body to before the ``go``."""
    if ".Add(" not in buggy or ".Add(" not in fixed:
        return False

    def add_inside_go(text: str) -> bool:
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if ".Add(" in line:
                context = "\n".join(lines[max(0, index - 3):index])
                if "go func" in context:
                    return True
        return False

    return add_inside_go(buggy) and not add_inside_go(fixed)


def added_loop_self_copy(buggy: str, fixed: str) -> bool:
    """An ``x := x`` privatization of a loop variable appears."""
    return _added_self_copy(buggy, fixed) == "loop"


def added_deref_copy(buggy: str, fixed: str) -> bool:
    """A ``new... := *param`` dereference copy appears."""
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped and stripped not in buggy:
            _, _, right = stripped.partition(":=")
            if right.strip().startswith("*"):
                return True
    return False


def privatized_local_copy(buggy: str, fixed: str) -> bool:
    """A ``localX := x`` copy or a goroutine parameter privatizes the value."""
    return _added_self_copy(buggy, fixed) == "local" or _added_goroutine_param(buggy, fixed)


def assignment_became_declaration(buggy: str, fixed: str) -> bool:
    """An ``=`` on a shared variable became ``:=`` inside a closure."""
    buggy_lines = {line.strip() for line in buggy.splitlines()}
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped:
            as_assignment = stripped.replace(":=", "=", 1)
            if as_assignment in buggy_lines and stripped not in buggy_lines:
                return True
    return False


def added_bulk_wg_add(buggy: str, fixed: str) -> bool:
    """A batch-sized ``wg.Add(n)`` (identifier argument) appears in the fix."""
    bulk_add = re.compile(r"\.Add\(([A-Za-z_]\w*)\)")
    return bool(set(bulk_add.findall(fixed)) - set(bulk_add.findall(buggy)))


def hoisted_nil_check_under_lock(buggy: str, fixed: str) -> bool:
    """A nil check was hoisted under the lock that guards the initialization
    (double-checked locking collapse; not a ``sync.Once`` conversion)."""
    return (
        ".Lock()" in fixed
        and _count(fixed, "== nil") < _count(buggy, "== nil")
        and _count(fixed, "sync.Once") == _count(buggy, "sync.Once")
    )


def locked_syncmap_value(buggy: str, fixed: str) -> bool:
    """The ``sync.Map`` stays, but its entry values gain a mutex guard."""
    return "sync.Map" in buggy and added_mutex_decl(buggy, fixed) and added_lock_calls(buggy, fixed)


def closed_channel_signal(buggy: str, fixed: str) -> bool:
    """A boolean flag became a channel closed to signal completion."""
    return (
        _count(fixed, "close(") > _count(buggy, "close(")
        and _count(fixed, "make(chan ") > _count(buggy, "make(chan ")
    )


# -- shared helpers ------------------------------------------------------------------


def _removed_shared_fixture(buggy: str, fixed: str) -> bool:
    """A fixture shared across subtests either disappeared or moved inside the
    ``t.Run`` closure (after ``t.Parallel()``)."""
    fixed_lines = [line.strip() for line in fixed.splitlines()]
    buggy_lines = [line.strip() for line in buggy.splitlines()]

    def first_index(lines: list[str], needle: str) -> int:
        for index, line in enumerate(lines):
            if needle in line:
                return index
        return len(lines)

    buggy_run = first_index(buggy_lines, "t.Run(")
    fixed_parallel = first_index(fixed_lines, "t.Parallel()")
    for index, stripped in enumerate(buggy_lines):
        if ":=" not in stripped or index >= buggy_run:
            continue
        if not (".New(" in stripped or "New(" in stripped or "&" in stripped):
            continue
        name = stripped.split(":=")[0].strip()
        if not name or not name.isidentifier():
            continue
        # Shape (a): the shared declaration disappeared entirely.
        if stripped not in fixed_lines and buggy.count(name) > fixed.count(name):
            return True
        # Shape (b): the declaration moved inside the parallel subtest closure.
        if stripped in fixed_lines and fixed_lines.index(stripped) > fixed_parallel < len(fixed_lines):
            return True
    return False


def _added_self_copy(buggy: str, fixed: str) -> Optional[str]:
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped and stripped not in buggy:
            left, _, right = stripped.partition(":=")
            left, right = left.strip(), right.strip()
            if left and left == right:
                return "loop"
            if left.startswith("local") and right and right[0].islower() and right.isidentifier():
                return "local"
    return None


def _added_goroutine_param(buggy: str, fixed: str) -> bool:
    buggy_plain = buggy.count("go func() {") + buggy.count("}()")
    fixed_param = 0
    for line in fixed.splitlines():
        stripped = line.strip()
        if stripped.startswith("go func(") and not stripped.startswith("go func()"):
            if "go func(" + stripped[len("go func("):] not in buggy:
                fixed_param += 1
    return fixed_param > 0 and buggy_plain > 0
