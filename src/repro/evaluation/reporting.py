"""Plain-text and Markdown table rendering for the experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A rendered experiment result: what the paper reported vs what we measured."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: str = ""

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        return format_table(self)

    def render_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        if self.paper_reference:
            lines.append(f"*Reproduces {self.paper_reference}.*")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"_{note}_")
        return "\n".join(lines) + "\n"


def format_table(table: Table) -> str:
    """Render a table with aligned columns (monospace friendly)."""
    widths = [len(header) for header in table.headers]
    for row in table.rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [
            str(cell).ljust(widths[index]) for index, cell in enumerate(cells)
        ]
        return "  " + " | ".join(padded)

    lines = [table.title]
    if table.paper_reference:
        lines.append(f"  (reproduces {table.paper_reference})")
    lines.append(render_row(table.headers))
    lines.append("  " + "-+-".join("-" * width for width in widths))
    for row in table.rows:
        lines.append(render_row(row))
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_report(tables: Sequence[Table], title: str = "Dr.Fix reproduction report") -> str:
    """Render several tables into one report document."""
    parts = [title, "=" * len(title), ""]
    for table in tables:
        parts.append(table.render())
        parts.append("")
    return "\n".join(parts)
