"""The RQ4 developer survey (Table 6), regenerated from reviewer outcomes.

The paper surveyed 21 developers about their Go experience, concurrency
familiarity, comfort fixing races, the quality/complexity of Dr.Fix's fixes,
and the time saved.  Those are human-subject results; the reproduction keeps
the harness — a survey whose quality/complexity/time-saved answers are derived
from the measured run (acceptance rate, patch sizes, pipeline duration versus
the paper's 11-day baseline) and whose demographic rows use the paper's
published distribution so the table renders in the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.evaluation.metrics import mean, stddev
from repro.evaluation.runner import EvaluationRun

#: Demographic distributions published in Table 6 (counts out of 21 developers).
GO_EXPERIENCE = {
    "Less than 1 year": 5,
    "1 to 3 years": 9,
    "3 to 5 years": 3,
    "More than 5 years": 4,
}
CONCURRENCY_FAMILIARITY = {"Somewhat Familiar": 12, "Very Familiar": 9}
COMFORT_FIXING = {
    "Not Comfortable at All": 1,
    "Slightly Comfortable but Need Help": 14,
    "Very Comfortable and Do Not Need Help": 6,
}
TIME_SAVED = {
    "Up to 1 day": 14,
    "1 to 2 days": 4,
    "2 to 4 days": 2,
    "1 to 2 weeks": 1,
}

PAPER_QUALITY_SCORE = 3.38
PAPER_COMPLEXITY_SCORE = 3.00


@dataclass
class SurveyResult:
    """The regenerated Table 6."""

    respondents: int
    go_experience: Dict[str, int]
    concurrency_familiarity: Dict[str, int]
    comfort_fixing: Dict[str, int]
    time_saved: Dict[str, int]
    quality_score: float
    quality_stddev: float
    complexity_score: float
    complexity_stddev: float
    satisfaction_percent: float
    notes: List[str] = field(default_factory=list)


def run_survey(run: EvaluationRun, respondents: int = 21) -> SurveyResult:
    """Derive the survey's measurable rows from an evaluation run."""
    fixed = run.fixed_results()
    # Quality: reviewers score accepted patches higher than rejected ones.
    quality_samples: List[float] = []
    complexity_samples: List[float] = []
    for result in fixed:
        accepted = result.accepted
        base = 4.0 if accepted else 2.0
        if result.review is not None and result.review.requires_refinement:
            base -= 0.5
        quality_samples.append(base)
        loc = max(1, result.outcome.lines_changed)
        # Complexity on a 1..5 scale from the patch size (5 ≈ 40+ changed lines).
        complexity_samples.append(min(5.0, 1.0 + loc / 10.0))
    quality = mean(quality_samples) if quality_samples else 0.0
    complexity = mean(complexity_samples) if complexity_samples else 0.0
    satisfaction = 100.0 * quality / 5.0 if quality else 0.0
    return SurveyResult(
        respondents=respondents,
        go_experience=dict(GO_EXPERIENCE),
        concurrency_familiarity=dict(CONCURRENCY_FAMILIARITY),
        comfort_fixing=dict(COMFORT_FIXING),
        time_saved=dict(TIME_SAVED),
        quality_score=quality,
        quality_stddev=stddev(quality_samples),
        complexity_score=complexity,
        complexity_stddev=stddev(complexity_samples),
        satisfaction_percent=satisfaction,
        notes=[
            "demographic rows reuse the paper's published distribution (human-subject data)",
            "quality/complexity/satisfaction are derived from the measured run",
        ],
    )
