"""Run the Dr.Fix pipeline over an evaluation split and collect per-case results.

The runner is the evaluation engine's hot path.  Three properties make it
scale without changing any number in the paper's tables:

* **pluggable execution** — cases dispatch through a
  :class:`~repro.evaluation.executor.CaseExecutor` (serial, thread-pool, or
  process-pool; worker count from an argument, ``DrFixConfig.jobs``, or the
  ``DRFIX_JOBS`` environment variable);
* **determinism** — results are collected in submission order and every case's
  randomness is a pure function of (configuration, case), so a ``--jobs 4``
  run is bit-identical to a serial one;
* **persistent caching** — when a :class:`~repro.evaluation.store.RunStore` is
  attached, finished :class:`CaseResult`s are written to disk keyed by
  (case id, configuration fingerprint) and reused across arms, processes, and
  sessions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.core.config import DrFixConfig
from repro.core.database import ExampleDatabase
from repro.core.pipeline import DrFix, FixOutcome
from repro.core.review import ReviewDecision, ReviewerModel
from repro.corpus.dataset import Dataset
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.ground_truth import RaceCase
from repro.evaluation.executor import CaseExecutor, ExecutorKind, derive_case_seed
from repro.evaluation.metrics import FixRate
from repro.evaluation.store import RunStore, config_fingerprint, corpus_fingerprint


@dataclass
class CaseResult:
    """The pipeline's outcome for one evaluation case."""

    case: RaceCase
    outcome: FixOutcome
    review: Optional[ReviewDecision] = None
    reproduced: bool = True

    @property
    def fixed(self) -> bool:
        return self.outcome.fixed

    @property
    def accepted(self) -> bool:
        return self.fixed and self.review is not None and self.review.accepted


@dataclass
class EvaluationRun:
    """All case results for one configuration arm."""

    label: str
    config: DrFixConfig
    results: List[CaseResult] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: How many results came from the run store vs were computed this run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Backend description, e.g. ``serial`` or ``process[4]``.
    executor_label: str = "serial"

    def fix_rate(self) -> FixRate:
        return FixRate(
            fixed=sum(1 for r in self.results if r.fixed),
            total=len(self.results),
            label=self.label,
        )

    def acceptance_rate(self) -> FixRate:
        fixed = [r for r in self.results if r.fixed]
        return FixRate(
            fixed=sum(1 for r in fixed if r.accepted),
            total=len(fixed),
            label=f"{self.label} (accepted)",
        )

    def fixed_results(self) -> List[CaseResult]:
        return [r for r in self.results if r.fixed]

    def unfixed_results(self) -> List[CaseResult]:
        return [r for r in self.results if not r.fixed]


def evaluate_single_case(
    case: RaceCase,
    config: DrFixConfig,
    database: Optional[ExampleDatabase],
    reviewer: Optional[ReviewerModel] = None,
) -> CaseResult:
    """Evaluate one case: detect, fix, review.

    Module-level (and with picklable arguments) so it can be shipped to
    process-pool workers.  With ``config.per_case_seeds`` on, the case's
    scheduler/validator seed is derived from (``validator_seed``, case id),
    keeping its randomness independent of execution order.
    """
    reviewer = reviewer if reviewer is not None else ReviewerModel()
    if config.per_case_seeds:
        config = replace(
            config,
            validator_seed=derive_case_seed(config.validator_seed, case.case_id),
        )
    pipeline = DrFix(case.package, config=config, database=database)
    outcome = pipeline.fix_case(case)
    review = None
    if outcome.fixed:
        review = reviewer.review(case, outcome.strategy, outcome.lines_changed)
    return CaseResult(
        case=case,
        outcome=outcome,
        review=review,
        reproduced=bool(outcome.bug_hash),
    )


def _evaluate_for_pool(config: DrFixConfig, database: Optional[ExampleDatabase],
                       reviewer: ReviewerModel, case: RaceCase) -> CaseResult:
    """Positional-argument shim: ``partial`` of this is pickled once per chunk."""
    return evaluate_single_case(case, config, database, reviewer)


class EvaluationRunner:
    """Run one configuration over a list of cases."""

    def __init__(
        self,
        config: DrFixConfig,
        database: Optional[ExampleDatabase],
        reviewer: Optional[ReviewerModel] = None,
        jobs: Optional[int] = None,
        executor: "ExecutorKind | str | None" = None,
        store: Optional[RunStore] = None,
    ):
        self.config = config
        self.database = database
        self.reviewer = reviewer if reviewer is not None else ReviewerModel()
        self.executor = CaseExecutor(
            kind=executor, jobs=jobs if jobs is not None else config.jobs
        )
        self.store = store

    def run(self, cases: Sequence[RaceCase], label: str = "") -> EvaluationRun:
        start = time.time()
        cases = list(cases)
        run = EvaluationRun(
            label=label or self.config.model,
            config=self.config,
            executor_label=self.executor.describe(),
        )

        results: List[Optional[CaseResult]] = [None] * len(cases)
        pending: List[int] = list(range(len(cases)))
        fingerprint = ""
        if self.store is not None:
            fingerprint = config_fingerprint(self.config)
            pending = []
            for index, case in enumerate(cases):
                cached = self.store.load(case, fingerprint)
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)

        if pending:
            worker = partial(
                _evaluate_for_pool, self.config, self.database, self.reviewer
            )
            computed = self.executor.map(worker, [cases[i] for i in pending])
            for index, result in zip(pending, computed):
                results[index] = result
                if self.store is not None:
                    self.store.save(result, fingerprint)

        run.results = [r for r in results if r is not None]
        run.cache_misses = len(pending)
        run.cache_hits = len(cases) - len(pending)
        run.duration_seconds = time.time() - start
        return run


class ExperimentContext:
    """Shared state for the experiment suite: one corpus, several configurations.

    The context builds the corpus and both example databases (skeleton-keyed
    and raw-text-keyed) once, then lets individual experiments run whichever
    configuration arms they need.  Runs are cached twice over: in memory by
    label (so Table 3, RQ1, and the ablations share the same full-configuration
    run within a session) and — when ``cache_dir`` is given — on disk through a
    :class:`~repro.evaluation.store.RunStore` namespaced by the corpus
    fingerprint (so repeated sessions and different tables reuse per-case work
    across processes).
    """

    def __init__(
        self,
        corpus_config: Optional[CorpusConfig] = None,
        base_config: Optional[DrFixConfig] = None,
        jobs: Optional[int] = None,
        executor: "ExecutorKind | str | None" = None,
        cache_dir: Optional[str] = None,
    ):
        self.corpus_config = corpus_config if corpus_config is not None else CorpusConfig()
        self.base_config = (base_config or DrFixConfig(model="gpt-4o")).validated()
        self.jobs = jobs
        self.executor = executor
        self.store: Optional[RunStore] = None
        if cache_dir:
            self.store = RunStore(
                cache_dir, namespace=corpus_fingerprint(self.corpus_config)
            )
        self.dataset: Dataset = CorpusGenerator(self.corpus_config).generate()
        self.skeleton_database = ExampleDatabase.from_cases(
            self.dataset.db_examples, self.base_config
        )
        self.raw_database = ExampleDatabase.from_cases(
            self.dataset.db_examples, self.base_config.with_raw_retrieval()
        )
        self.reviewer = ReviewerModel()
        self._runs: Dict[str, EvaluationRun] = {}

    # ------------------------------------------------------------------

    def database_for(self, config: DrFixConfig) -> Optional[ExampleDatabase]:
        if not config.use_rag:
            return None
        return self.skeleton_database if config.use_skeleton else self.raw_database

    def runner_for(self, config: DrFixConfig) -> EvaluationRunner:
        """An :class:`EvaluationRunner` wired to this context's executor and store."""
        return EvaluationRunner(
            config,
            self.database_for(config),
            self.reviewer,
            jobs=self.jobs,
            executor=self.executor,
            store=self.store,
        )

    def run_arm(self, label: str, config: DrFixConfig,
                cases: Optional[Sequence[RaceCase]] = None) -> EvaluationRun:
        """Run (or reuse) one configuration arm over the evaluation split."""
        if label in self._runs:
            return self._runs[label]
        runner = self.runner_for(config)
        run = runner.run(cases if cases is not None else self.dataset.evaluation, label=label)
        self._runs[label] = run
        return run

    def full_run(self) -> EvaluationRun:
        """The production-like arm: RAG with skeletons, all locations and scopes."""
        return self.run_arm("full", self.base_config)

    def deployment_run(self) -> EvaluationRun:
        """The RQ1 arm: the GPT-4-Turbo deployment configuration."""
        return self.run_arm("deployment", self.base_config.with_model("gpt-4-turbo"))
