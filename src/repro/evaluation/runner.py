"""Run the Dr.Fix pipeline over an evaluation split and collect per-case results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import DrFixConfig
from repro.core.database import ExampleDatabase
from repro.core.pipeline import DrFix, FixOutcome
from repro.core.review import ReviewDecision, ReviewerModel
from repro.corpus.dataset import Dataset
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.ground_truth import RaceCase
from repro.evaluation.metrics import FixRate


@dataclass
class CaseResult:
    """The pipeline's outcome for one evaluation case."""

    case: RaceCase
    outcome: FixOutcome
    review: Optional[ReviewDecision] = None
    reproduced: bool = True

    @property
    def fixed(self) -> bool:
        return self.outcome.fixed

    @property
    def accepted(self) -> bool:
        return self.fixed and self.review is not None and self.review.accepted


@dataclass
class EvaluationRun:
    """All case results for one configuration arm."""

    label: str
    config: DrFixConfig
    results: List[CaseResult] = field(default_factory=list)
    duration_seconds: float = 0.0

    def fix_rate(self) -> FixRate:
        return FixRate(
            fixed=sum(1 for r in self.results if r.fixed),
            total=len(self.results),
            label=self.label,
        )

    def acceptance_rate(self) -> FixRate:
        fixed = [r for r in self.results if r.fixed]
        return FixRate(
            fixed=sum(1 for r in fixed if r.accepted),
            total=len(fixed),
            label=f"{self.label} (accepted)",
        )

    def fixed_results(self) -> List[CaseResult]:
        return [r for r in self.results if r.fixed]

    def unfixed_results(self) -> List[CaseResult]:
        return [r for r in self.results if not r.fixed]


class EvaluationRunner:
    """Run one configuration over a list of cases."""

    def __init__(self, config: DrFixConfig, database: Optional[ExampleDatabase],
                 reviewer: Optional[ReviewerModel] = None):
        self.config = config
        self.database = database
        self.reviewer = reviewer if reviewer is not None else ReviewerModel()

    def run(self, cases: Sequence[RaceCase], label: str = "") -> EvaluationRun:
        start = time.time()
        run = EvaluationRun(label=label or self.config.model, config=self.config)
        for case in cases:
            pipeline = DrFix(case.package, config=self.config, database=self.database)
            outcome = pipeline.fix_case(case)
            review = None
            if outcome.fixed:
                review = self.reviewer.review(case, outcome.strategy, outcome.lines_changed)
            run.results.append(
                CaseResult(
                    case=case,
                    outcome=outcome,
                    review=review,
                    reproduced=bool(outcome.bug_hash),
                )
            )
        run.duration_seconds = time.time() - start
        return run


class ExperimentContext:
    """Shared state for the experiment suite: one corpus, several configurations.

    The context builds the corpus and both example databases (skeleton-keyed
    and raw-text-keyed) once, then lets individual experiments run whichever
    configuration arms they need; runs are cached by label so Table 3, RQ1, and
    the ablations can share the same underlying full-configuration run.
    """

    def __init__(
        self,
        corpus_config: Optional[CorpusConfig] = None,
        base_config: Optional[DrFixConfig] = None,
    ):
        self.corpus_config = corpus_config if corpus_config is not None else CorpusConfig()
        self.base_config = (base_config or DrFixConfig(model="gpt-4o")).validated()
        self.dataset: Dataset = CorpusGenerator(self.corpus_config).generate()
        self.skeleton_database = ExampleDatabase.from_cases(
            self.dataset.db_examples, self.base_config
        )
        self.raw_database = ExampleDatabase.from_cases(
            self.dataset.db_examples, self.base_config.with_raw_retrieval()
        )
        self.reviewer = ReviewerModel()
        self._runs: Dict[str, EvaluationRun] = {}

    # ------------------------------------------------------------------

    def database_for(self, config: DrFixConfig) -> Optional[ExampleDatabase]:
        if not config.use_rag:
            return None
        return self.skeleton_database if config.use_skeleton else self.raw_database

    def run_arm(self, label: str, config: DrFixConfig,
                cases: Optional[Sequence[RaceCase]] = None) -> EvaluationRun:
        """Run (or reuse) one configuration arm over the evaluation split."""
        if label in self._runs:
            return self._runs[label]
        runner = EvaluationRunner(config, self.database_for(config), self.reviewer)
        run = runner.run(cases if cases is not None else self.dataset.evaluation, label=label)
        self._runs[label] = run
        return run

    def full_run(self) -> EvaluationRun:
        """The production-like arm: RAG with skeletons, all locations and scopes."""
        return self.run_arm("full", self.base_config)

    def deployment_run(self) -> EvaluationRun:
        """The RQ1 arm: the GPT-4-Turbo deployment configuration."""
        return self.run_arm("deployment", self.base_config.with_model("gpt-4-turbo"))
