"""One function per table/figure of the paper's evaluation section.

Each function takes the shared :class:`~repro.evaluation.runner.ExperimentContext`
(and/or an :class:`~repro.evaluation.runner.EvaluationRun`) and returns a
:class:`~repro.evaluation.reporting.Table` whose rows put the paper's reported
value next to the value measured on the synthetic corpus.
"""

from __future__ import annotations

from typing import Dict, List

from repro.diagnosis.categories import (
    PAPER_FIX_FREQUENCIES,
    PAPER_UNFIXED_FREQUENCIES,
    PAPER_VECTORDB_FREQUENCIES,
    RaceCategory,
    UnfixedReason,
    all_categories,
)
from repro.diagnosis.registry import all_patterns
from repro.core.config import DrFixConfig
from repro.evaluation.ablation import (
    location_ablation,
    model_ablation,
    rag_ablation,
    scope_ablation,
)
from repro.evaluation.metrics import (
    TABLE7_PERCENTILES,
    category_fix_rates,
    diagnosis_agreement,
    diagnosis_agreement_by_category,
    percentile,
)
from repro.evaluation.reporting import Table
from repro.evaluation.runner import EvaluationRun, ExperimentContext
from repro.evaluation.survey import PAPER_COMPLEXITY_SCORE, PAPER_QUALITY_SCORE, run_survey

#: Paper headline numbers used in several tables.
PAPER_TABLE1 = {
    ("Files", "total"): 382_000,
    ("Files", "product"): 245_000,
    ("Files", "test"): 137_000,
    ("Lines of code", "total"): 97_200_000,
    ("Lines of code", "product"): 59_300_000,
    ("Lines of code", "test"): 37_900_000,
}
PAPER_RQ1 = {
    "identified": 404,
    "fixed": 224,
    "fix_rate": 55.0,
    "accepted": 193,
    "acceptance_rate": 86.0,
    "days_with_drfix": 3.0,
    "days_without": 11.0,
}
PAPER_TABLE7 = {50: (10, 9), 75: (15, 15), 90: (46, 29), 95: (49, 41), 99: (97, 46), 100: (98, 46)}


# ---------------------------------------------------------------------------
# Table 1 — corpus characteristics
# ---------------------------------------------------------------------------


def table1_codebase(context: ExperimentContext) -> Table:
    stats = context.dataset.statistics()
    table = Table(
        title="Table 1 — Salient aspects of the Go codebase (synthetic corpus vs Uber monorepo)",
        headers=["Metric", "Corpus total", "Corpus product", "Corpus test",
                 "Paper total", "Paper product", "Paper test"],
        paper_reference="Table 1",
    )
    for metric, total, product, test in stats.as_rows():
        table.add_row(
            metric, total, product, test,
            PAPER_TABLE1[(metric, "total")], PAPER_TABLE1[(metric, "product")],
            PAPER_TABLE1[(metric, "test")],
        )
    table.add_row("Files w/ concurrency", stats.concurrency_files, "-", "-", 53_000, 28_000, 25_000)
    table.add_row("LoC w/ concurrency", stats.concurrency_lines, "-", "-", 15_600_000, 6_200_000, 9_400_000)
    table.notes.append(
        "the corpus reproduces the structure (files, product/test split, concurrency share), "
        "not the absolute scale, of the proprietary monorepo"
    )
    return table


# ---------------------------------------------------------------------------
# Table 2 — component choices
# ---------------------------------------------------------------------------


def table2_components(config: DrFixConfig | None = None) -> Table:
    config = (config or DrFixConfig()).validated()
    table = Table(
        title="Table 2 — Components used in Dr.Fix (paper choice vs reproduction substitute)",
        headers=["Component", "Paper", "Reproduction"],
        paper_reference="Table 2",
    )
    table.add_row("Data store D", "ChromaDB", "repro.embedding.VectorStore (exact cosine NN)")
    table.add_row("Skeletonization S", "AST-based program slicing",
                  "repro.core.skeleton.Skeletonizer (AST slicing + renaming)")
    table.add_row("Embedding E", "all-MiniLM-L6-v2",
                  f"repro.embedding.CodeEmbedder (feature hashing, d={config.embedder.dimensions})")
    table.add_row("Similarity phi", "Cosine similarity", "Cosine similarity")
    table.add_row("Model M", "ChatGPT 4.0 Turbo / 4o / o1-preview",
                  f"repro.llm.SimulatedLLM profiles (default: {config.model})")
    table.add_row("Extra params H", "Past context and failure info",
                  "validation-failure feedback on the final retry")
    table.add_row("Validator V", "package tests run 1000 times",
                  f"interpreter + race detector, {config.validator_runs} seeded schedules")
    return table


# ---------------------------------------------------------------------------
# Table 3 — category frequencies
# ---------------------------------------------------------------------------


def table3_categories(context: ExperimentContext, run: EvaluationRun | None = None) -> Table:
    run = run if run is not None else context.full_run()
    fixed_counts: Dict[RaceCategory, int] = {}
    for result in run.fixed_results():
        fixed_counts[result.case.category] = fixed_counts.get(result.case.category, 0) + 1
    db_counts: Dict[RaceCategory, int] = {}
    for case in context.dataset.db_examples:
        db_counts[case.category] = db_counts.get(case.category, 0) + 1
    total_fixed = sum(fixed_counts.values()) or 1
    total_db = sum(db_counts.values()) or 1
    table = Table(
        title="Table 3 — Data race categories among fixes and vector-database examples",
        headers=["Category", "Fixes (measured)", "Fixes % (measured)", "Fixes % (paper)",
                 "VectorDB (measured)", "VectorDB % (measured)", "VectorDB % (paper)"],
        paper_reference="Table 3",
    )
    for category in all_categories():
        table.add_row(
            category.display_name,
            fixed_counts.get(category, 0),
            f"{100 * fixed_counts.get(category, 0) / total_fixed:.0f}%",
            f"{100 * PAPER_FIX_FREQUENCIES[category]:.0f}%",
            db_counts.get(category, 0),
            f"{100 * db_counts.get(category, 0) / total_db:.0f}%",
            f"{100 * PAPER_VECTORDB_FREQUENCIES[category]:.1f}%",
        )
    return table


# ---------------------------------------------------------------------------
# Diagnosis layer — per-category fix rates and diagnosis agreement
# ---------------------------------------------------------------------------


def table_diagnosis(context: ExperimentContext, run: EvaluationRun | None = None) -> Table:
    """Per-category validated fix rate plus the diagnosis layer's agreement
    with the corpus ground truth (the categorization accuracy the paper's
    pipeline relies on but never reports directly)."""
    run = run if run is not None else context.full_run()
    fix_rates = category_fix_rates(run.results)
    agreement = diagnosis_agreement_by_category(run.results)
    overall = diagnosis_agreement(run.results)
    table = Table(
        title="Diagnosis layer — per-category fix rate and report-categorization agreement",
        headers=["Category", "Cases", "Fixed", "Fix %", "Diagnosis agreement"],
        paper_reference="Section 4.2 (race categorization)",
    )
    for category in all_categories():
        rate = fix_rates[category]
        agree = agreement[category]
        table.add_row(
            category.display_name,
            rate.total,
            rate.fixed,
            f"{rate.percent:.1f}%",
            f"{agree.percent:.1f}%" if agree.total else "-",
        )
    table.add_row("Overall", overall.total, "-", "-", f"{overall.percent:.1f}%")
    table.notes.append(
        "agreement compares the diagnosis layer's category (derived from the raw race "
        "report and a light AST analysis) against the corpus template's ground truth"
    )
    return table


# ---------------------------------------------------------------------------
# Figures 3 and 4, LCA, models — ablations
# ---------------------------------------------------------------------------


def figure3_rag(context: ExperimentContext) -> Table:
    result = rag_ablation(context)
    table = Table(
        title="Figure 3 — Impact of examples (RAG) and skeleton-based selection",
        headers=["Configuration", "Fixed (measured)", "% (measured)", "% (paper)"],
        paper_reference="Figure 3",
    )
    for arm in result.arms:
        table.add_row(arm.label, str(arm.measured), f"{arm.measured.percent:.1f}%",
                      f"{arm.paper_percent:.0f}%")
    return table


def figure4_scope(context: ExperimentContext) -> Table:
    result = scope_ablation(context)
    table = Table(
        title="Figure 4 — Impact of fix scope and validation-failure feedback",
        headers=["Configuration", "Fixed (measured)", "% (measured)", "% (paper)"],
        paper_reference="Figure 4",
    )
    for arm in result.arms:
        table.add_row(arm.label, str(arm.measured), f"{arm.measured.percent:.1f}%",
                      f"{arm.paper_percent:.0f}%")
    return table


def rq2_lca(context: ExperimentContext) -> Table:
    result = location_ablation(context)
    table = Table(
        title="RQ2.5 — Impact of the LCA fix location",
        headers=["Configuration", "Fixed (measured)", "% (measured)", "% (paper)"],
        paper_reference="Section 5.3 (LCA ablation)",
    )
    for arm in result.arms:
        table.add_row(arm.label, str(arm.measured), f"{arm.measured.percent:.1f}%",
                      f"{arm.paper_percent:.2f}%")
    return table


def rq3_models(context: ExperimentContext) -> Table:
    result = model_ablation(context)
    table = Table(
        title="RQ3 — GPT-4o vs o1-preview",
        headers=["Model", "Fixed (measured)", "% (measured)", "% (paper)"],
        paper_reference="Section 5.4",
    )
    for arm in result.arms:
        table.add_row(arm.label, str(arm.measured), f"{arm.measured.percent:.1f}%",
                      f"{arm.paper_percent:.2f}%")
    return table


# ---------------------------------------------------------------------------
# Table 4 — fixes where RAG was pivotal
# ---------------------------------------------------------------------------


def table4_rag_pivotal(context: ExperimentContext) -> Table:
    """Fixes produced with RAG that the same model misses without RAG."""
    full = context.full_run()
    no_rag = context.run_arm("no-rag", context.base_config.without_rag())
    no_rag_fixed = {r.case.case_id for r in no_rag.fixed_results()}
    pivotal = [r for r in full.fixed_results() if r.case.case_id not in no_rag_fixed]
    by_strategy: Dict[str, int] = {}
    for result in pivotal:
        by_strategy[result.outcome.strategy] = by_strategy.get(result.outcome.strategy, 0) + 1
    # The fix-pattern registry is the single source of pattern descriptions.
    descriptions = {pattern.name: pattern.description for pattern in all_patterns()}
    table = Table(
        title="Table 4 — Fixes where RAG played a pivotal role (fixed with RAG, missed without)",
        headers=["Repair pattern", "Count", "Description"],
        paper_reference="Table 4",
    )
    for strategy, count in sorted(by_strategy.items(), key=lambda kv: -kv[1]):
        table.add_row(descriptions.get(strategy, strategy), count,
                      f"strategy `{strategy}`")
    table.notes.append(f"{len(pivotal)} of {len(full.fixed_results())} fixes required RAG")
    return table


# ---------------------------------------------------------------------------
# Table 5 — categories of unfixed races
# ---------------------------------------------------------------------------


def table5_unfixed(context: ExperimentContext, run: EvaluationRun | None = None) -> Table:
    run = run if run is not None else context.full_run()
    counts: Dict[UnfixedReason, int] = {}
    other_unfixed = 0
    for result in run.unfixed_results():
        reason = result.case.expected_unfixed_reason
        if reason is not None:
            counts[reason] = counts.get(reason, 0) + 1
        else:
            other_unfixed += 1
    total = sum(counts.values()) + other_unfixed or 1
    table = Table(
        title="Table 5 — Categories of data races not fixed by Dr.Fix",
        headers=["Category", "Count (measured)", "% (measured)", "% (paper)"],
        paper_reference="Table 5",
    )
    for reason in UnfixedReason:
        measured = counts.get(reason, 0)
        table.add_row(
            reason.display_name,
            measured,
            f"{100 * measured / total:.0f}%",
            f"{100 * PAPER_UNFIXED_FREQUENCIES[reason]:.0f}%",
        )
    if other_unfixed:
        table.add_row("Fixable cases the pipeline still missed", other_unfixed,
                      f"{100 * other_unfixed / total:.0f}%", "-")
    table.notes.append(
        "unfixed cases are classified by the corpus ground-truth annotation, mirroring the "
        "paper's manual review of developer solutions"
    )
    return table


# ---------------------------------------------------------------------------
# Table 6 — survey
# ---------------------------------------------------------------------------


def table6_survey(context: ExperimentContext, run: EvaluationRun | None = None) -> Table:
    run = run if run is not None else context.full_run()
    survey = run_survey(run)
    table = Table(
        title="Table 6 — Developer survey (measured quality/complexity vs paper)",
        headers=["Metric", "Measured", "Paper"],
        paper_reference="Table 6",
    )
    table.add_row("Respondents", survey.respondents, 21)
    table.add_row("Quality of fixes (1-5)",
                  f"{survey.quality_score:.2f} ± {survey.quality_stddev:.2f}",
                  f"{PAPER_QUALITY_SCORE:.2f} ± 1.24")
    table.add_row("Complexity of races (1-5)",
                  f"{survey.complexity_score:.2f} ± {survey.complexity_stddev:.2f}",
                  f"{PAPER_COMPLEXITY_SCORE:.2f} ± 0.89")
    table.add_row("Satisfaction", f"{survey.satisfaction_percent:.1f}%", "67.6%")
    for label, count in survey.time_saved.items():
        table.add_row(f"Time saved: {label}", f"{count} (paper distribution)", count)
    table.notes.extend(survey.notes)
    return table


# ---------------------------------------------------------------------------
# Table 7 — LoC of fixes, human vs Dr.Fix
# ---------------------------------------------------------------------------


def table7_loc(context: ExperimentContext, run: EvaluationRun | None = None) -> Table:
    run = run if run is not None else context.full_run()
    drfix_locs: List[float] = [float(r.outcome.lines_changed) for r in run.fixed_results()]
    human_locs: List[float] = [float(r.case.human_fix_loc()) for r in run.results]
    db_locs: List[float] = [float(case.human_fix_loc()) for case in context.dataset.db_examples]
    table = Table(
        title="Table 7 — LoC changed per fix: human vs Dr.Fix (measured and paper)",
        headers=["%tile", "Human (measured)", "Dr.Fix (measured)", "VectorDB (measured)",
                 "Human (paper)", "Dr.Fix (paper)"],
        paper_reference="Table 7",
    )
    for q in TABLE7_PERCENTILES:
        paper_human, paper_drfix = PAPER_TABLE7[q]
        table.add_row(
            f"P{q}",
            f"{percentile(human_locs, q):.0f}",
            f"{percentile(drfix_locs, q):.0f}",
            f"{percentile(db_locs, q):.0f}",
            paper_human,
            paper_drfix,
        )
    return table


# ---------------------------------------------------------------------------
# RQ1 — deployment headline
# ---------------------------------------------------------------------------


def rq1_headline(context: ExperimentContext) -> Table:
    run = context.deployment_run()
    fix_rate = run.fix_rate()
    acceptance = run.acceptance_rate()
    durations = [r.outcome.duration_seconds for r in run.fixed_results()]
    table = Table(
        title="RQ1 — Deployment headline (GPT-4-Turbo configuration)",
        headers=["Metric", "Measured", "Paper"],
        paper_reference="Section 5.2",
    )
    table.add_row("Races in evaluation set", fix_rate.total, PAPER_RQ1["identified"])
    table.add_row("Races fixed (validated)", fix_rate.fixed, PAPER_RQ1["fixed"])
    table.add_row("Fix rate", f"{fix_rate.percent:.1f}%", f"{PAPER_RQ1['fix_rate']:.0f}%")
    table.add_row("Fixes accepted by reviewers", acceptance.fixed, PAPER_RQ1["accepted"])
    table.add_row("Acceptance rate", f"{acceptance.percent:.1f}%",
                  f"{PAPER_RQ1['acceptance_rate']:.0f}%")
    if durations:
        table.add_row("Mean pipeline time per fixed race",
                      f"{sum(durations) / len(durations):.2f}s",
                      "13 minutes (6-29 min)")
    table.add_row("Ticket resolution time", "not modelled (requires issue tracker)",
                  "3 days with Dr.Fix vs 11 days without")
    return table


def all_experiment_tables(context: ExperimentContext) -> List[Table]:
    """Every table/figure, in paper order (shares the cached runs)."""
    run = context.full_run()
    return [
        table1_codebase(context),
        table2_components(context.base_config),
        table3_categories(context, run),
        table_diagnosis(context, run),
        figure3_rag(context),
        figure4_scope(context),
        table4_rag_pivotal(context),
        table5_unfixed(context, run),
        table6_survey(context, run),
        table7_loc(context, run),
        rq1_headline(context),
        rq2_lca(context),
        rq3_models(context),
    ]
