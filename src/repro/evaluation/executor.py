"""Pluggable case executors for the evaluation engine.

The evaluation loop ("run the Dr.Fix pipeline over every case of a split") is
embarrassingly parallel: every case builds its own pipeline, every source of
randomness is seeded from the configuration and the case itself, and no state
flows between cases.  This module provides the three execution backends the
:class:`~repro.evaluation.runner.EvaluationRunner` can dispatch through:

* **serial** — a plain loop; the reference behaviour;
* **thread** — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful when
  the LLM client is a real network-backed model (I/O bound);
* **process** — a :class:`~concurrent.futures.ProcessPoolExecutor`; the right
  choice for the CPU-bound simulated pipeline, sidestepping the GIL.

All backends preserve *submission order* in their results (``CaseExecutor.map``
has the ordering contract of the built-in ``map``), and per-case seeding
(:func:`derive_case_seed`) makes each case's randomness a pure function of the
configuration seed and the case id — together these make a parallel run
bit-identical to a serial one.

Worker count resolution (first match wins): an explicit ``jobs`` argument, the
``jobs`` field of :class:`~repro.core.config.DrFixConfig`, the ``DRFIX_JOBS``
environment variable, and finally ``1`` (serial).  ``jobs=0`` means "resolve
from the environment"; negative values mean "one worker per CPU".
"""

from __future__ import annotations

import enum
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "DRFIX_JOBS"
#: Environment variable selecting the backend (``serial``/``thread``/``process``).
EXECUTOR_ENV_VAR = "DRFIX_EXECUTOR"


class ExecutorKind(enum.Enum):
    """Which backend dispatches the per-case work."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count from an explicit value or the environment.

    ``None`` or ``0`` consults ``DRFIX_JOBS`` (defaulting to 1); a negative
    value means one worker per available CPU.
    """
    if jobs is None or jobs == 0:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ConfigError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}")
        if jobs == 0:
            jobs = 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def resolve_kind(kind: "ExecutorKind | str | None" = None,
                 jobs: int = 1) -> ExecutorKind:
    """Resolve the backend: explicit argument, then ``DRFIX_EXECUTOR``, then
    a default of process-pool when ``jobs > 1`` and serial otherwise (the
    in-repo pipeline is CPU-bound pure Python, so threads cannot speed it up;
    pick ``thread`` explicitly when the LLM client is network-backed)."""
    if isinstance(kind, ExecutorKind):
        return kind
    name = (kind or os.environ.get(EXECUTOR_ENV_VAR, "") or "auto").strip().lower()
    if name == "auto":
        return ExecutorKind.PROCESS if jobs > 1 else ExecutorKind.SERIAL
    try:
        return ExecutorKind(name)
    except ValueError:
        valid = ", ".join(k.value for k in ExecutorKind)
        raise ConfigError(f"unknown executor kind {name!r} (expected auto, {valid})")


def derive_case_seed(base_seed: int, case_id: str) -> int:
    """A stable per-case seed: a pure function of the base seed and case id.

    Used when :attr:`repro.core.config.DrFixConfig.per_case_seeds` is on, so
    that each case's scheduler/validator randomness is independent of every
    other case and of the order (or parallelism) in which cases execute.
    """
    digest = hashlib.blake2b(
        f"{base_seed}|{case_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % (2 ** 31)


class CaseExecutor:
    """Map a function over cases through the configured backend.

    The result list is always in submission order, whatever order the workers
    finish in — this is what keeps parallel evaluation runs bit-identical to
    serial ones.
    """

    def __init__(self, kind: "ExecutorKind | str | None" = None,
                 jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self.kind = resolve_kind(kind, self.jobs)
        if self.kind is ExecutorKind.SERIAL:
            self.jobs = 1
        elif self.jobs == 1:
            # A pool with one worker runs the inline loop anyway; say so.
            self.kind = ExecutorKind.SERIAL

    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in submission order."""
        items = list(items)
        if not items or self.jobs == 1 or self.kind is ExecutorKind.SERIAL:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        if self.kind is ExecutorKind.THREAD:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        # Process pool: chunk to amortise pickling of fn's captured state
        # (config + example database) across cases.
        chunksize = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable backend summary (used by ``drfix bench``)."""
        if self.kind is ExecutorKind.SERIAL:
            return "serial"
        return f"{self.kind.value}[{self.jobs}]"


__all__ = [
    "CaseExecutor",
    "ExecutorKind",
    "JOBS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "derive_case_seed",
    "resolve_jobs",
    "resolve_kind",
]
