"""Pluggable case executors for the evaluation engine.

Since the go-test harness and the pipeline's batch validation gained the same
parallel dispatch, the implementation lives in the layer-neutral
:mod:`repro.execution` module (the runtime — layer 1 — must not import the
evaluation engine — layer 5).  This module re-exports the public surface under
its historical name for the evaluation layer and external callers.

See :mod:`repro.execution` for the backend semantics (serial / thread /
process), the ordering guarantees that keep parallel runs bit-identical to
serial ones, and the nested-parallelism budget (``DRFIX_NESTED_BUDGET``) that
keeps pipeline-level and harness-level workers from oversubscribing the
machine.
"""

from __future__ import annotations

from repro.execution import (
    CaseExecutor,
    ExecutorKind,
    EXECUTOR_ENV_VAR,
    JOBS_ENV_VAR,
    NESTED_BUDGET_ENV_VAR,
    derive_case_seed,
    nested_budget,
    resolve_jobs,
    resolve_kind,
)

__all__ = [
    "CaseExecutor",
    "ExecutorKind",
    "JOBS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "NESTED_BUDGET_ENV_VAR",
    "derive_case_seed",
    "nested_budget",
    "resolve_jobs",
    "resolve_kind",
]
