"""Persistent run store: cache per-case pipeline results across processes.

Regenerating the paper's tables runs the same (case, configuration) pairs over
and over — Table 3, RQ1, Figure 4 and the LCA ablation all need the "full"
arm, every benchmark session rebuilds it, and ``drfix evaluate`` recomputes
everything from scratch.  :class:`RunStore` caches each
:class:`~repro.evaluation.runner.CaseResult` as one JSON file keyed by

* a **namespace** (by convention the corpus fingerprint, so corpora of
  different shapes never share entries),
* the **configuration fingerprint** — a stable hash of every result-affecting
  field of :class:`~repro.core.config.DrFixConfig` (execution-only knobs such
  as ``jobs`` are excluded: they change wall-clock, not results),
* the **case id**.

Layout on disk::

    <root>/<namespace>/<config-fingerprint>/<case-id>.json

Entries carry a format version; changing the serialisation bumps
:data:`STORE_VERSION` which changes every fingerprint and cleanly invalidates
old caches.  Writes are atomic (temp file + ``os.replace``) so concurrent
workers never observe a torn entry.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.config import DrFixConfig
from repro.core.patcher import Patch
from repro.core.pipeline import FixAttempt, FixOutcome
from repro.core.review import ReviewDecision
from repro.corpus.ground_truth import RaceCase
from repro.diagnosis import Diagnosis, category_from_value
from repro.fingerprint import EXECUTION_ONLY_FIELDS, corpus_fingerprint
from repro.fingerprint import config_fingerprint as _shared_config_fingerprint
from repro.runtime.harness import GoFile, GoPackage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports store)
    from repro.evaluation.runner import CaseResult

#: Bump when the serialised shape of a cache entry changes.
STORE_VERSION = 2


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
#
# The canonicalisation and digesting live in the layer-neutral
# :mod:`repro.fingerprint` (the service result cache keys by the same
# discipline); the store folds its format version into the config fingerprint
# so a serialisation bump cleanly invalidates old entries.


def config_fingerprint(config: DrFixConfig) -> str:
    """A stable hash of every result-affecting configuration field."""
    return _shared_config_fingerprint(config, version=STORE_VERSION)


# ---------------------------------------------------------------------------
# CaseResult (de)serialisation
# ---------------------------------------------------------------------------


def serialize_case_result(result: "CaseResult") -> Dict[str, Any]:
    """Reduce a :class:`CaseResult` to a JSON-serialisable dict.

    The case itself is *not* stored (the caller re-attaches the live corpus
    case on load); the patch stores only the changed files' sources, with the
    unchanged files reconstructed from the case's racy package.
    """
    outcome = result.outcome
    patch = None
    if outcome.patch is not None:
        patch = {
            "changed_files": list(outcome.patch.changed_files),
            "sources": {
                name: file.source
                for name in outcome.patch.changed_files
                for file in [outcome.patch.package.file(name)]
                if file is not None
            },
        }
    review = None
    if result.review is not None:
        review = {
            "accepted": result.review.accepted,
            "reason": result.review.reason,
            "requires_refinement": result.review.requires_refinement,
        }
    diagnosis = None
    if outcome.diagnosis is not None:
        diagnosis = {
            "category": outcome.diagnosis.category.value,
            "access_pattern": outcome.diagnosis.access_pattern,
            "racy_variable": outcome.diagnosis.racy_variable,
            "raw_variable": outcome.diagnosis.raw_variable,
            "symbols": list(outcome.diagnosis.symbols),
            "scopes": list(outcome.diagnosis.scopes),
            "confidence": outcome.diagnosis.confidence,
            "evidence": outcome.diagnosis.evidence,
        }
    return {
        "version": STORE_VERSION,
        "case_id": result.case.case_id,
        "reproduced": result.reproduced,
        "review": review,
        "outcome": {
            "bug_hash": outcome.bug_hash,
            "fixed": outcome.fixed,
            "diagnosis": diagnosis,
            "strategy": outcome.strategy,
            "location": outcome.location,
            "scope": outcome.scope,
            "guided_by_example": outcome.guided_by_example,
            "example_id": outcome.example_id,
            "lines_changed": outcome.lines_changed,
            "duration_seconds": outcome.duration_seconds,
            "failure_reason": outcome.failure_reason,
            "model_calls": outcome.model_calls,
            "validations": outcome.validations,
            "attempts": [dataclasses.asdict(attempt) for attempt in outcome.attempts],
            "patch": patch,
        },
    }


def deserialize_case_result(data: Dict[str, Any], case: RaceCase) -> "CaseResult":
    """Rebuild a :class:`CaseResult` for ``case`` from its stored form."""
    from repro.evaluation.runner import CaseResult

    raw_outcome = data["outcome"]
    patch = None
    raw_patch = raw_outcome.get("patch")
    if raw_patch is not None:
        sources = dict(raw_patch["sources"])
        files = [
            GoFile(name=file.name, source=sources.pop(file.name, file.source))
            for file in case.package.files
        ]
        files.extend(GoFile(name=name, source=source) for name, source in sources.items())
        patch = Patch(
            package=GoPackage(name=case.package.name, files=files),
            changed_files=list(raw_patch["changed_files"]),
        )
    diagnosis = None
    raw_diagnosis = raw_outcome.get("diagnosis")
    if raw_diagnosis is not None:
        category = category_from_value(raw_diagnosis["category"])
        if category is not None:
            diagnosis = Diagnosis(
                category=category,
                access_pattern=raw_diagnosis["access_pattern"],
                racy_variable=raw_diagnosis["racy_variable"],
                raw_variable=raw_diagnosis["raw_variable"],
                symbols=list(raw_diagnosis["symbols"]),
                scopes=list(raw_diagnosis["scopes"]),
                confidence=raw_diagnosis["confidence"],
                evidence=raw_diagnosis["evidence"],
            )
    outcome = FixOutcome(
        bug_hash=raw_outcome["bug_hash"],
        fixed=raw_outcome["fixed"],
        patch=patch,
        diagnosis=diagnosis,
        strategy=raw_outcome["strategy"],
        location=raw_outcome["location"],
        scope=raw_outcome["scope"],
        guided_by_example=raw_outcome["guided_by_example"],
        example_id=raw_outcome["example_id"],
        lines_changed=raw_outcome["lines_changed"],
        attempts=[FixAttempt(**attempt) for attempt in raw_outcome["attempts"]],
        duration_seconds=raw_outcome["duration_seconds"],
        failure_reason=raw_outcome["failure_reason"],
        model_calls=raw_outcome["model_calls"],
        validations=raw_outcome["validations"],
    )
    review = None
    if data.get("review") is not None:
        review = ReviewDecision(**data["review"])
    return CaseResult(
        case=case, outcome=outcome, review=review, reproduced=data["reproduced"]
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class RunStore:
    """Disk-backed cache of per-case evaluation results."""

    def __init__(self, root: "Path | str", namespace: str = "default"):
        self.root = Path(root)
        self.namespace = namespace
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _path(self, config_fp: str, case_id: str) -> Path:
        return self.root / self.namespace / config_fp / f"{case_id}.json"

    def load(self, case: RaceCase, config_fp: str) -> Optional["CaseResult"]:
        """The cached result for (case, fingerprint), or ``None`` on a miss.

        Unreadable or stale-format entries count as misses and are ignored.
        """
        path = self._path(config_fp, case.case_id)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("version") != STORE_VERSION or data.get("case_id") != case.case_id:
            self.misses += 1
            return None
        try:
            result = deserialize_case_result(data, case)
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, result: "CaseResult", config_fp: str) -> Path:
        """Atomically persist one case result; returns the entry's path."""
        path = self._path(config_fp, result.case.case_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(serialize_case_result(result), sort_keys=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------

    def entry_count(self, config_fp: Optional[str] = None) -> int:
        """Number of stored entries (optionally for one fingerprint only)."""
        base = self.root / self.namespace
        if config_fp is not None:
            base = base / config_fp
        if not base.exists():
            return 0
        return sum(1 for _ in base.rglob("*.json"))

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


__all__ = [
    "STORE_VERSION",
    "RunStore",
    "config_fingerprint",
    "corpus_fingerprint",
    "deserialize_case_result",
    "serialize_case_result",
]
