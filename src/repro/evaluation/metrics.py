"""Evaluation metrics: fix rates, category histograms, percentiles, and the
diagnosis-layer aggregates (per-category fix rates, diagnosis agreement)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.diagnosis.categories import RaceCategory, all_categories

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.runner import CaseResult


@dataclass
class FixRate:
    """A count of fixed races out of attempted races."""

    fixed: int = 0
    total: int = 0
    label: str = ""

    @property
    def rate(self) -> float:
        return self.fixed / self.total if self.total else 0.0

    @property
    def percent(self) -> float:
        return 100.0 * self.rate

    def __str__(self) -> str:
        return f"{self.fixed}/{self.total} ({self.percent:.1f}%)"


@dataclass
class RateComparison:
    """Paper value vs measured value for one experiment arm."""

    label: str
    paper_percent: float
    measured: FixRate

    @property
    def delta(self) -> float:
        return self.measured.percent - self.paper_percent


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) using linear interpolation.

    Matches the convention of Table 7 (P50/P75/P90/P95/P99/P100).
    """
    data = sorted(values)
    if not data:
        return 0.0
    if q <= 0:
        return float(data[0])
    if q >= 100:
        return float(data[-1])
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(data[low])
    weight = rank - low
    return float(data[low] * (1 - weight) + data[high] * weight)


TABLE7_PERCENTILES = (50, 75, 90, 95, 99, 100)


@dataclass
class Histogram:
    """A labelled counter with percentage accessors."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, amount: int = 1) -> None:
        self.counts[label] = self.counts.get(label, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, label: str) -> float:
        return self.counts.get(label, 0) / self.total if self.total else 0.0

    def sorted_items(self) -> List[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))


def category_fix_rates(results: "Sequence[CaseResult]") -> Dict[RaceCategory, FixRate]:
    """Validated-fix rate per ground-truth race category (Table 3 companion)."""
    rates: Dict[RaceCategory, FixRate] = {
        category: FixRate(label=category.value) for category in all_categories()
    }
    for result in results:
        rate = rates[result.case.category]
        rate.total += 1
        if result.fixed:
            rate.fixed += 1
    return rates


def pattern_fix_counts(results: "Sequence[CaseResult]") -> Dict[str, int]:
    """How many validated fixes each fix pattern produced."""
    counts: Dict[str, int] = {}
    for result in results:
        if result.fixed and result.outcome.strategy:
            counts[result.outcome.strategy] = counts.get(result.outcome.strategy, 0) + 1
    return counts


def diagnosis_agreement(results: "Sequence[CaseResult]") -> FixRate:
    """How often the diagnosis layer's category matches the ground truth.

    Counted over results that carry a diagnosis (outcomes rehydrated from an
    old run store may not).
    """
    agreement = FixRate(label="diagnosis agreement")
    for result in results:
        diagnosis = result.outcome.diagnosis
        if diagnosis is None:
            continue
        agreement.total += 1
        if diagnosis.category is result.case.category:
            agreement.fixed += 1
    return agreement


def diagnosis_agreement_by_category(
    results: "Sequence[CaseResult]",
) -> Dict[RaceCategory, FixRate]:
    """Per-ground-truth-category diagnosis agreement."""
    rates: Dict[RaceCategory, FixRate] = {
        category: FixRate(label=category.value) for category in all_categories()
    }
    for result in results:
        diagnosis = result.outcome.diagnosis
        if diagnosis is None:
            continue
        rate = rates[result.case.category]
        rate.total += 1
        if diagnosis.category is result.case.category:
            rate.fixed += 1
    return rates


def mean(values: Iterable[float]) -> float:
    data = list(values)
    return sum(data) / len(data) if data else 0.0


def stddev(values: Iterable[float]) -> float:
    data = list(values)
    if len(data) < 2:
        return 0.0
    center = mean(data)
    return math.sqrt(sum((v - center) ** 2 for v in data) / (len(data) - 1))
