"""Evaluation metrics: fix rates, category histograms, percentiles."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


@dataclass
class FixRate:
    """A count of fixed races out of attempted races."""

    fixed: int = 0
    total: int = 0
    label: str = ""

    @property
    def rate(self) -> float:
        return self.fixed / self.total if self.total else 0.0

    @property
    def percent(self) -> float:
        return 100.0 * self.rate

    def __str__(self) -> str:
        return f"{self.fixed}/{self.total} ({self.percent:.1f}%)"


@dataclass
class RateComparison:
    """Paper value vs measured value for one experiment arm."""

    label: str
    paper_percent: float
    measured: FixRate

    @property
    def delta(self) -> float:
        return self.measured.percent - self.paper_percent


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) using linear interpolation.

    Matches the convention of Table 7 (P50/P75/P90/P95/P99/P100).
    """
    data = sorted(values)
    if not data:
        return 0.0
    if q <= 0:
        return float(data[0])
    if q >= 100:
        return float(data[-1])
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(data[low])
    weight = rank - low
    return float(data[low] * (1 - weight) + data[high] * weight)


TABLE7_PERCENTILES = (50, 75, 90, 95, 99, 100)


@dataclass
class Histogram:
    """A labelled counter with percentage accessors."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, amount: int = 1) -> None:
        self.counts[label] = self.counts.get(label, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, label: str) -> float:
        return self.counts.get(label, 0) / self.total if self.total else 0.0

    def sorted_items(self) -> List[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))


def mean(values: Iterable[float]) -> float:
    data = list(values)
    return sum(data) / len(data) if data else 0.0


def stddev(values: Iterable[float]) -> float:
    data = list(values)
    if len(data) < 2:
        return 0.0
    center = mean(data)
    return math.sqrt(sum((v - center) ** 2 for v in data) / (len(data) - 1))
