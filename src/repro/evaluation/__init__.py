"""Evaluation harness: regenerate every table and figure of the paper.

* :mod:`repro.evaluation.metrics`    — fix rates, category breakdowns, percentiles;
* :mod:`repro.evaluation.runner`     — run the pipeline over an evaluation split;
* :mod:`repro.evaluation.executor`   — serial/thread/process case executors
  (``--jobs`` / ``DRFIX_JOBS``) with deterministic result ordering;
* :mod:`repro.evaluation.store`      — the persistent run store: per-case results
  cached on disk by (case id, configuration fingerprint);
* :mod:`repro.evaluation.ablation`   — the RQ2/RQ3 ablation arms (Figures 3-4, LCA, models);
* :mod:`repro.evaluation.survey`     — the RQ4 developer-survey table;
* :mod:`repro.evaluation.experiments`— one function per table/figure;
* :mod:`repro.evaluation.reporting`  — plain-text/markdown table rendering.
"""

from repro.evaluation.executor import CaseExecutor, ExecutorKind, resolve_jobs
from repro.evaluation.metrics import FixRate, percentile
from repro.evaluation.runner import (
    CaseResult,
    EvaluationRun,
    EvaluationRunner,
    ExperimentContext,
    evaluate_single_case,
)
from repro.evaluation.reporting import Table, format_table
from repro.evaluation.store import RunStore, config_fingerprint, corpus_fingerprint

__all__ = [
    "CaseExecutor",
    "ExecutorKind",
    "resolve_jobs",
    "FixRate",
    "percentile",
    "CaseResult",
    "EvaluationRun",
    "EvaluationRunner",
    "ExperimentContext",
    "evaluate_single_case",
    "Table",
    "format_table",
    "RunStore",
    "config_fingerprint",
    "corpus_fingerprint",
]
