"""Evaluation harness: regenerate every table and figure of the paper.

* :mod:`repro.evaluation.metrics`    — fix rates, category breakdowns, percentiles;
* :mod:`repro.evaluation.runner`     — run the pipeline over an evaluation split;
* :mod:`repro.evaluation.ablation`   — the RQ2/RQ3 ablation arms (Figures 3-4, LCA, models);
* :mod:`repro.evaluation.survey`     — the RQ4 developer-survey table;
* :mod:`repro.evaluation.experiments`— one function per table/figure;
* :mod:`repro.evaluation.reporting`  — plain-text/markdown table rendering.
"""

from repro.evaluation.metrics import FixRate, percentile
from repro.evaluation.runner import CaseResult, EvaluationRunner, ExperimentContext
from repro.evaluation.reporting import Table, format_table

__all__ = [
    "FixRate",
    "percentile",
    "CaseResult",
    "EvaluationRunner",
    "ExperimentContext",
    "Table",
    "format_table",
]
