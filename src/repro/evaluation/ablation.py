"""Ablation studies (RQ2 and RQ3): retrieval, scope/feedback, LCA, and models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.evaluation.metrics import FixRate, RateComparison
from repro.evaluation.runner import ExperimentContext


@dataclass
class AblationResult:
    """One ablation: a set of labelled arms with paper reference values."""

    name: str
    arms: List[RateComparison]

    def as_dict(self) -> Dict[str, FixRate]:
        return {arm.label: arm.measured for arm in self.arms}


#: Paper values (percent of validated fixes) for each ablation arm.
PAPER_RAG_VALUES = {"no-rag": 47.0, "rag-raw-text": 50.0, "rag-skeleton": 66.0}
PAPER_SCOPE_VALUES = {
    "function-only": 39.0,
    "file-only": 33.0,
    "file-with-feedback": 39.0,
    "function-file-feedback": 66.0,
}
PAPER_LCA_VALUES = {"without-lca": 62.53, "with-lca": 66.75}
PAPER_MODEL_VALUES = {"gpt-4o": 65.76, "o1-preview": 73.45}


def rag_ablation(context: ExperimentContext) -> AblationResult:
    """Figure 3: no RAG vs RAG without skeleton vs RAG with skeleton."""
    base = context.base_config
    arms = [
        ("no-rag", base.without_rag()),
        ("rag-raw-text", base.with_raw_retrieval()),
        ("rag-skeleton", base),
    ]
    comparisons = []
    for label, config in arms:
        run = context.run_arm(label, config)
        comparisons.append(
            RateComparison(label=label, paper_percent=PAPER_RAG_VALUES[label],
                           measured=run.fix_rate())
        )
    return AblationResult(name="rag", arms=comparisons)


def scope_ablation(context: ExperimentContext) -> AblationResult:
    """Figure 4: fix scope and validation-failure feedback."""
    base = context.base_config
    arms = [
        ("function-only", base.function_scope_only()),
        ("file-only", base.file_scope_only(feedback=False)),
        ("file-with-feedback", base.file_scope_only(feedback=True)),
        ("function-file-feedback", base),
    ]
    comparisons = []
    for label, config in arms:
        run = context.run_arm(label if label != "function-file-feedback" else "full",
                              config)
        comparisons.append(
            RateComparison(label=label, paper_percent=PAPER_SCOPE_VALUES[label],
                           measured=run.fix_rate())
        )
    return AblationResult(name="scope", arms=comparisons)


def location_ablation(context: ExperimentContext) -> AblationResult:
    """RQ2.5: the contribution of the LCA fix location."""
    base = context.base_config
    comparisons = [
        RateComparison(
            label="without-lca",
            paper_percent=PAPER_LCA_VALUES["without-lca"],
            measured=context.run_arm("without-lca", base.without_lca()).fix_rate(),
        ),
        RateComparison(
            label="with-lca",
            paper_percent=PAPER_LCA_VALUES["with-lca"],
            measured=context.run_arm("full", base).fix_rate(),
        ),
    ]
    return AblationResult(name="lca", arms=comparisons)


def model_ablation(context: ExperimentContext) -> AblationResult:
    """RQ3: GPT-4o vs o1-preview (same vector database, same corpus)."""
    base = context.base_config
    comparisons = [
        RateComparison(
            label="gpt-4o",
            paper_percent=PAPER_MODEL_VALUES["gpt-4o"],
            measured=context.run_arm("full", base.with_model("gpt-4o")).fix_rate(),
        ),
        RateComparison(
            label="o1-preview",
            paper_percent=PAPER_MODEL_VALUES["o1-preview"],
            measured=context.run_arm("o1-preview", base.with_model("o1-preview")).fix_rate(),
        ),
    ]
    return AblationResult(name="model", arms=comparisons)


def skeleton_noise_ablation(context: ExperimentContext) -> Dict[str, float]:
    """Design-choice ablation: retrieval precision with and without skeletons.

    Measures how often the nearest retrieved example demonstrates the same
    repair strategy as the query case's ground truth, using the two databases
    the context already built.  This isolates the retrieval component from the
    rest of the pipeline (docs/architecture.md §Design choices, retrieval isolation).
    """
    totals = {"skeleton": 0, "raw": 0}
    hits = {"skeleton": 0, "raw": 0}
    for case in context.dataset.fixable_eval_cases():
        report = case.race_report(runs=context.base_config.detection_runs)
        racy_lines = report.racy_lines(case.racy_file) if report is not None else []
        for mode, database in (("skeleton", context.skeleton_database),
                               ("raw", context.raw_database)):
            result = database.query_code(
                case.racy_source(),
                racy_variable=case.racy_variable,
                racy_lines=racy_lines,
            )
            totals[mode] += 1
            if result is not None and result.metadata.get("strategy") == case.fix_strategy:
                hits[mode] += 1
    return {
        mode: (hits[mode] / totals[mode] if totals[mode] else 0.0)
        for mode in ("skeleton", "raw")
    }
