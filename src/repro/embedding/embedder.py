"""Deterministic feature-hashing code embedder.

This is the offline stand-in for the paper's all-MiniLM-L6-v2 sentence
transformer.  The contract that matters for Dr.Fix is:

* similar concurrency structure → nearby vectors,
* business-logic identifier noise perturbs raw-code embeddings much more than
  skeleton embeddings (because the skeletonizer removed / canonicalized it),
* deterministic and dependency-free.

A hashed bag-of-tokens (with bigrams and concurrency-token boosting), L2
normalized into ``d`` dimensions, has exactly these properties.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.embedding.tokenizer import CONCURRENCY_TOKENS, bigrams, tokenize_code


@dataclass(frozen=True)
class EmbedderConfig:
    """Configuration of the hashing embedder."""

    dimensions: int = 384
    #: Extra weight applied to concurrency vocabulary.  The default of 1.0
    #: models a *generic* sentence embedder (all tokens equal) — the paper's
    #: point is that denoising comes from the skeleton, not the embedder.
    #: Benchmarks can raise this to study a concurrency-aware embedder.
    concurrency_weight: float = 1.0
    bigram_weight: float = 0.5
    use_bigrams: bool = True
    split_identifiers: bool = True


def _hash_token(token: str, dimensions: int) -> tuple[int, float]:
    """Map a token to a (dimension, sign) pair using a stable hash."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "little")
    index = value % dimensions
    sign = 1.0 if (value >> 32) % 2 == 0 else -1.0
    return index, sign


class CodeEmbedder:
    """Embed code/skeleton text into a fixed-dimensional vector space."""

    def __init__(self, config: EmbedderConfig | None = None):
        self.config = config if config is not None else EmbedderConfig()

    @property
    def dimensions(self) -> int:
        return self.config.dimensions

    # ------------------------------------------------------------------

    def embed(self, text: str) -> np.ndarray:
        """Embed one text; returns an L2-normalized vector of ``dimensions``."""
        tokens = tokenize_code(text, split_identifiers=self.config.split_identifiers)
        vector = np.zeros(self.config.dimensions, dtype=np.float64)
        self._accumulate(vector, tokens, base_weight=1.0)
        if self.config.use_bigrams and len(tokens) > 1:
            self._accumulate(vector, bigrams(tokens), base_weight=self.config.bigram_weight)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts; returns an ``(n, d)`` matrix."""
        if not texts:
            return np.zeros((0, self.config.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])

    # ------------------------------------------------------------------

    def _accumulate(self, vector: np.ndarray, tokens: Iterable[str], base_weight: float) -> None:
        for token in tokens:
            weight = base_weight
            if _is_concurrency_token(token):
                weight *= self.config.concurrency_weight
            index, sign = _hash_token(token, self.config.dimensions)
            vector[index] += sign * weight


def _is_concurrency_token(token: str) -> bool:
    if token in CONCURRENCY_TOKENS:
        return True
    if "__" in token:
        left, _, right = token.partition("__")
        return left in CONCURRENCY_TOKENS or right in CONCURRENCY_TOKENS
    return False


def token_overlap(a: str, b: str) -> float:
    """Jaccard similarity of token sets (a cheap diagnostic used in tests)."""
    tokens_a = set(tokenize_code(a))
    tokens_b = set(tokenize_code(b))
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)
