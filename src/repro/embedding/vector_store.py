"""An in-memory exact-nearest-neighbour vector store (ChromaDB substitute).

The store keeps ``(id, vector, document, metadata)`` tuples, answers cosine
nearest-neighbour queries, and can persist itself to / load itself from a JSON
file so the example database survives across runs (the paper notes populating
the database is a one-time activity refreshed periodically).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import RetrievalError
from repro.embedding.similarity import cosine_similarity_matrix, top_k


@dataclass
class StoredItem:
    """One entry of the vector store."""

    item_id: str
    vector: np.ndarray
    document: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class QueryResult:
    """One nearest-neighbour match."""

    item: StoredItem
    score: float

    @property
    def item_id(self) -> str:
        return self.item.item_id

    @property
    def metadata(self) -> Dict[str, Any]:
        return self.item.metadata

    @property
    def document(self) -> str:
        return self.item.document


class VectorStore:
    """Exact cosine-similarity vector store."""

    def __init__(self, dimensions: int):
        if dimensions <= 0:
            raise RetrievalError("vector store dimensionality must be positive")
        self.dimensions = dimensions
        self._items: List[StoredItem] = []
        self._matrix: Optional[np.ndarray] = None
        self._ids: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._ids

    def items(self) -> List[StoredItem]:
        return list(self._items)

    def get(self, item_id: str) -> Optional[StoredItem]:
        index = self._ids.get(item_id)
        if index is None:
            return None
        return self._items[index]

    # ------------------------------------------------------------------

    def add(
        self,
        item_id: str,
        vector: Sequence[float] | np.ndarray,
        document: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> StoredItem:
        """Add or replace an entry."""
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise RetrievalError(
                f"vector has shape {array.shape}, expected ({self.dimensions},)"
            )
        item = StoredItem(item_id=item_id, vector=array, document=document,
                          metadata=dict(metadata or {}))
        existing = self._ids.get(item_id)
        if existing is not None:
            self._items[existing] = item
        else:
            self._ids[item_id] = len(self._items)
            self._items.append(item)
        self._matrix = None
        return item

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            if self._items:
                self._matrix = np.vstack([item.vector for item in self._items])
            else:
                self._matrix = np.zeros((0, self.dimensions))
        return self._matrix

    def query(
        self,
        vector: Sequence[float] | np.ndarray,
        k: int = 1,
        where: Optional[Dict[str, Any]] = None,
    ) -> List[QueryResult]:
        """Return the ``k`` nearest entries by cosine similarity.

        ``where`` filters on exact metadata equality (a small subset of
        ChromaDB's filtering API, sufficient for the pipeline and tests).
        """
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise RetrievalError(
                f"query vector has shape {array.shape}, expected ({self.dimensions},)"
            )
        candidates = list(range(len(self._items)))
        if where:
            candidates = [
                index
                for index in candidates
                if all(self._items[index].metadata.get(key) == value for key, value in where.items())
            ]
        if not candidates:
            return []
        matrix = self._ensure_matrix()[candidates]
        scores = cosine_similarity_matrix(array, matrix)
        best = top_k(scores, k)
        return [
            QueryResult(item=self._items[candidates[index]], score=float(scores[index]))
            for index in best
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the store to a JSON file."""
        payload = {
            "dimensions": self.dimensions,
            "items": [
                {
                    "id": item.item_id,
                    "vector": item.vector.tolist(),
                    "document": item.document,
                    "metadata": item.metadata,
                }
                for item in self._items
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "VectorStore":
        """Load a store previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        store = cls(dimensions=int(payload["dimensions"]))
        for entry in payload["items"]:
            store.add(
                item_id=entry["id"],
                vector=entry["vector"],
                document=entry.get("document", ""),
                metadata=entry.get("metadata", {}),
            )
        return store
