"""An in-memory exact-nearest-neighbour vector store (ChromaDB substitute).

The store keeps ``(id, vector, document, metadata)`` tuples, answers cosine
nearest-neighbour queries, and can persist itself to / load itself from a JSON
file so the example database survives across runs (the paper notes populating
the database is a one-time activity refreshed periodically).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import RetrievalError
from repro.embedding.similarity import cosine_similarity_matrix, top_k


@dataclass
class StoredItem:
    """One entry of the vector store."""

    item_id: str
    vector: np.ndarray
    document: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class QueryResult:
    """One nearest-neighbour match."""

    item: StoredItem
    score: float

    @property
    def item_id(self) -> str:
        return self.item.item_id

    @property
    def metadata(self) -> Dict[str, Any]:
        return self.item.metadata

    @property
    def document(self) -> str:
        return self.item.document


class VectorStore:
    """Exact cosine-similarity vector store."""

    def __init__(self, dimensions: int):
        if dimensions <= 0:
            raise RetrievalError("vector store dimensionality must be positive")
        self.dimensions = dimensions
        self._items: List[StoredItem] = []
        self._matrix: Optional[np.ndarray] = None
        #: How many leading items ``_matrix`` currently covers.  Appends past
        #: this point are folded in lazily (one stack per query batch) instead
        #: of recomputing the whole matrix; replacements force a full rebuild.
        self._matrix_rows: int = 0
        self._matrix_stale: bool = False
        self._ids: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._ids

    def items(self) -> List[StoredItem]:
        return list(self._items)

    def get(self, item_id: str) -> Optional[StoredItem]:
        index = self._ids.get(item_id)
        if index is None:
            return None
        return self._items[index]

    # ------------------------------------------------------------------

    def add(
        self,
        item_id: str,
        vector: Sequence[float] | np.ndarray,
        document: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> StoredItem:
        """Add or replace an entry.

        Adding never recomputes the similarity matrix — a new row is folded
        in lazily on the next query, so populating a database is O(n) instead
        of O(n²) in matrix work."""
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise RetrievalError(
                f"vector has shape {array.shape}, expected ({self.dimensions},)"
            )
        item = StoredItem(item_id=item_id, vector=array, document=document,
                          metadata=dict(metadata or {}))
        existing = self._ids.get(item_id)
        if existing is not None:
            self._items[existing] = item
            if existing < self._matrix_rows:
                # An already-materialized row changed; the next query rebuilds.
                self._matrix_stale = True
        else:
            self._ids[item_id] = len(self._items)
            self._items.append(item)
        return item

    def add_many(
        self,
        items: "Sequence[tuple] | Any",
    ) -> List[StoredItem]:
        """Batch insert/replace ``(item_id, vector, document, metadata)`` rows.

        A convenience wrapper over :meth:`add` for population call sites
        (e.g. :class:`repro.core.database.ExampleDatabase`); the laziness
        that makes population O(n) — no matrix work on add, appends folded in
        on the next query — lives in :meth:`add`/:meth:`_ensure_matrix`
        themselves."""
        return [self.add(*item) for item in items]

    def _ensure_matrix(self) -> np.ndarray:
        items = self._items
        if self._matrix_stale or self._matrix is None:
            if items:
                self._matrix = np.vstack([item.vector for item in items])
            else:
                self._matrix = np.zeros((0, self.dimensions))
            self._matrix_rows = len(items)
            self._matrix_stale = False
        elif self._matrix_rows < len(items):
            # Pure appends since the last build: stack only the new rows.
            new_rows = [item.vector for item in items[self._matrix_rows:]]
            self._matrix = np.vstack([self._matrix] + new_rows) \
                if self._matrix.size else np.vstack(new_rows)
            self._matrix_rows = len(items)
        return self._matrix

    def query(
        self,
        vector: Sequence[float] | np.ndarray,
        k: int = 1,
        where: Optional[Dict[str, Any]] = None,
    ) -> List[QueryResult]:
        """Return the ``k`` nearest entries by cosine similarity.

        ``where`` filters on exact metadata equality (a small subset of
        ChromaDB's filtering API, sufficient for the pipeline and tests).
        """
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise RetrievalError(
                f"query vector has shape {array.shape}, expected ({self.dimensions},)"
            )
        candidates = list(range(len(self._items)))
        if where:
            candidates = [
                index
                for index in candidates
                if all(self._items[index].metadata.get(key) == value for key, value in where.items())
            ]
        if not candidates:
            return []
        matrix = self._ensure_matrix()[candidates]
        scores = cosine_similarity_matrix(array, matrix)
        best = top_k(scores, k)
        return [
            QueryResult(item=self._items[candidates[index]], score=float(scores[index]))
            for index in best
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the store to a JSON file."""
        payload = {
            "dimensions": self.dimensions,
            "items": [
                {
                    "id": item.item_id,
                    "vector": item.vector.tolist(),
                    "document": item.document,
                    "metadata": item.metadata,
                }
                for item in self._items
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "VectorStore":
        """Load a store previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        store = cls(dimensions=int(payload["dimensions"]))
        store.add_many(
            (entry["id"], entry["vector"], entry.get("document", ""),
             entry.get("metadata", {}))
            for entry in payload["items"]
        )
        return store
