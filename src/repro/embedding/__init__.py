"""Embedding and vector-store substrate.

Stands in for the paper's all-MiniLM-L6-v2 sentence transformer and ChromaDB:

* :mod:`repro.embedding.tokenizer` — code-aware tokenization (identifiers are
  split on camelCase/snake_case so business naming becomes diffuse while
  concurrency vocabulary stays crisp);
* :mod:`repro.embedding.embedder` — a deterministic feature-hashing
  bag-of-tokens embedder (d = 384 by default) with extra weight on
  concurrency tokens and token bigrams;
* :mod:`repro.embedding.similarity` — cosine similarity helpers;
* :mod:`repro.embedding.vector_store` — an exact-nearest-neighbour vector
  store with metadata, JSON persistence, and a ChromaDB-like query API.
"""

from repro.embedding.tokenizer import tokenize_code
from repro.embedding.embedder import CodeEmbedder, EmbedderConfig
from repro.embedding.similarity import cosine_similarity
from repro.embedding.vector_store import VectorStore, StoredItem, QueryResult

__all__ = [
    "tokenize_code",
    "CodeEmbedder",
    "EmbedderConfig",
    "cosine_similarity",
    "VectorStore",
    "StoredItem",
    "QueryResult",
]
