"""Similarity functions for retrieval (cosine, plus helpers used in tests)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; zero vectors have similarity 0."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def cosine_similarity_matrix(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against every row of ``matrix``."""
    query = np.asarray(query, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return np.zeros(0)
    query_norm = np.linalg.norm(query)
    row_norms = np.linalg.norm(matrix, axis=1)
    denominator = query_norm * row_norms
    scores = matrix @ query
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(denominator > 0, scores / denominator, 0.0)
    return scores


def top_k(scores: Sequence[float], k: int) -> list[int]:
    """Indices of the ``k`` highest scores, best first."""
    array = np.asarray(scores, dtype=np.float64)
    if array.size == 0 or k <= 0:
        return []
    k = min(k, array.size)
    indices = np.argpartition(-array, k - 1)[:k]
    return sorted(indices.tolist(), key=lambda i: -array[i])
