"""Code-aware tokenization for embedding.

Identifiers are split on camelCase, PascalCase, snake_case, and digits so that
``uuidDefectRateMap`` contributes the diffuse tokens ``uuid defect rate map``
while concurrency vocabulary (``sync``, ``go``, ``chan``, ``Lock`` ...) stays
crisp.  Operators that carry concurrency meaning (``<-``, ``:=``) are kept as
tokens of their own.
"""

from __future__ import annotations

import re
from typing import List

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_OPERATOR_TOKENS = ["<-", ":=", "++", "--", "&&", "||"]
_CAMEL_SPLIT_RE = re.compile(
    r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])|_|(?<=[A-Za-z])(?=[0-9])|(?<=[0-9])(?=[A-Za-z])"
)

#: Tokens that signal concurrency structure; the embedder up-weights them.
CONCURRENCY_TOKENS = {
    "go", "chan", "select", "sync", "atomic", "mutex", "rwmutex", "waitgroup",
    "lock", "unlock", "rlock", "runlock", "wait", "add", "done", "once",
    "parallel", "range", "map", "store", "load", "delete", "racyvar",
    "<-", "defer", "close", "channel", "goroutine",
}


def split_identifier(identifier: str) -> List[str]:
    """Split an identifier into lower-cased word pieces.

    >>> split_identifier("uuidDefectRateMap")
    ['uuid', 'defect', 'rate', 'map']
    >>> split_identifier("racyVar1")
    ['racy', 'var', '1']
    """
    pieces = [p for p in _CAMEL_SPLIT_RE.split(identifier) if p]
    return [p.lower() for p in pieces]


def tokenize_code(text: str, split_identifiers: bool = True) -> List[str]:
    """Tokenize source text (or a skeleton) into embedding tokens."""
    tokens: List[str] = []
    for operator in _OPERATOR_TOKENS:
        count = text.count(operator)
        tokens.extend([operator] * count)
    for match in _IDENTIFIER_RE.finditer(text):
        word = match.group(0)
        lowered = word.lower()
        if lowered.startswith("racyvar"):
            # Collapse racyVar1/racyVar2/... into a single strong signal token.
            tokens.append("racyvar")
            continue
        if split_identifiers:
            pieces = split_identifier(word)
            if len(pieces) > 1:
                tokens.extend(pieces)
                continue
        tokens.append(lowered)
    return tokens


def bigrams(tokens: List[str]) -> List[str]:
    """Adjacent token bigrams (adds a little structural context to the bag)."""
    return [f"{a}__{b}" for a, b in zip(tokens, tokens[1:])]
