"""Corpus generation: draw race cases in the paper's category mix.

The generator produces two disjoint sets, mirroring the paper's protocol:

* the **vector-database split** — fixed examples used to populate the example
  database (272 in the paper, Table 3 "VectorDB" column mix);
* the **evaluation split** — reproducible races the pipeline is evaluated on
  (403 in the paper), containing both fixable cases (in the Table 3 "Dr.Fix
  fixes" mix) and unfixable-by-design cases (Table 5 reasons).

The corpus is fully deterministic in its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.diagnosis.categories import (
    PAPER_FIX_FREQUENCIES,
    PAPER_VECTORDB_FREQUENCIES,
    RaceCategory,
    all_categories,
)
from repro.corpus.ground_truth import RaceCase
from repro.corpus.templates import TEMPLATE_REGISTRY, UNFIXABLE_TEMPLATES
from repro.errors import CorpusError


@dataclass
class CorpusConfig:
    """Knobs of the corpus generator."""

    seed: int = 2025
    #: Number of examples in the vector-database split.
    db_examples: int = 64
    #: Number of fixable cases in the evaluation split.
    eval_fixable: int = 72
    #: Number of unfixable-by-design cases in the evaluation split.
    eval_unfixable: int = 32
    #: Business-logic noise level (0..3) injected into every case.
    noise_level: int = 2
    #: Category mix for the evaluation split (defaults to Table 3 "Dr.Fix fixes").
    eval_mix: Dict[RaceCategory, float] = field(
        default_factory=lambda: dict(PAPER_FIX_FREQUENCIES)
    )
    #: Category mix for the vector-database split (Table 3 "VectorDB").
    db_mix: Dict[RaceCategory, float] = field(
        default_factory=lambda: dict(PAPER_VECTORDB_FREQUENCIES)
    )

    #: Tolerance for mix-weight normalization (the paper's Table 3 columns
    #: carry rounding error, so an exact sum of 1.0 is not required).
    MIX_TOLERANCE = 0.02

    def scaled(self, factor: float) -> "CorpusConfig":
        """A proportionally smaller/larger corpus (used by benchmarks)."""
        return CorpusConfig(
            seed=self.seed,
            db_examples=max(4, int(self.db_examples * factor)),
            eval_fixable=max(4, int(self.eval_fixable * factor)),
            eval_unfixable=max(2, int(self.eval_unfixable * factor)),
            noise_level=self.noise_level,
            eval_mix=dict(self.eval_mix),
            db_mix=dict(self.db_mix),
        )

    def validate(self) -> "CorpusConfig":
        """Reject malformed category mixes in one place, with a clear error.

        A mix must be (approximately) normalized and must only put weight on
        categories that have registered templates — otherwise generation would
        fail deep inside allocation (or silently skew the distribution).
        Returns ``self`` so callers can chain.
        """
        for name, mix in (("eval_mix", self.eval_mix), ("db_mix", self.db_mix)):
            negative = [c for c, w in mix.items() if w < 0]
            if negative:
                raise CorpusError(
                    f"{name} has negative weight for "
                    f"{', '.join(c.value for c in negative)}"
                )
            total = sum(mix.values())
            if abs(total - 1.0) > self.MIX_TOLERANCE:
                raise CorpusError(
                    f"{name} weights sum to {total:.4f}; expected ~1.0 "
                    f"(±{self.MIX_TOLERANCE})"
                )
            orphaned = [
                c for c, w in mix.items() if w > 0 and not TEMPLATE_REGISTRY.get(c)
            ]
            if orphaned:
                raise CorpusError(
                    f"{name} assigns weight to "
                    f"{', '.join(c.value for c in orphaned)}, "
                    "but no template is registered for that category"
                )
        return self


class CorpusGenerator:
    """Deterministically generate race cases from the template registry."""

    def __init__(self, config: Optional[CorpusConfig] = None):
        self.config = (config if config is not None else CorpusConfig()).validate()
        self._rng = random.Random(self.config.seed)
        self._seed_counter = self.config.seed * 1000

    # ------------------------------------------------------------------

    def _next_seed(self) -> int:
        self._seed_counter += 17
        return self._seed_counter

    def _allocate(self, total: int, mix: Dict[RaceCategory, float]) -> Dict[RaceCategory, int]:
        """Largest-remainder allocation of ``total`` cases to categories."""
        if total <= 0:
            return {category: 0 for category in all_categories()}
        weights = {category: mix.get(category, 0.0) for category in all_categories()}
        weight_sum = sum(weights.values())
        if weight_sum <= 0:
            raise CorpusError("category mix has non-positive total weight")
        raw = {category: total * weight / weight_sum for category, weight in weights.items()}
        counts = {category: int(value) for category, value in raw.items()}
        remainder = total - sum(counts.values())
        by_fraction = sorted(raw.items(), key=lambda item: item[1] - int(item[1]), reverse=True)
        for category, _ in by_fraction[:remainder]:
            counts[category] += 1
        return counts

    def _make_category_cases(self, category: RaceCategory, count: int) -> List[RaceCase]:
        templates = TEMPLATE_REGISTRY[category]
        cases: List[RaceCase] = []
        for index in range(count):
            template = templates[index % len(templates)]
            cases.append(template(self._next_seed(), self.config.noise_level))
        return cases

    # ------------------------------------------------------------------

    def generate_db_split(self) -> List[RaceCase]:
        """The curated fixed examples used to populate the vector database."""
        allocation = self._allocate(self.config.db_examples, self.config.db_mix)
        cases: List[RaceCase] = []
        for category, count in allocation.items():
            cases.extend(self._make_category_cases(category, count))
        self._rng.shuffle(cases)
        return cases

    def generate_eval_split(self) -> List[RaceCase]:
        """The reproducible races the pipeline is evaluated on."""
        allocation = self._allocate(self.config.eval_fixable, self.config.eval_mix)
        cases: List[RaceCase] = []
        for category, count in allocation.items():
            cases.extend(self._make_category_cases(category, count))
        for index in range(self.config.eval_unfixable):
            template = UNFIXABLE_TEMPLATES[index % len(UNFIXABLE_TEMPLATES)]
            cases.append(template(self._next_seed(), self.config.noise_level))
        self._rng.shuffle(cases)
        return cases

    def generate(self) -> "Dataset":
        """Generate both splits as a :class:`~repro.corpus.dataset.Dataset`."""
        from repro.corpus.dataset import Dataset

        return Dataset(
            db_examples=self.generate_db_split(),
            evaluation=self.generate_eval_split(),
            config=self.config,
        )

    def generate_mutant_corpus(
        self,
        count: int,
        mutants_per_base: int = 3,
        flip_fraction: float = 0.2,
    ) -> List[RaceCase]:
        """A labeled corpus of template bases plus derived mutants.

        Bases are drawn in the evaluation mix; each base contributes
        ``mutants_per_base`` mutants via the seeded template-mutation engine
        (:mod:`repro.corpus.mutate`), about ``flip_fraction`` of them
        sync-injected race-free negatives.  Fully deterministic in the
        configured seed — byte-identical across processes.
        """
        from repro.corpus.mutate import TemplateMutator

        if count <= 0:
            raise CorpusError(f"mutant corpus size must be positive, got {count}")
        if mutants_per_base < 0:
            raise CorpusError("mutants_per_base must be >= 0")
        per_group = 1 + mutants_per_base
        bases_needed = (count + per_group - 1) // per_group
        allocation = self._allocate(bases_needed, self.config.eval_mix)
        bases: List[RaceCase] = []
        for category, per_category in allocation.items():
            bases.extend(self._make_category_cases(category, per_category))
        mutator = TemplateMutator(self.config.seed)
        cases: List[RaceCase] = []
        for index, base in enumerate(bases):
            cases.append(base)
            cases.extend(
                mutator.derive(
                    base, mutants_per_base, flip_fraction=flip_fraction,
                    salt_base=index * 1000,
                )
            )
        return cases[:count]


def generate_cases(
    categories: Sequence[RaceCategory],
    count_per_category: int = 1,
    seed: int = 7,
    noise_level: int = 1,
) -> List[RaceCase]:
    """Convenience helper used by tests and examples: a few cases per category."""
    cases: List[RaceCase] = []
    counter = seed
    for category in categories:
        templates = TEMPLATE_REGISTRY[category]
        for index in range(count_per_category):
            counter += 13
            template = templates[index % len(templates)]
            cases.append(template(counter, noise_level))
    return cases
