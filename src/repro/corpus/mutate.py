"""Seeded template-mutation engine: derive labeled race cases from templates.

Every template in :mod:`repro.corpus.templates` yields one case shape per
seed.  This module multiplies that supply by applying **semantics-aware
mutations** to an existing :class:`~repro.corpus.ground_truth.RaceCase`, each
mutant carrying re-derived ground truth:

* ``rename_symbols``  — consistently rename top-level functions, methods, and
  type names across the racy *and* fixed packages via a tracked rename map;
  the ground-truth symbols (racy function, test function) are re-derived
  through the same map, so the human fix stays aligned;
* ``vary_workload``   — vary the integer workload the test drives (goroutine
  counts, rounds) in both packages' test files;
* ``reorder_decls``   — permute top-level function declarations in non-racy
  regions (declaration order is semantics-free in Go); the fixed file is
  reordered to the same declaration order;
* ``buffer_channels`` — vary channel topology by giving ``make(chan T)``
  channels an explicit buffer (the interpreter's happens-before edges are
  capacity-independent, so the label is preserved);
* ``sync_inject``     — adopt the ground-truth synchronization, flipping the
  label to race-free (``expected_race=False``) in a tracked way;
* ``sync_remove``     — strip the injected synchronization again, restoring
  the racy body and flipping the label back.

Label-preserving mutations keep category, racy symbols, difficulty, and
diagnosis invariant — the metamorphic property the validation harness
(:mod:`repro.corpus.validate`) enforces.  All randomness flows from
``random.Random`` seeded with strings (SHA-512 based, stable across
processes), and mutant ids come from :func:`repro.fingerprint.digest`, so a
mutant corpus is byte-identical for a given seed.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.corpus.ground_truth import RaceCase
from repro.errors import CorpusError
from repro.fingerprint import digest
from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_file
from repro.golang.printer import print_file
from repro.runtime.harness import GoFile, GoPackage

#: Mutations that keep the ground-truth label (and category/diagnosis) intact.
LABEL_PRESERVING_OPS: Tuple[str, ...] = (
    "rename_symbols",
    "vary_workload",
    "reorder_decls",
    "buffer_channels",
)

#: Mutations that flip ``expected_race`` in a tracked way.
LABEL_FLIPPING_OPS: Tuple[str, ...] = ("sync_inject", "sync_remove")

#: Suffix vocabulary for symbol renames (capitalized so exported names stay
#: exported and ``TestX`` keeps its ``Test`` prefix).
_RENAME_SUFFIXES = (
    "Alt", "Prime", "Next", "Beta", "Edge", "Core", "Plus", "Nova", "Twin", "Vue",
)

_WORKLOAD_VALUES = (2, 3, 4, 5, 6, 7, 8)


@dataclass
class MutationRecord:
    """Provenance of one applied mutation operator."""

    op: str
    details: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        if not self.details:
            return self.op
        inner = ",".join(f"{key}={value}" for key, value in sorted(self.details.items()))
        return f"{self.op}({inner})"


@dataclass
class _Draft:
    """Mutable working state while a mutant is being derived."""

    racy_files: Dict[str, str]
    fixed_files: Dict[str, str]
    racy_function: str
    test_function: str
    expected_race: bool
    records: List[MutationRecord] = field(default_factory=list)


def _is_test_file(name: str) -> bool:
    return name.endswith("_test.go")


# ---------------------------------------------------------------------------
# Mutation operators.  Each takes (draft, case, rng) and returns True when it
# applied (recording its provenance), False when not applicable to this case.
# ---------------------------------------------------------------------------


def _op_rename_symbols(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    sources = list(draft.racy_files.values()) + list(draft.fixed_files.values())
    combined = "\n".join(sources)
    names: List[str] = []
    for source in draft.racy_files.values():
        names.extend(re.findall(r"^func (?:\([^)]*\) )?([A-Za-z_]\w*)\(", source, re.M))
        names.extend(re.findall(r"^type ([A-Za-z_]\w*) struct", source, re.M))
    # Deterministic order, no duplicates.
    seen = set()
    candidates = [n for n in names if not (n in seen or seen.add(n))]
    if not candidates:
        return False
    rename_map: Dict[str, str] = {}
    for name in candidates:
        for _ in range(len(_RENAME_SUFFIXES)):
            suffix = rng.choice(_RENAME_SUFFIXES)
            fresh = name + suffix
            if fresh not in combined and fresh not in rename_map.values():
                rename_map[name] = fresh
                break
    if not rename_map:
        return False
    pattern = re.compile(r"\b(" + "|".join(re.escape(n) for n in rename_map) + r")\b")

    def apply(source: str) -> str:
        return pattern.sub(lambda m: rename_map[m.group(1)], source)

    draft.racy_files = {name: apply(src) for name, src in draft.racy_files.items()}
    draft.fixed_files = {name: apply(src) for name, src in draft.fixed_files.items()}
    draft.racy_function = rename_map.get(draft.racy_function, draft.racy_function)
    draft.test_function = rename_map.get(draft.test_function, draft.test_function)
    draft.records.append(MutationRecord("rename_symbols", dict(rename_map)))
    return True


def _op_vary_workload(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    product = "\n".join(
        src for name, src in draft.racy_files.items() if not _is_test_file(name)
    )
    chosen: Optional[Tuple[str, int]] = None
    for name, source in sorted(draft.racy_files.items()):
        if not _is_test_file(name):
            continue
        for callee, literal in re.findall(r"\b([A-Za-z_]\w*)\((\d+)\)", source):
            value = int(literal)
            if value >= 2 and f"func {callee}(" in product:
                chosen = (name, value)
                break
        if chosen:
            break
    if chosen is None:
        return False
    test_name, old = chosen
    new = rng.choice([v for v in _WORKLOAD_VALUES if v != old])
    pattern = re.compile(rf"\b{old}\b")
    for files in (draft.racy_files, draft.fixed_files):
        if test_name in files:
            files[test_name] = pattern.sub(str(new), files[test_name])
    draft.records.append(
        MutationRecord("vary_workload", {"file": test_name, "from": str(old), "to": str(new)})
    )
    return True


def _op_reorder_decls(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    racy_name = case.racy_file
    racy_source = draft.racy_files.get(racy_name)
    fixed_source = draft.fixed_files.get(racy_name)
    if racy_source is None or fixed_source is None:
        return False
    try:
        racy_ast = parse_file(racy_source, racy_name)
        fixed_ast = parse_file(fixed_source, racy_name)
    except Exception:  # noqa: BLE001 - skip files the parser cannot round-trip
        return False
    func_slots = [i for i, d in enumerate(racy_ast.decls) if isinstance(d, ast.FuncDecl)]
    fixed_slots = [i for i, d in enumerate(fixed_ast.decls) if isinstance(d, ast.FuncDecl)]
    # The racy and fixed files are structurally parallel (same template layout,
    # same noise counts), so the permutation is applied positionally — noise
    # helper *names* differ between the two, names cannot be matched.
    if len(func_slots) < 2 or len(func_slots) != len(fixed_slots):
        return False
    order = list(range(len(func_slots)))
    rng.shuffle(order)
    if order == sorted(order):
        order = order[1:] + order[:1]
    funcs = [racy_ast.decls[i] for i in func_slots]
    fixed_funcs = [fixed_ast.decls[i] for i in fixed_slots]
    for slot, which in zip(func_slots, order):
        racy_ast.decls[slot] = funcs[which]
    for slot, which in zip(fixed_slots, order):
        fixed_ast.decls[slot] = fixed_funcs[which]
    name_order = [funcs[which].name for which in order]
    racy_out, fixed_out = print_file(racy_ast), print_file(fixed_ast)
    try:  # the printed form must still parse — otherwise skip, don't corrupt
        parse_file(racy_out, racy_name)
        parse_file(fixed_out, racy_name)
    except Exception:  # noqa: BLE001
        return False
    draft.racy_files[racy_name] = racy_out
    draft.fixed_files[racy_name] = fixed_out
    draft.records.append(
        MutationRecord("reorder_decls", {"file": racy_name, "order": "-".join(name_order)})
    )
    return True


def _op_buffer_channels(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    # The interpreter's channel happens-before edges (send releases, receive
    # acquires) are capacity-independent, so growing a buffer — or giving an
    # unbuffered channel one — never changes the race label.
    pattern = re.compile(r"make\(chan ([A-Za-z_]\w*)(?:, (\d+))?\)")
    if not any(pattern.search(src) for src in draft.racy_files.values()):
        return False
    extra = rng.randint(1, 3)

    def bump(match: re.Match) -> str:
        current = int(match.group(2)) if match.group(2) else 0
        return f"make(chan {match.group(1)}, {current + extra})"

    def apply(source: str) -> str:
        return pattern.sub(bump, source)

    draft.racy_files = {name: apply(src) for name, src in draft.racy_files.items()}
    draft.fixed_files = {name: apply(src) for name, src in draft.fixed_files.items()}
    draft.records.append(MutationRecord("buffer_channels", {"extra": str(extra)}))
    return True


def _op_sync_inject(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    if not draft.expected_race:
        return False
    draft.expected_race = False
    draft.records.append(MutationRecord("sync_inject"))
    return True


def _op_sync_remove(draft: _Draft, case: RaceCase, rng: random.Random) -> bool:
    if draft.expected_race:
        return False
    draft.expected_race = True
    draft.records.append(MutationRecord("sync_remove"))
    return True


_OPERATORS: Dict[str, Callable[[_Draft, RaceCase, random.Random], bool]] = {
    "rename_symbols": _op_rename_symbols,
    "vary_workload": _op_vary_workload,
    "reorder_decls": _op_reorder_decls,
    "buffer_channels": _op_buffer_channels,
    "sync_inject": _op_sync_inject,
    "sync_remove": _op_sync_remove,
}


def all_operators() -> Tuple[str, ...]:
    return tuple(_OPERATORS)


class TemplateMutator:
    """Derive labeled mutants from template-generated cases, deterministically.

    ``mutate`` applies a named operator sequence; ``derive`` samples operator
    sequences itself.  Both are pure functions of ``(engine seed, salt, base
    case)`` — the same inputs produce byte-identical mutants in any process.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------------

    def mutate(self, case: RaceCase, ops: Sequence[str], salt: int = 0) -> RaceCase:
        """Apply ``ops`` in order; inapplicable operators are skipped."""
        unknown = [op for op in ops if op not in _OPERATORS]
        if unknown:
            raise CorpusError(f"unknown mutation operator(s): {', '.join(unknown)}")
        rng = random.Random(f"{self.seed}:{salt}:{case.case_id}")
        draft = _Draft(
            racy_files={f.name: f.source for f in case.package.files},
            fixed_files={f.name: f.source for f in case.fixed_package.files},
            racy_function=case.racy_function,
            test_function=case.test_function,
            expected_race=True,
        )
        for op in ops:
            _OPERATORS[op](draft, case, rng)
        return self._build(case, draft, salt)

    def derive(
        self,
        case: RaceCase,
        count: int,
        flip_fraction: float = 0.2,
        salt_base: int = 0,
    ) -> List[RaceCase]:
        """Sample ``count`` mutants; about ``flip_fraction`` of them are
        sync-injected (race-free) negatives."""
        mutants: List[RaceCase] = []
        for index in range(count):
            salt = salt_base + index
            rng = random.Random(f"{self.seed}:plan:{salt}:{case.case_id}")
            pool = list(LABEL_PRESERVING_OPS)
            ops = rng.sample(pool, rng.randint(1, min(3, len(pool))))
            if rng.random() < flip_fraction:
                ops.append("sync_inject")
            mutants.append(self.mutate(case, ops, salt=salt))
        return mutants

    # ------------------------------------------------------------------

    def _build(self, case: RaceCase, draft: _Draft, salt: int) -> RaceCase:
        records = [record.describe() for record in draft.records]
        mutant_id = case.case_id + "-m" + digest({
            "base": case.case_id,
            "ops": records,
            "seed": self.seed,
            "salt": salt,
        })[:8]
        # A race-free mutant's package *is* the synchronized one; its "fix" is
        # the identity, keeping `fixed validates clean` trivially true.
        racy_files = draft.racy_files if draft.expected_race else draft.fixed_files
        package = GoPackage(
            name=case.package.name,
            files=[GoFile(name, src) for name, src in racy_files.items()],
        )
        fixed = GoPackage(
            name=case.fixed_package.name,
            files=[GoFile(name, src) for name, src in draft.fixed_files.items()],
        )
        return replace(
            case,
            case_id=mutant_id,
            package=package,
            fixed_package=fixed,
            racy_function=draft.racy_function,
            test_function=draft.test_function,
            expected_race=draft.expected_race,
            base_case_id=case.case_id,
            mutations=records,
            _detection_cache=None,
        )


def mutate_corpus(
    cases: Sequence[RaceCase],
    mutants_per_case: int = 3,
    seed: int = 0,
    flip_fraction: float = 0.2,
) -> List[RaceCase]:
    """Derive ``mutants_per_case`` mutants from every base case."""
    mutator = TemplateMutator(seed)
    result: List[RaceCase] = []
    for index, case in enumerate(cases):
        result.extend(
            mutator.derive(
                case, mutants_per_case, flip_fraction=flip_fraction,
                salt_base=index * 1000,
            )
        )
    return result


__all__ = [
    "LABEL_FLIPPING_OPS",
    "LABEL_PRESERVING_OPS",
    "MutationRecord",
    "TemplateMutator",
    "all_operators",
    "mutate_corpus",
]
