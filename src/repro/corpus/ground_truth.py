"""Ground-truth records for corpus cases.

A :class:`RaceCase` couples a racy package with the human (ground-truth) fix,
the race's category and difficulty, and the structural attributes the
evaluation relies on (does the fix need file scope? is the right fix location
the test or the LCA? how many lines did the human change?).
"""

from __future__ import annotations

import difflib
import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.diagnosis.categories import RaceCategory, UnfixedReason
from repro.runtime.harness import GoPackage, PackageRunResult, run_package_tests
from repro.runtime.race_report import RaceReport


class Difficulty(enum.Enum):
    """How much guidance the fix needs (drives the RAG ablation mechanism)."""

    #: A well-known idiom any modern LLM produces unaided (redeclaration,
    #: loop-variable privatization).
    SIMPLE = "simple"
    #: Requires picking the right structural change; base models often manage,
    #: guided models reliably do.
    MODERATE = "moderate"
    #: Requires non-local restructuring (type changes, new synchronization
    #: objects, channel rewiring) — the cases Table 4 attributes to RAG.
    COMPLEX = "complex"


@dataclass
class RaceCase:
    """One synthetic data race with its ground truth."""

    case_id: str
    category: RaceCategory
    package: GoPackage
    fixed_package: GoPackage
    racy_file: str
    racy_function: str
    racy_variable: str
    fix_strategy: str
    difficulty: Difficulty = Difficulty.MODERATE
    description: str = ""
    #: True when the correct fix touches declarations outside the racy function
    #: (struct fields, other functions, package-level state).
    requires_file_scope: bool = False
    #: True when the fix must be applied at the goroutines' lowest common
    #: ancestor rather than at a leaf function.
    requires_lca: bool = False
    #: True when the root cause (and fix) is in the test, not the code under test.
    fix_in_test: bool = False
    #: Set for cases designed to defeat the pipeline (Table 5).
    expected_unfixed_reason: Optional[UnfixedReason] = None
    #: Name of the test function that exercises the race.
    test_function: str = ""
    #: Model ThreadSanitizer's two-level ancestry limit / truncated calling
    #: contexts: creation stacks and non-leaf frames are dropped from reports.
    truncate_ancestry: bool = False
    #: Ground-truth label: False for sync-injected (race-free) mutants, whose
    #: package must build, pass its tests, and report no race.
    expected_race: bool = True
    #: ``case_id`` of the template case this mutant derives from ("" for
    #: template-generated bases).
    base_case_id: str = ""
    #: Mutation provenance, in application order (``op(key=value,...)``).
    mutations: List[str] = field(default_factory=list)
    seed: int = 0
    _detection_cache: Optional[PackageRunResult] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    def human_fix_loc(self) -> int:
        """Lines of code changed by the ground-truth fix (added + removed)."""
        changed = 0
        for racy_file in self.package.files:
            fixed_file = self.fixed_package.file(racy_file.name)
            if fixed_file is None:
                changed += len(racy_file.source.splitlines())
                continue
            diff = difflib.unified_diff(
                racy_file.source.splitlines(), fixed_file.source.splitlines(), lineterm=""
            )
            for line in diff:
                if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
                    changed += 1
        for fixed_file in self.fixed_package.files:
            if self.package.file(fixed_file.name) is None:
                changed += len(fixed_file.source.splitlines())
        return changed

    def racy_source(self) -> str:
        file = self.package.file(self.racy_file)
        return file.source if file is not None else ""

    def fixed_source(self) -> str:
        file = self.fixed_package.file(self.racy_file)
        return file.source if file is not None else ""

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def detect(self, runs: int = 10, seed: int = 0, force: bool = False) -> PackageRunResult:
        """Run the racy package under the detector and cache the result."""
        if self._detection_cache is None or force:
            self._detection_cache = run_package_tests(self.package, runs=runs, seed=seed)
        return self._detection_cache

    def race_report(self, runs: int = 10, seed: int = 0) -> Optional[RaceReport]:
        """The first detected race report for this case (None if not reproduced)."""
        result = self.detect(runs=runs, seed=seed)
        preferred = [
            report for report in result.reports
            if self.racy_variable and self.racy_variable in (report.variable or "")
        ]
        report = preferred[0] if preferred else (result.reports[0] if result.reports else None)
        if report is not None and self.truncate_ancestry:
            report = _truncate_report(report)
        return report

    def reproduces(self, runs: int = 10, seed: int = 0) -> bool:
        return self.race_report(runs=runs, seed=seed) is not None

    def ground_truth_eliminates_race(self, runs: int = 10, seed: int = 0) -> bool:
        """Sanity check used by tests: the human fix passes validation."""
        result = run_package_tests(self.fixed_package, runs=runs, seed=seed)
        return result.built and not result.reports


def _truncate_report(report: RaceReport) -> RaceReport:
    """Drop creation stacks and non-leaf frames, modelling a truncated calling
    context (the reports Dr.Fix cannot map back to a test, Section 5.6)."""
    import copy

    truncated = copy.deepcopy(report)
    for trace in (truncated.first, truncated.second):
        trace.frames = trace.frames[:1]
        trace.creation_frames = []
    return truncated


@dataclass
class CaseFilter:
    """A reusable predicate over race cases (used by experiments)."""

    categories: Optional[List[RaceCategory]] = None
    max_difficulty: Optional[Difficulty] = None
    fixable_only: bool = False

    def matches(self, case: RaceCase) -> bool:
        if self.categories is not None and case.category not in self.categories:
            return False
        if self.fixable_only and case.expected_unfixed_reason is not None:
            return False
        if self.max_difficulty is not None:
            order = [Difficulty.SIMPLE, Difficulty.MODERATE, Difficulty.COMPLEX]
            if order.index(case.difficulty) > order.index(self.max_difficulty):
                return False
        return True
