"""Templates for "Missing/incorrect synchronization" (26% of fixes).

* ``make_waitgroup_add_case``   — Listing 6: ``wg.Add`` placed inside the goroutine.
* ``make_counter_case``         — an unguarded counter field; the fix introduces a
  mutex into the aggregate type (Table 4 item 5).
* ``make_partial_locking_case`` — Listings 30-32: a field locked on the write path
  but read without the lock elsewhere.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_waitgroup_add_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    proposal = vocab.entity_type() + "Proposal"
    new_fn = "New" + proposal
    propose = "propose" + vocab.field_name()
    run = "Replicate" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {proposal} struct {{
	Entries map[string]int
	mu      sync.Mutex
}}

func {new_fn}() *{proposal} {{
	return &{proposal}{{Entries: map[string]int{{}}}}
}}

func {propose}(p *{proposal}, replica int) {{
	p.mu.Lock()
	p.Entries["replica"] = replica
	p.mu.Unlock()
}}

func {run}(replicas int) int {{
	proposals := {new_fn}()
	var wg sync.WaitGroup
	for i := 1; i < replicas; i++ {{
		go func(pod int) {{
			wg.Add(1)
			defer wg.Done()
			{propose}(proposals, pod)
		}}(i)
	}}
	wg.Wait()
	total := 0
	for key := range proposals.Entries {{
		if key != "" {{
			total++
		}}
	}}
	return total
}}
"""
    fixed_body = body.replace(
        f"""	for i := 1; i < replicas; i++ {{
		go func(pod int) {{
			wg.Add(1)
			defer wg.Done()""",
        f"""	for i := 1; i < replicas; i++ {{
		wg.Add(1)
		go func(pod int) {{
			defer wg.Done()""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if total := {run}(5); total < 0 {{
		t.Errorf("unexpected total %d", total)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_replicator.go"
    test_name = f"{vocab.noun()}_replicator_test.go"
    return build_case(
        case_id=f"sync-wgadd-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=run,
        racy_variable="Entries",
        fix_strategy="move_wg_add",
        difficulty=Difficulty.MODERATE,
        description="wg.Add executed inside the goroutine, letting Wait return before the children finish",
        test_function=f"Test{run}",
        seed=seed,
    )


def make_counter_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    tracker = vocab.type_name()
    record = "record" + vocab.field_name()
    snapshot = "snapshot" + vocab.field_name()
    process = "Aggregate" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {tracker} struct {{
	total int
	batch int
}}

func (t *{tracker}) {record}(n int) {{
	t.total = t.total + n
}}

func (t *{tracker}) {snapshot}() int {{
	return t.total
}}

func {process}(values []int) int {{
	tracker := &{tracker}{{batch: len(values)}}
	var wg sync.WaitGroup
	for _, v := range values {{
		v := v
		wg.Add(1)
		go func() {{
			defer wg.Done()
			tracker.{record}(v)
		}}()
	}}
	wg.Wait()
	return tracker.{snapshot}()
}}
"""
    fixed_body = f"""
type {tracker} struct {{
	mu    sync.Mutex
	total int
	batch int
}}

func (t *{tracker}) {record}(n int) {{
	t.mu.Lock()
	t.total = t.total + n
	t.mu.Unlock()
}}

func (t *{tracker}) {snapshot}() int {{
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}}

func {process}(values []int) int {{
	tracker := &{tracker}{{batch: len(values)}}
	var wg sync.WaitGroup
	for _, v := range values {{
		v := v
		wg.Add(1)
		go func() {{
			defer wg.Done()
			tracker.{record}(v)
		}}()
	}}
	wg.Wait()
	return tracker.{snapshot}()
}}
"""
    test_body = f"""
func Test{process}(t *testing.T) {{
	total := {process}([]int{{2, 3, 4}})
	if total < 0 {{
		t.Errorf("negative total %d", total)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_tracker.go"
    test_name = f"{vocab.noun()}_tracker_test.go"
    return build_case(
        case_id=f"sync-counter-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=record,
        racy_variable="total",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.COMPLEX,
        description="an unguarded counter field updated by worker goroutines; the fix adds a mutex to the type",
        requires_file_scope=True,
        test_function=f"Test{process}",
        seed=seed,
    )


def make_partial_locking_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    job = vocab.type_name() + "Job"
    start = "start" + vocab.field_name()
    ping = "ping" + vocab.field_name()
    monitor = "Monitor" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {job} struct {{
	mu     sync.Mutex
	exists bool
	output bool
}}

func (j *{job}) {start}() {{
	j.mu.Lock()
	j.exists = true
	j.mu.Unlock()
}}

func (j *{job}) {ping}() bool {{
	if j.exists {{
		j.mu.Lock()
		j.output = true
		j.mu.Unlock()
		return true
	}}
	return false
}}

func {monitor}(rounds int) {{
	job := &{job}{{}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		job.{start}()
	}}()
	go func() {{
		defer wg.Done()
		for i := 0; i < rounds; i++ {{
			job.{ping}()
		}}
	}}()
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"""func (j *{job}) {ping}() bool {{
	if j.exists {{
		j.mu.Lock()
		j.output = true
		j.mu.Unlock()
		return true
	}}
	return false
}}""",
        f"""func (j *{job}) {ping}() bool {{
	j.mu.Lock()
	exists := j.exists
	j.mu.Unlock()
	if exists {{
		j.mu.Lock()
		j.output = true
		j.mu.Unlock()
		return true
	}}
	return false
}}""",
    )
    test_body = f"""
func Test{monitor}(t *testing.T) {{
	{monitor}(3)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_monitor.go"
    test_name = f"{vocab.noun()}_monitor_test.go"
    return build_case(
        case_id=f"sync-partial-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=ping,
        racy_variable="exists",
        fix_strategy="complete_locking",
        difficulty=Difficulty.COMPLEX,
        description="a flag written under a mutex but read without it in another method",
        requires_file_scope=True,
        test_function=f"Test{monitor}",
        seed=seed,
    )
