"""Template for "Capture of loop variable" (6% of fixes) — Listing 11.

Loop variables had per-loop scope before Go 1.22; closures launched inside the
loop therefore all observe (and race with) the same variable instance.  The
fix privatizes the variable with ``x := x`` at the top of the loop body.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_loop_var_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    fan_out = "Broadcast" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
func {fan_out}(items []string) int {{
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for _, item := range items {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			mu.Lock()
			total = total + len(item)
			mu.Unlock()
		}}()
	}}
	wg.Wait()
	return total
}}
"""
    fixed_body = body.replace(
        """	for _, item := range items {
		wg.Add(1)""",
        """	for _, item := range items {
		item := item
		wg.Add(1)""",
    )
    test_body = f"""
func Test{fan_out}(t *testing.T) {{
	total := {fan_out}([]string{{"alpha", "beta", "gamma"}})
	if total < 0 {{
		t.Errorf("unexpected total %d", total)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_broadcast.go"
    test_name = f"{vocab.noun()}_broadcast_test.go"
    return build_case(
        case_id=f"loopvar-{seed}",
        category=RaceCategory.LOOP_VARIABLE_CAPTURE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=fan_out,
        racy_variable="item",
        fix_strategy="loop_var_copy",
        difficulty=Difficulty.SIMPLE,
        description="the range variable is captured by reference by goroutines launched in the loop",
        test_function=f"Test{fan_out}",
        seed=seed,
    )
