"""Racy-program template families, one module per race category.

Each template is a callable ``(seed, noise_level) -> RaceCase`` registered in
:data:`TEMPLATE_REGISTRY`.  The registry groups templates by
:class:`~repro.diagnosis.categories.RaceCategory` so the generator can draw cases
in the Table 3 category mix, and by "fixable vs unfixable" so the evaluation
set reproduces Table 5.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import RaceCase

TemplateFn = Callable[[int, int], RaceCase]

from repro.corpus.templates import (  # noqa: E402  (import order is the registry order)
    advanced_sync,
    capture_by_ref,
    concurrent_map,
    concurrent_slice,
    loop_var,
    missing_sync,
    new_families,
    others,
    parallel_test,
    unfixable,
)

#: Fixable templates grouped by category.
TEMPLATE_REGISTRY: Dict[RaceCategory, List[TemplateFn]] = {
    RaceCategory.CAPTURE_BY_REFERENCE: [
        capture_by_ref.make_err_capture_case,
        capture_by_ref.make_limit_capture_case,
        capture_by_ref.make_data_capture_case,
        capture_by_ref.make_ctx_select_err_case,
        new_families.make_channel_close_case,
    ],
    RaceCategory.MISSING_SYNCHRONIZATION: [
        missing_sync.make_waitgroup_add_case,
        missing_sync.make_counter_case,
        missing_sync.make_partial_locking_case,
        advanced_sync.make_atomic_counter_case,
        advanced_sync.make_rwmutex_read_case,
        advanced_sync.make_once_init_case,
        new_families.make_double_checked_case,
        new_families.make_bulk_wgadd_case,
    ],
    RaceCategory.PARALLEL_TEST_SUITE: [
        parallel_test.make_shared_hash_case,
        parallel_test.make_shared_fixture_case,
    ],
    RaceCategory.LOOP_VARIABLE_CAPTURE: [
        loop_var.make_loop_var_case,
    ],
    RaceCategory.CONCURRENT_MAP_ACCESS: [
        concurrent_map.make_shard_map_case,
        concurrent_map.make_local_map_case,
        new_families.make_syncmap_entry_case,
    ],
    RaceCategory.CONCURRENT_SLICE_ACCESS: [
        concurrent_slice.make_channel_slice_case,
    ],
    RaceCategory.OTHERS: [
        others.make_rand_source_case,
        others.make_config_copy_case,
    ],
}

#: Templates engineered to defeat the pipeline (Table 5 reasons).
UNFIXABLE_TEMPLATES: List[TemplateFn] = [
    unfixable.make_multi_file_case,
    unfixable.make_external_vendor_case,
    unfixable.make_truncated_ancestry_case,
    unfixable.make_remove_parallelism_case,
    unfixable.make_singleton_case,
    unfixable.make_deep_copy_case,
    unfixable.make_business_logic_case,
    unfixable.make_large_refactoring_case,
]


def all_templates() -> List[TemplateFn]:
    result: List[TemplateFn] = []
    for templates in TEMPLATE_REGISTRY.values():
        result.extend(templates)
    result.extend(UNFIXABLE_TEMPLATES)
    return result


__all__ = [
    "TemplateFn",
    "TEMPLATE_REGISTRY",
    "UNFIXABLE_TEMPLATES",
    "all_templates",
]
