"""Templates for the "Parallel test suite" category (13% of fixes).

The racing accesses are in the code under test, but the root cause — and the
fix — is in the test: parallel subtests share a mutable fixture (Listing 7).
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_shared_hash_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    uploader = vocab.type_name() + "Uploader"
    read = "Checksum" + vocab.field_name()
    test_fn = f"Test{read}"
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {uploader} struct {{
	label  string
	hasher interface{{}}
}}

func (u *{uploader}) {read}(payload string) string {{
	h := u.hasher.(Hasher{uploader})
	h.Write(payload)
	h.Write(u.label)
	return u.label
}}

type Hasher{uploader} interface {{
	Write(p string) (int, error)
}}
"""
    test_racy = f"""
func {test_fn}(t *testing.T) {{
	sampleHash := md5.New()
	tests := []struct {{
		name string
		hash interface{{}}
	}}{{
		{{name: "success-one", hash: sampleHash}},
		{{name: "success-two", hash: sampleHash}},
		{{name: "success-three", hash: sampleHash}},
	}}
	for _, tt := range tests {{
		tt := tt
		t.Run(tt.name, func(t *testing.T) {{
			t.Parallel()
			u := &{uploader}{{label: tt.name, hasher: tt.hash}}
			u.{read}("payload")
		}})
	}}
}}
"""
    test_fixed = f"""
func {test_fn}(t *testing.T) {{
	tests := []struct {{
		name string
		hash interface{{}}
	}}{{
		{{name: "success-one", hash: md5.New()}},
		{{name: "success-two", hash: md5.New()}},
		{{name: "success-three", hash: md5.New()}},
	}}
	for _, tt := range tests {{
		tt := tt
		t.Run(tt.name, func(t *testing.T) {{
			t.Parallel()
			u := &{uploader}{{label: tt.name, hasher: tt.hash}}
			u.{read}("payload")
		}})
	}}
}}
"""
    main = assemble_file(pkg, [], body, vocab, noise_funcs, noise_structs)
    racy_test = assemble_file(pkg, ["crypto/md5", "testing"], test_racy)
    fixed_test = assemble_file(pkg, ["crypto/md5", "testing"], test_fixed)
    file_name = f"{vocab.noun()}_uploader.go"
    test_name = f"{vocab.noun()}_uploader_test.go"
    return build_case(
        case_id=f"ptest-hash-{seed}",
        category=RaceCategory.PARALLEL_TEST_SUITE,
        package_name=pkg,
        racy_files=[(file_name, main), (test_name, racy_test)],
        fixed_files=[(file_name, main), (test_name, fixed_test)],
        racy_file=test_name,
        racy_function=test_fn,
        racy_variable="sampleHash",
        fix_strategy="parallel_test_isolation",
        difficulty=Difficulty.MODERATE,
        description="table-driven parallel subtests share one hash instance",
        fix_in_test=True,
        test_function=test_fn,
        seed=seed,
    )


def make_shared_fixture_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    cfg = vocab.entity_type() + "Fixture"
    apply_fn = "Apply" + vocab.field_name()
    test_fn = f"Test{apply_fn}"
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {cfg} struct {{
	Region string
	Quota  int
}}

func {apply_fn}(f *{cfg}) int {{
	if f.Region == "" {{
		return 0
	}}
	return f.Quota + len(f.Region)
}}
"""
    test_racy = f"""
func {test_fn}(t *testing.T) {{
	fixture := &{cfg}{{Region: "sjc", Quota: 2}}
	cases := []struct {{
		name   string
		region string
	}}{{
		{{name: "west", region: "sjc"}},
		{{name: "east", region: "dca"}},
		{{name: "south", region: "atl"}},
	}}
	for _, tc := range cases {{
		tc := tc
		t.Run(tc.name, func(t *testing.T) {{
			t.Parallel()
			fixture.Region = tc.region
			if got := {apply_fn}(fixture); got < 0 {{
				t.Errorf("unexpected result %d", got)
			}}
		}})
	}}
}}
"""
    test_fixed = f"""
func {test_fn}(t *testing.T) {{
	cases := []struct {{
		name   string
		region string
	}}{{
		{{name: "west", region: "sjc"}},
		{{name: "east", region: "dca"}},
		{{name: "south", region: "atl"}},
	}}
	for _, tc := range cases {{
		tc := tc
		t.Run(tc.name, func(t *testing.T) {{
			t.Parallel()
			fixture := &{cfg}{{Region: "sjc", Quota: 2}}
			fixture.Region = tc.region
			if got := {apply_fn}(fixture); got < 0 {{
				t.Errorf("unexpected result %d", got)
			}}
		}})
	}}
}}
"""
    main = assemble_file(pkg, [], body, vocab, noise_funcs, noise_structs)
    racy_test = assemble_file(pkg, ["testing"], test_racy)
    fixed_test = assemble_file(pkg, ["testing"], test_fixed)
    file_name = f"{vocab.noun()}_quota.go"
    test_name = f"{vocab.noun()}_quota_test.go"
    return build_case(
        case_id=f"ptest-fixture-{seed}",
        category=RaceCategory.PARALLEL_TEST_SUITE,
        package_name=pkg,
        racy_files=[(file_name, main), (test_name, racy_test)],
        fixed_files=[(file_name, main), (test_name, fixed_test)],
        racy_file=test_name,
        racy_function=test_fn,
        racy_variable="Region",
        fix_strategy="parallel_test_isolation",
        difficulty=Difficulty.MODERATE,
        description="parallel subtests mutate a shared fixture struct",
        fix_in_test=True,
        test_function=test_fn,
        seed=seed,
    )
