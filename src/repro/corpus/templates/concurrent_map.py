"""Templates for "Concurrent map access" (5% of fixes).

* ``make_shard_map_case`` — Listing 8: a struct field of built-in map type
  mutated by concurrently running methods; the idiomatic fix converts it to
  ``sync.Map`` (a type change plus rewriting every map operation).
* ``make_local_map_case`` — a local result map written by loop goroutines; the
  fix guards accesses with a local mutex.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_shard_map_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    scanner = vocab.type_name() + "Scanner"
    new_fn = "New" + scanner
    refresh = "refresh" + vocab.field_name()
    run = "Rebalance" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {scanner} struct {{
	shards map[string]int
	limit  int
}}

func {new_fn}() *{scanner} {{
	return &{scanner}{{shards: map[string]int{{"alpha": 1, "beta": 2}}, limit: 4}}
}}

func (s *{scanner}) {refresh}(active map[string]bool) {{
	for key := range s.shards {{
		if ok := active[key]; !ok {{
			delete(s.shards, key)
		}}
	}}
	s.shards["gamma"] = s.limit
}}

func {run}(workers int) {{
	scanner := {new_fn}()
	active := map[string]bool{{"alpha": true}}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			scanner.{refresh}(active)
		}}()
	}}
	wg.Wait()
}}
"""
    fixed_body = f"""
type {scanner} struct {{
	shards sync.Map
	limit  int
}}

func {new_fn}() *{scanner} {{
	s := &{scanner}{{limit: 4}}
	s.shards.Store("alpha", 1)
	s.shards.Store("beta", 2)
	return s
}}

func (s *{scanner}) {refresh}(active map[string]bool) {{
	s.shards.Range(func(key, value interface{{}}) bool {{
		name := key.(string)
		if ok := active[name]; !ok {{
			s.shards.Delete(name)
		}}
		return true
	}})
	s.shards.Store("gamma", s.limit)
}}

func {run}(workers int) {{
	scanner := {new_fn}()
	active := map[string]bool{{"alpha": true}}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			scanner.{refresh}(active)
		}}()
	}}
	wg.Wait()
}}
"""
    test_body = f"""
func Test{run}(t *testing.T) {{
	{run}(3)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_scanner.go"
    test_name = f"{vocab.noun()}_scanner_test.go"
    return build_case(
        case_id=f"map-shards-{seed}",
        category=RaceCategory.CONCURRENT_MAP_ACCESS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=refresh,
        racy_variable="shards",
        fix_strategy="sync_map_convert",
        difficulty=Difficulty.COMPLEX,
        description="a built-in map field cleaned up concurrently by several workers",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )


def make_local_map_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    collect = "Collect" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
func {collect}(keys []string) int {{
	results := map[string]int{{}}
	var wg sync.WaitGroup
	for _, key := range keys {{
		key := key
		wg.Add(1)
		go func() {{
			defer wg.Done()
			results[key] = len(key)
		}}()
	}}
	wg.Wait()
	return len(results)
}}
"""
    fixed_body = f"""
func {collect}(keys []string) int {{
	results := map[string]int{{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, key := range keys {{
		key := key
		wg.Add(1)
		go func() {{
			defer wg.Done()
			mu.Lock()
			results[key] = len(key)
			mu.Unlock()
		}}()
	}}
	wg.Wait()
	return len(results)
}}
"""
    test_body = f"""
func Test{collect}(t *testing.T) {{
	if n := {collect}([]string{{"alpha", "beta", "gamma"}}); n < 0 {{
		t.Errorf("unexpected count %d", n)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_collect.go"
    test_name = f"{vocab.noun()}_collect_test.go"
    return build_case(
        case_id=f"map-local-{seed}",
        category=RaceCategory.CONCURRENT_MAP_ACCESS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=collect,
        racy_variable="results",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.MODERATE,
        description="loop goroutines write into a shared local result map",
        test_function=f"Test{collect}",
        seed=seed,
    )
