"""Templates for the three registry-extension repair scenarios.

These ride the "Missing/incorrect synchronization" category and exist to
prove the fix-pattern registry's extensibility end to end: each template's
ground truth demonstrates one of the new patterns, so detection, example
retrieval, guided fixing, and the per-category evaluation all exercise them.

* ``make_atomic_counter_case``  — an unguarded counter field; the fix rewrites
  the accesses to ``sync/atomic`` Add/Load operations;
* ``make_rwmutex_read_case``    — a type already owning a ``sync.RWMutex``
  whose read path skips the lock; the fix takes ``RLock``/``RUnlock``;
* ``make_once_init_case``       — a package-level value lazily initialized
  behind a bare nil check; the fix guards it with ``sync.Once``.
"""

from __future__ import annotations

from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for
from repro.diagnosis.categories import RaceCategory


def make_atomic_counter_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    meter = vocab.type_name() + "Meter"
    observe = "observe" + vocab.field_name()
    total = "Total" + vocab.field_name()
    run = "Sample" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {meter} struct {{
	hits  int64
	batch int
}}

func (m *{meter}) {observe}(n int) {{
	m.hits = m.hits + n
}}

func (m *{meter}) {total}() int64 {{
	return m.hits
}}

func {run}(rounds int) int64 {{
	meter := &{meter}{{batch: rounds}}
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			meter.{observe}(1)
		}}()
	}}
	wg.Wait()
	return meter.{total}()
}}
"""
    fixed_body = body.replace(
        f"""func (m *{meter}) {observe}(n int) {{
	m.hits = m.hits + n
}}

func (m *{meter}) {total}() int64 {{
	return m.hits
}}""",
        f"""func (m *{meter}) {observe}(n int) {{
	atomic.AddInt64(&m.hits, n)
}}

func (m *{meter}) {total}() int64 {{
	return atomic.LoadInt64(&m.hits)
}}""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if total := {run}(4); total < 0 {{
		t.Errorf("negative total %d", total)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync", "sync/atomic"], fixed_body, vocab, noise_funcs,
                          noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_meter.go"
    test_name = f"{vocab.noun()}_meter_test.go"
    return build_case(
        case_id=f"sync-atomic-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=observe,
        racy_variable="hits",
        fix_strategy="atomic_counter",
        difficulty=Difficulty.COMPLEX,
        description="an unguarded counter field bumped by worker goroutines; the fix rewrites it to sync/atomic",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )


def make_rwmutex_read_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    catalog = vocab.type_name() + "Catalog"
    bump = "advance" + vocab.field_name()
    inspect = "Current" + vocab.field_name()
    run = "Track" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {catalog} struct {{
	mu      sync.RWMutex
	version int
	region  string
}}

func (c *{catalog}) {bump}(n int) {{
	c.mu.Lock()
	c.version = c.version + n
	c.mu.Unlock()
}}

func (c *{catalog}) {inspect}() int {{
	return c.version
}}

func {run}(rounds int) int {{
	catalog := &{catalog}{{region: "west"}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		for i := 0; i < rounds; i++ {{
			catalog.{bump}(1)
		}}
	}}()
	go func() {{
		defer wg.Done()
		for i := 0; i < rounds; i++ {{
			if catalog.{inspect}() < 0 {{
				return
			}}
		}}
	}}()
	wg.Wait()
	return catalog.{inspect}()
}}
"""
    fixed_body = body.replace(
        f"""func (c *{catalog}) {inspect}() int {{
	return c.version
}}""",
        f"""func (c *{catalog}) {inspect}() int {{
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}}""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if version := {run}(3); version < 0 {{
		t.Errorf("negative version %d", version)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_catalog.go"
    test_name = f"{vocab.noun()}_catalog_test.go"
    return build_case(
        case_id=f"sync-rwread-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=inspect,
        racy_variable="version",
        fix_strategy="rwmutex_read_lock",
        difficulty=Difficulty.COMPLEX,
        description="a field written under the RWMutex but read bare on the hot path; the fix takes the read lock",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )


def make_once_init_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    registry = vocab.entity_type() + "Registry"
    shared = "shared" + vocab.field_name()
    lookup = "lookup" + vocab.field_name()
    run = "Resolve" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {registry} struct {{
	region string
	quota  int
}}

var {shared} *{registry}

func {lookup}() *{registry} {{
	if {shared} == nil {{
		{shared} = &{registry}{{region: "west", quota: 8}}
	}}
	return {shared}
}}

func {run}(workers int) int {{
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			entry := {lookup}()
			if entry.quota < 0 {{
				return
			}}
		}}()
	}}
	wg.Wait()
	final := {lookup}()
	return final.quota
}}
"""
    fixed_body = body.replace(
        f"""var {shared} *{registry}

func {lookup}() *{registry} {{
	if {shared} == nil {{
		{shared} = &{registry}{{region: "west", quota: 8}}
	}}
	return {shared}
}}""",
        f"""var {shared} *{registry}

var {shared}Once sync.Once

func {lookup}() *{registry} {{
	{shared}Once.Do(func() {{
		{shared} = &{registry}{{region: "west", quota: 8}}
	}})
	return {shared}
}}""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if quota := {run}(4); quota != 8 {{
		t.Errorf("unexpected quota %d", quota)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_registry.go"
    test_name = f"{vocab.noun()}_registry_test.go"
    return build_case(
        case_id=f"sync-once-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=lookup,
        racy_variable=shared,
        fix_strategy="once_lazy_init",
        difficulty=Difficulty.COMPLEX,
        description="a package-level value lazily initialized behind a bare nil check from many goroutines",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )
