"""Templates for the "Others" category (4% of fixes).

* ``make_rand_source_case``  — Listing 12: handlers share a thread-unsafe
  ``rand.Source``; the fix creates a fresh source per request.
* ``make_config_copy_case``  — Listing 22: a shared config struct mutated by a
  constructor called concurrently; the fix copies the struct before modifying it.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_rand_source_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    svc = vocab.type_name() + "HTTP"
    handle = "Render" + vocab.field_name()
    serve = "Serve" + vocab.field_name()
    source_var = "_" + vocab.var_name() + "Source"
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
var {source_var} = rand.NewSource(1001)

type {svc} struct {{
	served int
}}

func (s *{svc}) {handle}(size int) int {{
	random := rand.New({source_var})
	total := 0
	for i := 0; i < size; i++ {{
		total = total + random.Intn(9)
	}}
	return total
}}

func {serve}(requests int) {{
	svc := &{svc}{{}}
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			svc.{handle}(3)
		}}()
	}}
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"	random := rand.New({source_var})",
        "	random := rand.New(rand.NewSource(1001))",
    )
    test_body = f"""
func Test{serve}(t *testing.T) {{
	{serve}(3)
}}
"""
    racy = assemble_file(pkg, ["math/rand", "sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["math/rand", "sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_handler.go"
    test_name = f"{vocab.noun()}_handler_test.go"
    return build_case(
        case_id=f"other-rand-{seed}",
        category=RaceCategory.OTHERS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=handle,
        racy_variable="rand.Source",
        fix_strategy="rand_per_request",
        difficulty=Difficulty.MODERATE,
        description="concurrent handlers share a thread-unsafe math/rand source",
        test_function=f"Test{serve}",
        seed=seed,
    )


def make_config_copy_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    cfg = vocab.entity_type() + "Config"
    client = vocab.type_name() + "Consumer"
    new_consumer = "new" + client
    fanout = "Provision" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {cfg} struct {{
	Retries int
	Timeout int
	Region  string
}}

type {client} struct {{
	applied int
}}

func {new_consumer}(cfg *{cfg}, region string) *{client} {{
	cfg.Retries = 3
	cfg.Region = region
	return &{client}{{applied: cfg.Retries + cfg.Timeout}}
}}

func {fanout}(regions []string) {{
	shared := &{cfg}{{Timeout: 30}}
	var wg sync.WaitGroup
	for _, region := range regions {{
		region := region
		wg.Add(1)
		go func() {{
			defer wg.Done()
			{new_consumer}(shared, region)
		}}()
	}}
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"""func {new_consumer}(cfg *{cfg}, region string) *{client} {{
	cfg.Retries = 3
	cfg.Region = region
	return &{client}{{applied: cfg.Retries + cfg.Timeout}}
}}""",
        f"""func {new_consumer}(cfg *{cfg}, region string) *{client} {{
	newConfig := *cfg
	newConfig.Retries = 3
	newConfig.Region = region
	return &{client}{{applied: newConfig.Retries + newConfig.Timeout}}
}}""",
    )
    test_body = f"""
func Test{fanout}(t *testing.T) {{
	{fanout}([]string{{"sjc", "dca", "phx"}})
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_consumer.go"
    test_name = f"{vocab.noun()}_consumer_test.go"
    return build_case(
        case_id=f"other-config-{seed}",
        category=RaceCategory.OTHERS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=new_consumer,
        racy_variable="Retries",
        fix_strategy="struct_copy",
        difficulty=Difficulty.COMPLEX,
        description="a shared configuration struct mutated by a constructor invoked concurrently",
        test_function=f"Test{fanout}",
        seed=seed,
    )
