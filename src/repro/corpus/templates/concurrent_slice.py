"""Template for "Concurrent slice access" (5% of fixes) — Listing 9.

One goroutine appends to a slice field while another indexes it; the fix
introduces a mutex into the owning struct and guards both access sites.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_channel_slice_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    feed = vocab.type_name() + "Feed"
    push = "push" + vocab.field_name()
    latest = "latest" + vocab.field_name()
    stream = "Stream" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {feed} struct {{
	updates []int
	label   string
}}

func (f *{feed}) {push}(n int) {{
	f.updates = append(f.updates, n)
}}

func (f *{feed}) {latest}() int {{
	if len(f.updates) > 0 {{
		return f.updates[len(f.updates)-1]
	}}
	return 0
}}

func {stream}(count int) int {{
	feed := &{feed}{{updates: []int{{1}}, label: "{vocab.string_value()}"}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		for i := 0; i < count; i++ {{
			feed.{push}(i)
		}}
	}}()
	observed := 0
	go func() {{
		defer wg.Done()
		observed = feed.{latest}()
	}}()
	wg.Wait()
	return observed
}}
"""
    fixed_body = f"""
type {feed} struct {{
	mu      sync.Mutex
	updates []int
	label   string
}}

func (f *{feed}) {push}(n int) {{
	f.mu.Lock()
	f.updates = append(f.updates, n)
	f.mu.Unlock()
}}

func (f *{feed}) {latest}() int {{
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.updates) > 0 {{
		return f.updates[len(f.updates)-1]
	}}
	return 0
}}

func {stream}(count int) int {{
	feed := &{feed}{{updates: []int{{1}}, label: "{vocab.string_value()}"}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		for i := 0; i < count; i++ {{
			feed.{push}(i)
		}}
	}}()
	observed := 0
	go func() {{
		defer wg.Done()
		observed = feed.{latest}()
	}}()
	wg.Wait()
	return observed
}}
"""
    test_body = f"""
func Test{stream}(t *testing.T) {{
	if got := {stream}(4); got < 0 {{
		t.Errorf("unexpected value %d", got)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_feed.go"
    test_name = f"{vocab.noun()}_feed_test.go"
    return build_case(
        case_id=f"slice-feed-{seed}",
        category=RaceCategory.CONCURRENT_SLICE_ACCESS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=push,
        racy_variable="updates",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.COMPLEX,
        description="one goroutine appends to a slice field while another reads it",
        requires_file_scope=True,
        test_function=f"Test{stream}",
        seed=seed,
    )
