"""Templates for the "Capture-by-reference in goroutines" category (41% of fixes).

Variants mirror the paper's examples:

* ``make_err_capture_case``     — Listing 1: ``err`` reused inside a goroutine.
* ``make_limit_capture_case``   — Listing 5: a request limit captured and mutated
  by per-item goroutines.
* ``make_data_capture_case``    — Listing 14 (Appendix D): a struct captured by two
  goroutines, one of which mutates it.
* ``make_ctx_select_err_case``  — Listing 10: ``err`` shared across a
  ``select``/``ctx.Done()`` boundary; the idiomatic fix adds an error channel.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_err_capture_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    svc = vocab.type_name()
    process = "Process" + vocab.entity_type()
    validate = "validate" + vocab.field_name()
    task1 = "load" + vocab.field_name()
    task2 = "publish" + vocab.field_name()
    field = vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {svc} struct {{
	{field} int
}}

func (s *{svc}) {validate}() error {{
	if s.{field} < 0 {{
		return errors.New("invalid {field.lower()}")
	}}
	return nil
}}

func (s *{svc}) {task1}(n int) error {{
	if n > s.{field} {{
		return nil
	}}
	return nil
}}

func (s *{svc}) {task2}(n int) error {{
	if n == 0 {{
		return errors.New("empty batch")
	}}
	return nil
}}

func (s *{svc}) {process}(n int) error {{
	err := s.{validate}()
	if err != nil {{
		return err
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {{
		defer wg.Done()
		if err = s.{task1}(n); err != nil {{
			return
		}}
	}}()
	if err = s.{task2}(n); err != nil {{
		return err
	}}
	wg.Wait()
	return err
}}
"""
    fixed_body = body.replace(f"if err = s.{task1}(n); err != nil {{",
                              f"if err := s.{task1}(n); err != nil {{")
    test_body = f"""
func Test{process}(t *testing.T) {{
	s := &{svc}{{{field}: 3}}
	if err := s.{process}(5); err != nil {{
		t.Errorf("unexpected error: %v", err)
	}}
}}
"""
    racy = assemble_file(pkg, ["errors", "sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["errors", "sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_service.go"
    test_name = f"{vocab.noun()}_service_test.go"
    return build_case(
        case_id=f"capture-err-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=process,
        racy_variable="err",
        fix_strategy="redeclare",
        difficulty=Difficulty.SIMPLE,
        description="err captured by reference and assigned in both the goroutine and the parent",
        test_function=f"Test{process}",
        seed=seed,
    )


def make_limit_capture_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    svc = vocab.type_name()
    cfg = vocab.entity_type()
    req = vocab.entity_type() + "Request"
    dispatch = "Dispatch" + vocab.field_name()
    submit = "submit" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {cfg} struct {{
	Limit      int
	BoostLimit int
}}

type {req} struct {{
	Limit int
	Kind  string
}}

type {svc} struct {{
	cfg       *{cfg}
	submitted int
}}

func (s *{svc}) {submit}(r {req}) int {{
	return r.Limit + len(r.Kind)
}}

func (s *{svc}) {dispatch}(kinds []string) {{
	var wg sync.WaitGroup
	limit := s.cfg.Limit
	for _, kind := range kinds {{
		kind := kind
		wg.Add(1)
		go func(k string) {{
			defer wg.Done()
			if k == "boost" {{
				limit = s.cfg.BoostLimit
			}}
			request := {req}{{Limit: limit, Kind: k}}
			s.{submit}(request)
		}}(kind)
	}}
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"""		go func(k string) {{
			defer wg.Done()
			if k == "boost" {{
				limit = s.cfg.BoostLimit
			}}
			request := {req}{{Limit: limit, Kind: k}}""",
        f"""		go func(k string) {{
			defer wg.Done()
			localLimit := limit
			if k == "boost" {{
				localLimit = s.cfg.BoostLimit
			}}
			request := {req}{{Limit: localLimit, Kind: k}}""",
    )
    test_body = f"""
func Test{dispatch}(t *testing.T) {{
	svc := &{svc}{{cfg: &{cfg}{{Limit: 5, BoostLimit: 9}}}}
	svc.{dispatch}([]string{{"boost", "steady", "boost"}})
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_dispatch.go"
    test_name = f"{vocab.noun()}_dispatch_test.go"
    return build_case(
        case_id=f"capture-limit-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=dispatch,
        racy_variable="limit",
        fix_strategy="privatize_local_copy",
        difficulty=Difficulty.MODERATE,
        description="a per-request limit captured by reference and overwritten inside loop goroutines",
        test_function=f"Test{dispatch}",
        seed=seed,
    )


def make_data_capture_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    rating = vocab.entity_type()
    ctl = vocab.type_name()
    process = "Process" + vocab.field_name()
    save = "save" + vocab.field_name()
    notify = "notify" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {rating} struct {{
	Status string
	Score  int
}}

type {ctl} struct {{
	saved int
	sent  int
}}

func (c *{ctl}) {save}(r *{rating}) {{
	c.saved = c.saved + r.Score
}}

func (c *{ctl}) {notify}(r *{rating}) {{
	c.sent = c.sent + len(r.Status)
}}

func (c *{ctl}) {process}(score int) {{
	data := {rating}{{Status: "pending", Score: score}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		data.Status = "processed"
		c.{save}(&data)
	}}()
	go func() {{
		defer wg.Done()
		c.{notify}(&data)
	}}()
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"""	go func() {{
		defer wg.Done()
		data.Status = "processed"
		c.{save}(&data)
	}}()
	go func() {{
		defer wg.Done()
		c.{notify}(&data)
	}}()""",
        f"""	go func(d {rating}) {{
		defer wg.Done()
		d.Status = "processed"
		c.{save}(&d)
	}}(data)
	go func(d {rating}) {{
		defer wg.Done()
		c.{notify}(&d)
	}}(data)""",
    )
    test_body = f"""
func Test{process}(t *testing.T) {{
	c := &{ctl}{{}}
	c.{process}(4)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_controller.go"
    test_name = f"{vocab.noun()}_controller_test.go"
    return build_case(
        case_id=f"capture-data-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=process,
        racy_variable="Status",
        fix_strategy="privatize_local_copy",
        difficulty=Difficulty.COMPLEX,
        description="a request struct captured by two goroutines, one of which mutates a field",
        test_function=f"Test{process}",
        seed=seed,
    )


def make_ctx_select_err_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    ctl = vocab.type_name()
    result = vocab.entity_type() + "Result"
    evaluate = "Evaluate" + vocab.field_name()
    inner = "score" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {result} struct {{
	Value int
}}

type {ctl} struct {{
	threshold int
}}

func (c *{ctl}) {inner}(x int) ({result}, error) {{
	if x > c.threshold {{
		return {result}{{Value: x}}, nil
	}}
	return {result}{{Value: 0}}, nil
}}

func (c *{ctl}) {evaluate}(ctx context.Context, x int) (int, error) {{
	resultChan := make(chan {result}, 1)
	var err error
	run := func() {{
		var result {result}
		result, err = c.{inner}(x)
		resultChan <- result
	}}
	go run()
	select {{
	case result := <-resultChan:
		return result.Value, err
	case <-ctx.Done():
		return 0, err
	}}
}}
"""
    fixed_body = f"""
type {result} struct {{
	Value int
}}

type {ctl} struct {{
	threshold int
}}

func (c *{ctl}) {inner}(x int) ({result}, error) {{
	if x > c.threshold {{
		return {result}{{Value: x}}, nil
	}}
	return {result}{{Value: 0}}, nil
}}

func (c *{ctl}) {evaluate}(ctx context.Context, x int) (int, error) {{
	resultChan := make(chan {result}, 1)
	errChan := make(chan error, 1)
	run := func() {{
		result, err := c.{inner}(x)
		resultChan <- result
		errChan <- err
	}}
	go run()
	var err error
	select {{
	case result := <-resultChan:
		err = <-errChan
		return result.Value, err
	case <-ctx.Done():
		return 0, nil
	}}
}}
"""
    test_body = f"""
func Test{evaluate}(t *testing.T) {{
	c := &{ctl}{{threshold: 1}}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	c.{evaluate}(ctx, 5)
}}
"""
    racy = assemble_file(pkg, ["context"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["context"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["context", "testing", "time"], test_body)
    file_name = f"{vocab.noun()}_risk.go"
    test_name = f"{vocab.noun()}_risk_test.go"
    return build_case(
        case_id=f"capture-ctx-err-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=evaluate,
        racy_variable="err",
        fix_strategy="channel_error",
        difficulty=Difficulty.COMPLEX,
        description="err shared between a worker goroutine and a parent that may return early on ctx.Done()",
        test_function=f"Test{evaluate}",
        seed=seed,
    )
