"""Shared helpers for corpus templates."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.diagnosis.categories import RaceCategory, UnfixedReason
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.noise import Vocabulary, make_vocabulary, noise_helper_functions, noise_struct
from repro.runtime.harness import GoFile, GoPackage


def assemble_file(
    package: str,
    imports: Sequence[str],
    body: str,
    vocab: Optional[Vocabulary] = None,
    noise_funcs: int = 0,
    noise_structs: int = 0,
) -> str:
    """Assemble a Go source file with imports, optional noise, and the body."""
    lines: List[str] = [f"package {package}", ""]
    if imports:
        if len(imports) == 1:
            lines.append(f'import "{imports[0]}"')
        else:
            lines.append("import (")
            for path in imports:
                lines.append(f'\t"{path}"')
            lines.append(")")
        lines.append("")
    chunks: List[str] = []
    if vocab is not None and noise_structs > 0:
        for _ in range(noise_structs):
            chunks.append(noise_struct(vocab))
    chunks.append(body.strip("\n"))
    if vocab is not None and noise_funcs > 0:
        chunks.append(noise_helper_functions(vocab, noise_funcs))
    lines.append("\n\n".join(chunk for chunk in chunks if chunk))
    lines.append("")
    return "\n".join(lines)


def build_case(
    case_id: str,
    category: RaceCategory,
    package_name: str,
    racy_files: Sequence[Tuple[str, str]],
    fixed_files: Sequence[Tuple[str, str]],
    racy_file: str,
    racy_function: str,
    racy_variable: str,
    fix_strategy: str,
    difficulty: Difficulty,
    description: str,
    test_function: str,
    seed: int,
    requires_file_scope: bool = False,
    requires_lca: bool = False,
    fix_in_test: bool = False,
    expected_unfixed_reason: Optional[UnfixedReason] = None,
) -> RaceCase:
    """Create a :class:`RaceCase` from assembled source files."""
    package = GoPackage(name=package_name, files=[GoFile(n, s) for n, s in racy_files])
    fixed = GoPackage(name=package_name, files=[GoFile(n, s) for n, s in fixed_files])
    return RaceCase(
        case_id=case_id,
        category=category,
        package=package,
        fixed_package=fixed,
        racy_file=racy_file,
        racy_function=racy_function,
        racy_variable=racy_variable,
        fix_strategy=fix_strategy,
        difficulty=difficulty,
        description=description,
        requires_file_scope=requires_file_scope,
        requires_lca=requires_lca,
        fix_in_test=fix_in_test,
        expected_unfixed_reason=expected_unfixed_reason,
        test_function=test_function,
        seed=seed,
    )


def vocab_for(seed: int) -> Vocabulary:
    return make_vocabulary(seed)


def scaled_noise(noise_level: int, base: int = 1) -> Tuple[int, int]:
    """Map an abstract noise level (0..3) to (helper functions, structs)."""
    level = max(0, min(3, noise_level))
    return base + level * 2, 1 if level >= 1 else 0
