"""Templates for four additional Go race families (PR 6).

Each family lands end to end: the template here, a diagnosis rule in
``repro.diagnosis.diagnose``, a ``@fix_pattern`` strategy in
``repro.llm.strategies.families``, and a guided-fix test.

* ``make_double_checked_case``  — the classic double-checked locking bug: a
  lazily initialized field is nil-checked outside the mutex before being
  assigned under it; the fix hoists the check under the lock;
* ``make_channel_close_case``   — a boolean completion flag written by the
  producer goroutine and polled bare by the consumer; the fix replaces the
  flag with a ``close()``-signalled channel read through a non-blocking
  ``select``;
* ``make_bulk_wgadd_case``      — ``wg.Add(1)`` issued inside each spawned
  goroutine; the fix accounts for the whole batch with one ``wg.Add(n)``
  before the spawning loop (the bulk variant of Listing 6);
* ``make_syncmap_entry_case``   — ``sync.Map`` misuse: the map's own
  operations are safe, but a mutable entry struct obtained via
  ``LoadOrStore`` is mutated without value-level synchronization; the fix
  adds a mutex to the entry type.
"""

from __future__ import annotations

from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for
from repro.diagnosis.categories import RaceCategory


def make_double_checked_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    pool = vocab.type_name() + "Pool"
    conn = vocab.entity_type() + "Link"
    get = "acquire" + vocab.field_name()
    run = "Dial" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {conn} struct {{
	endpoint string
	opened   int
}}

type {pool} struct {{
	mu     sync.Mutex
	conn   *{conn}
	region string
}}

func (p *{pool}) {get}() *{conn} {{
	if p.conn == nil {{
		p.mu.Lock()
		if p.conn == nil {{
			p.conn = &{conn}{{endpoint: "east", opened: 1}}
		}}
		p.mu.Unlock()
	}}
	return p.conn
}}

func {run}(workers int) int {{
	pool := &{pool}{{region: "west"}}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			link := pool.{get}()
			if link.opened < 0 {{
				return
			}}
		}}()
	}}
	wg.Wait()
	return pool.{get}().opened
}}
"""
    fixed_body = body.replace(
        f"""func (p *{pool}) {get}() *{conn} {{
	if p.conn == nil {{
		p.mu.Lock()
		if p.conn == nil {{
			p.conn = &{conn}{{endpoint: "east", opened: 1}}
		}}
		p.mu.Unlock()
	}}
	return p.conn
}}""",
        f"""func (p *{pool}) {get}() *{conn} {{
	p.mu.Lock()
	if p.conn == nil {{
		p.conn = &{conn}{{endpoint: "east", opened: 1}}
	}}
	p.mu.Unlock()
	return p.conn
}}""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if opened := {run}(4); opened != 1 {{
		t.Errorf("unexpected opened count %d", opened)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_pool.go"
    test_name = f"{vocab.noun()}_pool_test.go"
    return build_case(
        case_id=f"sync-dcl-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=get,
        racy_variable="conn",
        fix_strategy="double_checked_locking",
        difficulty=Difficulty.COMPLEX,
        description="double-checked locking: the lazily initialized field is nil-checked outside the mutex",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )


def make_channel_close_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    run = "Drain" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
func {run}(rounds int) int {{
	var wg sync.WaitGroup
	done := false
	backlog := 0
	wg.Add(1)
	go func() {{
		defer wg.Done()
		for i := 0; i < rounds; i++ {{
			backlog = backlog + 1
		}}
		done = true
	}}()
	drained := done
	wg.Wait()
	if drained && backlog < 0 {{
		return -1
	}}
	return backlog
}}
"""
    fixed_body = f"""
func {run}(rounds int) int {{
	var wg sync.WaitGroup
	done := make(chan bool)
	backlog := 0
	wg.Add(1)
	go func() {{
		defer wg.Done()
		for i := 0; i < rounds; i++ {{
			backlog = backlog + 1
		}}
		close(done)
	}}()
	drained := false
	select {{
	case <-done:
		drained = true
	default:
	}}
	wg.Wait()
	if drained && backlog < 0 {{
		return -1
	}}
	return backlog
}}
"""
    test_body = f"""
func Test{run}(t *testing.T) {{
	if backlog := {run}(3); backlog != 3 {{
		t.Errorf("unexpected backlog %d", backlog)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_drain.go"
    test_name = f"{vocab.noun()}_drain_test.go"
    return build_case(
        case_id=f"chan-close-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=run,
        racy_variable="done",
        fix_strategy="channel_close_signal",
        difficulty=Difficulty.COMPLEX,
        description="a completion flag polled bare while the producer writes it; the fix signals completion by closing a channel",
        test_function=f"Test{run}",
        seed=seed,
    )


def make_bulk_wgadd_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    ledger = vocab.type_name() + "Ledger"
    credit = "credit" + vocab.field_name()
    run = "Settle" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {ledger} struct {{
	mu      sync.Mutex
	settled int
}}

func (l *{ledger}) {credit}(n int) {{
	l.mu.Lock()
	l.settled = l.settled + n
	l.mu.Unlock()
}}

func {run}(workers int) int {{
	ledger := &{ledger}{{}}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		go func() {{
			wg.Add(1)
			defer wg.Done()
			ledger.{credit}(1)
		}}()
	}}
	wg.Wait()
	return ledger.settled
}}
"""
    fixed_body = body.replace(
        f"""	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		go func() {{
			wg.Add(1)
			defer wg.Done()""",
        f"""	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {{
		go func() {{
			defer wg.Done()""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if settled := {run}(4); settled < 0 {{
		t.Errorf("negative settled count %d", settled)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_ledger.go"
    test_name = f"{vocab.noun()}_ledger_test.go"
    return build_case(
        case_id=f"sync-bulkadd-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=run,
        racy_variable="settled",
        fix_strategy="bulk_wg_add",
        difficulty=Difficulty.MODERATE,
        description="wg.Add(1) issued inside each spawned goroutine; the fix accounts for the batch with one wg.Add(n) up front",
        test_function=f"Test{run}",
        seed=seed,
    )


def make_syncmap_entry_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    entry = vocab.entity_type() + "Tally"
    board = vocab.type_name() + "Board"
    bump = "bump" + vocab.field_name()
    run = "Count" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {entry} struct {{
	hits  int
	label string
}}

type {board} struct {{
	shards sync.Map
}}

func (b *{board}) {bump}(key string) int {{
	fresh := &{entry}{{label: key}}
	value, _ := b.shards.LoadOrStore(key, fresh)
	tally := value.(*{entry})
	tally.hits = tally.hits + 1
	return tally.hits
}}

func {run}(rounds int) int {{
	board := &{board}{{}}
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			board.{bump}("alpha")
		}}()
	}}
	wg.Wait()
	return board.{bump}("alpha")
}}
"""
    fixed_body = body.replace(
        f"""type {entry} struct {{
	hits  int
	label string
}}""",
        f"""type {entry} struct {{
	mu    sync.Mutex
	hits  int
	label string
}}""",
    ).replace(
        f"""	tally := value.(*{entry})
	tally.hits = tally.hits + 1
	return tally.hits""",
        f"""	tally := value.(*{entry})
	tally.mu.Lock()
	defer tally.mu.Unlock()
	tally.hits = tally.hits + 1
	return tally.hits""",
    )
    test_body = f"""
func Test{run}(t *testing.T) {{
	if hits := {run}(4); hits < 1 {{
		t.Errorf("unexpected hit count %d", hits)
	}}
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_board.go"
    test_name = f"{vocab.noun()}_board_test.go"
    return build_case(
        case_id=f"syncmap-entry-{seed}",
        category=RaceCategory.CONCURRENT_MAP_ACCESS,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=bump,
        racy_variable="hits",
        fix_strategy="syncmap_value_lock",
        difficulty=Difficulty.COMPLEX,
        description="a mutable entry struct held in a sync.Map is mutated without value-level synchronization",
        requires_file_scope=True,
        test_function=f"Test{run}",
        seed=seed,
    )
