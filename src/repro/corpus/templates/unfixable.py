"""Templates engineered to defeat the pipeline, reproducing Table 5.

Each case genuinely resists Dr.Fix for the same structural reason the paper
reports: fixes spanning more than two files, racy code inside external/vendor
packages the tool may not modify, truncated calling contexts, fixes that would
require removing parallelism or redesigning business logic, and fixes that
need deep copies or large refactorings the strategy library does not perform.
"""

from __future__ import annotations

from repro.diagnosis.categories import RaceCategory, UnfixedReason
from repro.corpus.ground_truth import Difficulty, RaceCase
from repro.corpus.templates.base import assemble_file, build_case, scaled_noise, vocab_for


def make_multi_file_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    orchestrate = "Orchestrate" + vocab.field_name()
    fn_a = "ingest" + vocab.field_name()
    fn_b = "expire" + vocab.field_name()
    fn_c = "tally" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    registry = f"""
var registry = map[string]int{{}}

func {fn_a}(key string) {{
	registry[key] = len(key)
}}
"""
    expire = f"""
func {fn_b}(key string) {{
	delete(registry, key)
}}
"""
    tally = f"""
func {fn_c}() int {{
	total := 0
	for _, v := range registry {{
		total = total + v
	}}
	return total
}}
"""
    orchestrator = f"""
func {orchestrate}(keys []string) int {{
	var wg sync.WaitGroup
	for _, key := range keys {{
		key := key
		wg.Add(3)
		go func() {{
			defer wg.Done()
			{fn_a}(key)
		}}()
		go func() {{
			defer wg.Done()
			{fn_b}(key)
		}}()
		go func() {{
			defer wg.Done()
			{fn_c}()
		}}()
	}}
	wg.Wait()
	return {fn_c}()
}}
"""
    fixed_registry = f"""
var registry = map[string]int{{}}

var registryMu sync.Mutex

func {fn_a}(key string) {{
	registryMu.Lock()
	registry[key] = len(key)
	registryMu.Unlock()
}}
"""
    fixed_expire = f"""
func {fn_b}(key string) {{
	registryMu.Lock()
	delete(registry, key)
	registryMu.Unlock()
}}
"""
    fixed_tally = f"""
func {fn_c}() int {{
	registryMu.Lock()
	defer registryMu.Unlock()
	total := 0
	for _, v := range registry {{
		total = total + v
	}}
	return total
}}
"""
    test_body = f"""
func Test{orchestrate}(t *testing.T) {{
	{orchestrate}([]string{{"alpha", "beta"}})
}}
"""
    files = [
        (f"{vocab.noun()}_registry.go", assemble_file(pkg, [], registry, vocab, noise_funcs, noise_structs)),
        (f"{vocab.noun()}_expire.go", assemble_file(pkg, [], expire)),
        (f"{vocab.noun()}_tally.go", assemble_file(pkg, [], tally)),
        (f"{vocab.noun()}_orchestrator.go", assemble_file(pkg, ["sync"], orchestrator)),
        (f"{vocab.noun()}_orchestrator_test.go", assemble_file(pkg, ["testing"], test_body)),
    ]
    fixed_files = [
        (files[0][0], assemble_file(pkg, ["sync"], fixed_registry, vocab, noise_funcs, noise_structs)),
        (files[1][0], assemble_file(pkg, [], fixed_expire)),
        (files[2][0], assemble_file(pkg, [], fixed_tally)),
        files[3],
        files[4],
    ]
    return build_case(
        case_id=f"unfix-multifile-{seed}",
        category=RaceCategory.CONCURRENT_MAP_ACCESS,
        package_name=pkg,
        racy_files=files,
        fixed_files=fixed_files,
        racy_file=files[0][0],
        racy_function=fn_a,
        racy_variable="registry",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.COMPLEX,
        description="a package-level map mutated from helpers spread over three files",
        requires_file_scope=True,
        expected_unfixed_reason=UnfixedReason.MULTI_FILE,
        test_function=f"Test{orchestrate}",
        seed=seed,
    )


def make_external_vendor_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    acquire = "AcquireConn"
    service_a = "Query" + vocab.field_name()
    service_b = "Stream" + vocab.field_name()
    run = "FanIn" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    vendor = f"""
var poolSize = 0

func {acquire}(n int) int {{
	poolSize = poolSize + n
	return poolSize
}}
"""
    caller_a = f"""
func {service_a}(rounds int) int {{
	total := 0
	for i := 0; i < rounds; i++ {{
		total = total + {acquire}(i)
	}}
	return total
}}
"""
    caller_b = f"""
func {service_b}(rounds int) int {{
	total := 0
	for i := 0; i < rounds; i++ {{
		total = total + {acquire}(i + 1)
	}}
	return total
}}
"""
    runner = f"""
func {run}(rounds int) {{
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		{service_a}(rounds)
	}}()
	go func() {{
		defer wg.Done()
		{service_b}(rounds)
	}}()
	wg.Wait()
}}
"""
    fixed_vendor = f"""
var poolSize = 0

var poolMu sync.Mutex

func {acquire}(n int) int {{
	poolMu.Lock()
	defer poolMu.Unlock()
	poolSize = poolSize + n
	return poolSize
}}
"""
    test_body = f"""
func Test{run}(t *testing.T) {{
	{run}(2)
}}
"""
    files = [
        ("vendor/connpool/pool.go", assemble_file("connpool", [], vendor)),
        (f"{vocab.noun()}_query.go", assemble_file(pkg, [], caller_a, vocab, noise_funcs, noise_structs)),
        (f"{vocab.noun()}_stream.go", assemble_file(pkg, [], caller_b)),
        (f"{vocab.noun()}_fanin.go", assemble_file(pkg, ["sync"], runner)),
        (f"{vocab.noun()}_fanin_test.go", assemble_file(pkg, ["testing"], test_body)),
    ]
    fixed_files = [
        ("vendor/connpool/pool.go", assemble_file("connpool", ["sync"], fixed_vendor)),
        files[1],
        files[2],
        files[3],
        files[4],
    ]
    return build_case(
        case_id=f"unfix-vendor-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=files,
        fixed_files=fixed_files,
        racy_file="vendor/connpool/pool.go",
        racy_function=acquire,
        racy_variable="poolSize",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.COMPLEX,
        description="the racy accesses live inside vendored third-party code",
        expected_unfixed_reason=UnfixedReason.EXTERNAL,
        test_function=f"Test{run}",
        seed=seed,
    )


def make_truncated_ancestry_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    stage_a = "project" + vocab.field_name()
    stage_b = "archive" + vocab.field_name()
    launch = "Pipeline" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
var window = []int{{1, 2, 3}}

func {stage_a}(n int) {{
	window = append(window, n)
}}

func {stage_b}() int {{
	total := 0
	for _, v := range window {{
		total = total + v
	}}
	return total
}}

func {launch}(rounds int) {{
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		go func() {{
			{stage_a}(rounds)
		}}()
	}}()
	go func() {{
		defer wg.Done()
		go func() {{
			{stage_b}()
		}}()
	}}()
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        f"""func {launch}(rounds int) {{
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		go func() {{
			{stage_a}(rounds)
		}}()
	}}()
	go func() {{
		defer wg.Done()
		go func() {{
			{stage_b}()
		}}()
	}}()
	wg.Wait()
}}""",
        f"""func {launch}(rounds int) {{
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(2)
	go func() {{
		defer wg.Done()
		mu.Lock()
		{stage_a}(rounds)
		mu.Unlock()
	}}()
	go func() {{
		defer wg.Done()
		mu.Lock()
		{stage_b}()
		mu.Unlock()
	}}()
	wg.Wait()
}}""",
    )
    test_body = f"""
func Test{launch}(t *testing.T) {{
	{launch}(2)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_pipeline.go"
    test_name = f"{vocab.noun()}_pipeline_test.go"
    case = build_case(
        case_id=f"unfix-truncated-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=stage_a,
        racy_variable="window",
        fix_strategy="mutex_guard",
        difficulty=Difficulty.COMPLEX,
        description="detached grandchild goroutines race on a package-level slice; the report's ancestry is truncated",
        expected_unfixed_reason=UnfixedReason.ISOLATE_TEST,
        test_function=f"Test{launch}",
        seed=seed,
    )
    case.truncate_ancestry = True
    return case


def make_remove_parallelism_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    accumulate = "accumulate" + vocab.field_name()
    compute = "Estimate" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
func {accumulate}(target *int, n int) {{
	*target = *target + n
}}

func {compute}(values []int) int {{
	result := 0
	for _, v := range values {{
		v := v
		go func() {{
			for i := 0; i < 3; i++ {{
				{accumulate}(&result, v+i)
			}}
		}}()
	}}
	observed := 0
	for i := 0; i < 8; i++ {{
		observed = observed + result
	}}
	return observed
}}
"""
    fixed_body = f"""
func {accumulate}(target *int, n int) {{
	*target = *target + n
}}

func {compute}(values []int) int {{
	result := 0
	for _, v := range values {{
		{accumulate}(&result, v)
	}}
	observed := 0
	for range values {{
		observed = observed + result
	}}
	return observed
}}
"""
    test_body = f"""
func Test{compute}(t *testing.T) {{
	if got := {compute}([]int{{1, 2, 3}}); got < 0 {{
		t.Errorf("unexpected result %d", got)
	}}
}}
"""
    racy = assemble_file(pkg, [], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, [], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_estimator.go"
    test_name = f"{vocab.noun()}_estimator_test.go"
    return build_case(
        case_id=f"unfix-parallelism-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=accumulate,
        racy_variable="result",
        fix_strategy="remove_parallelism",
        difficulty=Difficulty.COMPLEX,
        description="fire-and-forget goroutines write a result the caller returns immediately; the human fix removed the parallelism",
        expected_unfixed_reason=UnfixedReason.CHANGE_PARALLELISM,
        test_function=f"Test{compute}",
        seed=seed,
    )


def make_singleton_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    registry = vocab.type_name() + "Registry"
    get_instance = "Get" + registry
    use = "Resolve" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {registry} struct {{
	entries int
}}

var sharedInstance *{registry}

func {get_instance}() *{registry} {{
	if sharedInstance == nil {{
		sharedInstance = &{registry}{{entries: 1}}
	}}
	return sharedInstance
}}

func {use}(workers int) {{
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			{get_instance}()
		}}()
	}}
	wg.Wait()
}}
"""
    fixed_body = f"""
type {registry} struct {{
	entries int
}}

var sharedInstance *{registry}

var sharedOnce sync.Once

func {get_instance}() *{registry} {{
	sharedOnce.Do(func() {{
		sharedInstance = &{registry}{{entries: 1}}
	}})
	return sharedInstance
}}

func {use}(workers int) {{
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		wg.Add(1)
		go func() {{
			defer wg.Done()
			{get_instance}()
		}}()
	}}
	wg.Wait()
}}
"""
    test_body = f"""
func Test{use}(t *testing.T) {{
	{use}(3)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_registry.go"
    test_name = f"{vocab.noun()}_registry_test.go"
    return build_case(
        case_id=f"unfix-singleton-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=get_instance,
        racy_variable="sharedInstance",
        fix_strategy="once",
        difficulty=Difficulty.COMPLEX,
        description="lazy singleton initialization raced by concurrent getters",
        expected_unfixed_reason=UnfixedReason.SINGLETON,
        test_function=f"Test{use}",
        seed=seed,
    )


def make_deep_copy_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    account = vocab.entity_type() + "Account"
    wrap = "Fulfil" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
type {account} struct {{
	Tags  []string
	Owner string
}}

func {wrap}(acct *{account}, workers int) {{
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {{
		i := i
		wg.Add(1)
		go func() {{
			defer wg.Done()
			snapshot := *acct
			if len(snapshot.Tags) > 0 {{
				snapshot.Tags[0] = snapshot.Owner
			}}
			_ = i
		}}()
	}}
	wg.Wait()
}}
"""
    fixed_body = body.replace(
        """			snapshot := *acct
			if len(snapshot.Tags) > 0 {
				snapshot.Tags[0] = snapshot.Owner
			}""",
        """			snapshot := *acct
			tags := make([]string, len(acct.Tags))
			copy(tags, acct.Tags)
			snapshot.Tags = tags
			if len(snapshot.Tags) > 0 {
				snapshot.Tags[0] = snapshot.Owner
			}""",
    )
    test_body = f"""
func Test{wrap}(t *testing.T) {{
	acct := &{account}{{Tags: []string{{"vip", "beta"}}, Owner: "ops"}}
	{wrap}(acct, 3)
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, ["sync"], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_account.go"
    test_name = f"{vocab.noun()}_account_test.go"
    return build_case(
        case_id=f"unfix-deepcopy-{seed}",
        category=RaceCategory.CAPTURE_BY_REFERENCE,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=wrap,
        racy_variable="Tags",
        fix_strategy="deep_copy",
        difficulty=Difficulty.COMPLEX,
        description="shallow struct copies still share the backing slice; only a deep copy eliminates the race",
        expected_unfixed_reason=UnfixedReason.DEEP_COPY,
        test_function=f"Test{wrap}",
        seed=seed,
    )


def make_business_logic_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    ledger = vocab.type_name() + "Ledger"
    audit = vocab.type_name() + "Audit"
    post = "post" + vocab.field_name()
    reconcile = "reconcile" + vocab.field_name()
    close_books = "CloseBooks" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
var openBalance = 0

type {ledger} struct {{
	pending int
}}

type {audit} struct {{
	flagged int
}}

func (l *{ledger}) {post}(amount int) {{
	l.pending = l.pending + amount
	openBalance = openBalance + amount
}}

func (a *{audit}) {reconcile}() int {{
	if openBalance > 100 {{
		a.flagged = a.flagged + 1
	}}
	return openBalance
}}

func {close_books}(amounts []int) int {{
	ledger := &{ledger}{{}}
	audit := &{audit}{{}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		for _, amount := range amounts {{
			amount := amount
			ledger.{post}(amount)
		}}
	}}()
	total := 0
	go func() {{
		defer wg.Done()
		total = audit.{reconcile}()
	}}()
	wg.Wait()
	return total
}}
"""
    fixed_body = body.replace(
        f"""func {close_books}(amounts []int) int {{
	ledger := &{ledger}{{}}
	audit := &{audit}{{}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {{
		defer wg.Done()
		for _, amount := range amounts {{
			amount := amount
			ledger.{post}(amount)
		}}
	}}()
	total := 0
	go func() {{
		defer wg.Done()
		total = audit.{reconcile}()
	}}()
	wg.Wait()
	return total
}}""",
        f"""func {close_books}(amounts []int) int {{
	ledger := &{ledger}{{}}
	audit := &{audit}{{}}
	for _, amount := range amounts {{
		ledger.{post}(amount)
	}}
	return audit.{reconcile}()
}}""",
    )
    test_body = f"""
func Test{close_books}(t *testing.T) {{
	{close_books}([]int{{40, 80, 20}})
}}
"""
    racy = assemble_file(pkg, ["sync"], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, [], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_ledger.go"
    test_name = f"{vocab.noun()}_ledger_test.go"
    return build_case(
        case_id=f"unfix-business-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=post,
        racy_variable="openBalance",
        fix_strategy="business_redesign",
        difficulty=Difficulty.COMPLEX,
        description="two unrelated aggregates race through a package-level balance; fixing it means rethinking the posting flow",
        expected_unfixed_reason=UnfixedReason.BUSINESS_LOGIC,
        test_function=f"Test{close_books}",
        seed=seed,
    )


def make_large_refactoring_case(seed: int, noise_level: int = 1) -> RaceCase:
    vocab = vocab_for(seed)
    pkg = vocab.package_name()
    fetch = "FetchAll" + vocab.field_name()
    worker = "page" + vocab.field_name()
    noise_funcs, noise_structs = scaled_noise(noise_level)

    body = f"""
var pageCursor = 0

func {worker}(results chan int, step int) {{
	pageCursor = pageCursor + step
	results <- pageCursor
}}

func {fetch}(batches int) int {{
	results := make(chan int, batches)
	stop := make(chan int, 1)
	collected := 0
	go func() {{
		for i := 0; i < batches; i++ {{
			go {worker}(results, i+1)
		}}
	}}()
	go func() {{
		for i := 0; i < batches; i++ {{
			value := <-results
			collected = collected + value
		}}
		stop <- collected
	}}()
	final := <-stop
	if pageCursor > final {{
		return final
	}}
	return collected
}}
"""
    fixed_body = f"""
func {worker}(results chan int, cursor int, step int) {{
	results <- cursor + step
}}

func {fetch}(batches int) int {{
	results := make(chan int, batches)
	stop := make(chan int, 1)
	go func() {{
		cursor := 0
		for i := 0; i < batches; i++ {{
			cursor = cursor + i + 1
			{worker}(results, cursor, 0)
		}}
	}}()
	go func() {{
		collected := 0
		for i := 0; i < batches; i++ {{
			value := <-results
			collected = collected + value
		}}
		stop <- collected
	}}()
	return <-stop
}}
"""
    test_body = f"""
func Test{fetch}(t *testing.T) {{
	if got := {fetch}(3); got < 0 {{
		t.Errorf("unexpected total %d", got)
	}}
}}
"""
    racy = assemble_file(pkg, [], body, vocab, noise_funcs, noise_structs)
    fixed = assemble_file(pkg, [], fixed_body, vocab, noise_funcs, noise_structs)
    test = assemble_file(pkg, ["testing"], test_body)
    file_name = f"{vocab.noun()}_pager.go"
    test_name = f"{vocab.noun()}_pager_test.go"
    return build_case(
        case_id=f"unfix-refactor-{seed}",
        category=RaceCategory.MISSING_SYNCHRONIZATION,
        package_name=pkg,
        racy_files=[(file_name, racy), (test_name, test)],
        fixed_files=[(file_name, fixed), (test_name, test)],
        racy_file=file_name,
        racy_function=worker,
        racy_variable="pageCursor",
        fix_strategy="refactor",
        difficulty=Difficulty.COMPLEX,
        description="a package-level cursor threaded through nested goroutines and channels; fixing it requires restructuring the pipeline",
        expected_unfixed_reason=UnfixedReason.LARGE_REFACTORING,
        test_function=f"Test{fetch}",
        seed=seed,
    )
