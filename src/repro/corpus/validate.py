"""Metamorphic ground-truth validation for corpus cases.

Every case a corpus emits — template-generated or mutant — must satisfy the
metamorphic contract its label promises:

* ``expected_race=True``: the detector reports a race **at the labeled
  symbols** (the racy variable appears in the report), the attached human fix
  validates clean (builds, no reports, no test failures), and — for fixable
  cases — the diagnosis layer agrees with the labeled category;
* ``expected_race=False`` (sync-injected mutants): the package builds, its
  tests pass, and **no** race is reported.

The harness is reusable: :func:`validate_case` checks one case,
:func:`validate_corpus` sweeps a whole corpus and aggregates the failures.
``tests/corpus/test_mutation_metamorphic.py`` drives it over sampled mutant
corpora; ``benchmarks/bench_corpus_scale.py`` reports its pass rate at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.corpus.ground_truth import RaceCase
from repro.diagnosis.diagnose import RaceDiagnoser
from repro.runtime.harness import run_package_tests


@dataclass
class CaseValidation:
    """Outcome of validating one case against its ground-truth label."""

    case_id: str
    expected_race: bool
    problems: List[str] = field(default_factory=list)
    #: Diagnosis category value when one was computed (racy cases only).
    diagnosed_category: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        label = "racy" if self.expected_race else "race-free"
        status = "ok" if self.ok else "; ".join(self.problems)
        return f"{self.case_id} [{label}]: {status}"


@dataclass
class CorpusValidation:
    """Aggregated validation outcome over a set of cases."""

    results: List[CaseValidation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> List[CaseValidation]:
        return [result for result in self.results if not result.ok]

    def summary(self) -> str:
        failures = self.failures()
        head = (f"validated {len(self.results)} case(s): "
                f"{len(self.results) - len(failures)} ok, {len(failures)} failing")
        if not failures:
            return head
        lines = [head] + [f"  {failure.render()}" for failure in failures[:20]]
        if len(failures) > 20:
            lines.append(f"  ... and {len(failures) - 20} more")
        return "\n".join(lines)


def validate_case(case: RaceCase, runs: int = 10, seed: int = 0) -> CaseValidation:
    """Check one case's metamorphic contract (see module docstring)."""
    result = CaseValidation(case_id=case.case_id, expected_race=case.expected_race)
    if not case.expected_race:
        outcome = run_package_tests(case.package, runs=runs, seed=seed)
        if not outcome.built:
            result.problems.append("race-free mutant does not build")
            return result
        if outcome.reports:
            variables = ", ".join(sorted({r.variable or "?" for r in outcome.reports}))
            result.problems.append(f"race-free mutant still races (on {variables})")
        if outcome.test_failures:
            result.problems.append("race-free mutant fails its tests")
        return result

    report = case.race_report(runs=runs, seed=seed)
    if report is None:
        result.problems.append("labeled race does not reproduce")
    else:
        # Map/slice races report the runtime object (`map[string]int(map)`),
        # not the labeled field name — for those, the racy *function* must
        # appear in the report's stacks instead.
        variable_ok = bool(
            case.racy_variable and case.racy_variable in (report.variable or "")
        )
        function_ok = bool(case.racy_function) and any(
            case.racy_function in fn for fn in report.involved_functions()
        )
        if not variable_ok and not function_ok:
            result.problems.append(
                f"race reported on `{report.variable}` in "
                f"{sorted(report.involved_functions())}, expected symbol "
                f"`{case.racy_variable}` (function `{case.racy_function}`)"
            )
        diagnosis = RaceDiagnoser(case.package).diagnose(report)
        result.diagnosed_category = diagnosis.category.value
        if case.expected_unfixed_reason is None and diagnosis.category is not case.category:
            result.problems.append(
                f"diagnosed {diagnosis.category.value}, labeled {case.category.value}"
            )
    fixed = run_package_tests(case.fixed_package, runs=runs, seed=seed)
    if not fixed.built:
        result.problems.append("human fix does not build")
    else:
        if fixed.reports:
            result.problems.append("human fix still races")
        if fixed.test_failures:
            result.problems.append("human fix fails its tests")
    return result


def validate_corpus(
    cases: Sequence[RaceCase], runs: int = 10, seed: int = 0
) -> CorpusValidation:
    """Validate every case; the result aggregates per-case failures."""
    return CorpusValidation(
        results=[validate_case(case, runs=runs, seed=seed) for case in cases]
    )


__all__ = ["CaseValidation", "CorpusValidation", "validate_case", "validate_corpus"]
