"""Synthetic racy-Go corpus: the stand-in for Uber's proprietary monorepo.

The corpus generator produces :class:`~repro.corpus.ground_truth.RaceCase`
objects — a racy Go package, its ground-truth (human) fix, the race category,
and difficulty attributes — in the category mix of Table 3.  Cases are split
into a *vector-database* set (the curated fixed examples of Section 4.1) and
an *evaluation* set (the 403 reproducible races of RQ2), mirroring the paper's
protocol of keeping the two disjoint.

Business-logic noise (extra helper functions, domain-specific identifiers) is
injected per seed so that raw-text retrieval degrades while skeleton-based
retrieval does not — the property Figure 3 measures.
"""

from repro.corpus.ground_truth import CaseFilter, Difficulty, RaceCase
from repro.corpus.generator import CorpusGenerator, CorpusConfig
from repro.corpus.dataset import Dataset, CorpusStatistics
from repro.corpus.mutate import TemplateMutator, mutate_corpus
from repro.corpus.validate import validate_case, validate_corpus

__all__ = [
    "RaceCase",
    "CaseFilter",
    "Difficulty",
    "CorpusGenerator",
    "CorpusConfig",
    "Dataset",
    "CorpusStatistics",
    "TemplateMutator",
    "mutate_corpus",
    "validate_case",
    "validate_corpus",
]
