"""Dataset container and corpus statistics (feeds Table 1 and Table 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.diagnosis.categories import CategoryDistribution, RaceCategory
from repro.corpus.ground_truth import RaceCase


@dataclass
class CorpusStatistics:
    """Aggregate size statistics of a set of cases (the Table 1 analogue)."""

    packages: int = 0
    files: int = 0
    test_files: int = 0
    product_files: int = 0
    lines: int = 0
    test_lines: int = 0
    product_lines: int = 0
    concurrency_files: int = 0
    concurrency_lines: int = 0

    def as_rows(self) -> List[tuple[str, int, int, int]]:
        """Rows shaped like Table 1: (metric, total, product, test)."""
        return [
            ("Files", self.files, self.product_files, self.test_files),
            ("Lines of code", self.lines, self.product_lines, self.test_lines),
        ]


@dataclass
class Dataset:
    """The two corpus splits plus derived statistics."""

    db_examples: List[RaceCase] = field(default_factory=list)
    evaluation: List[RaceCase] = field(default_factory=list)
    config: Optional[object] = None

    # ------------------------------------------------------------------

    def all_cases(self) -> List[RaceCase]:
        return list(self.db_examples) + list(self.evaluation)

    def fixable_eval_cases(self) -> List[RaceCase]:
        return [case for case in self.evaluation if case.expected_unfixed_reason is None]

    def unfixable_eval_cases(self) -> List[RaceCase]:
        return [case for case in self.evaluation if case.expected_unfixed_reason is not None]

    def category_distribution(self, cases: Optional[List[RaceCase]] = None) -> CategoryDistribution:
        cases = cases if cases is not None else self.evaluation
        counts: Dict[RaceCategory, int] = {}
        for case in cases:
            counts[case.category] = counts.get(case.category, 0) + 1
        return CategoryDistribution(counts=counts)

    # ------------------------------------------------------------------

    def statistics(self, cases: Optional[List[RaceCase]] = None) -> CorpusStatistics:
        cases = cases if cases is not None else self.all_cases()
        stats = CorpusStatistics()
        stats.packages = len(cases)
        for case in cases:
            for file in case.package.files:
                lines = len(file.source.splitlines())
                stats.files += 1
                stats.lines += lines
                if file.is_test_file():
                    stats.test_files += 1
                    stats.test_lines += lines
                else:
                    stats.product_files += 1
                    stats.product_lines += lines
                if _mentions_concurrency(file.source):
                    stats.concurrency_files += 1
                    stats.concurrency_lines += lines
        return stats

    def human_fix_locs(self, cases: Optional[List[RaceCase]] = None) -> List[int]:
        cases = cases if cases is not None else self.evaluation
        return [case.human_fix_loc() for case in cases]


def _mentions_concurrency(source: str) -> bool:
    markers = ("go func", "sync.", "chan ", "<-", "atomic.", "t.Parallel")
    return any(marker in source for marker in markers)
