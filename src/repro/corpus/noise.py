"""Business-logic noise generation for corpus programs.

The paper motivates the skeleton abstraction by noting that industrial code is
"dense with domain-specific logic and terminology", which makes standard
retrieval prioritize business logic over concurrency patterns.  This module
produces that noise: domain-flavoured identifier names and filler helper
functions that carry no concurrency content, parameterized by a seed so every
corpus case gets its own vocabulary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

#: Domain vocabularies loosely inspired by a ride-hailing / delivery company.
_DOMAINS: List[List[str]] = [
    ["trip", "rider", "driver", "fare", "surge", "route", "pickup", "dropoff"],
    ["store", "merchant", "catalog", "inventory", "shipment", "courier", "basket", "refund"],
    ["payment", "invoice", "ledger", "settlement", "payout", "dispute", "wallet", "balance"],
    ["freight", "load", "carrier", "dock", "pallet", "waybill", "tariff", "manifest"],
    ["rating", "feedback", "review", "score", "survey", "sentiment", "moderation", "badge"],
    ["session", "token", "identity", "device", "profile", "consent", "audit", "quota"],
    ["menu", "order", "kitchen", "prep", "dispatch", "eta", "batch", "zone"],
    ["document", "bazaar", "defect", "proposal", "replica", "shard", "region", "cluster"],
]

_SUFFIXES = ["Service", "Manager", "Controller", "Handler", "Gateway", "Client", "Store", "Engine"]
_VERBS = ["Load", "Fetch", "Compute", "Resolve", "Validate", "Normalize", "Publish", "Archive",
          "Reconcile", "Enrich", "Project", "Hydrate"]
_FIELD_NOUNS = ["Limit", "Count", "Status", "Region", "Window", "Quota", "Threshold", "Version",
                "Deadline", "Priority", "Weight", "Label"]


def _camel(words: Sequence[str]) -> str:
    return "".join(w[:1].upper() + w[1:] for w in words)


def _lower_camel(words: Sequence[str]) -> str:
    camel = _camel(words)
    return camel[:1].lower() + camel[1:]


@dataclass
class Vocabulary:
    """A per-case naming vocabulary drawn from one domain."""

    domain: List[str]
    rng: random.Random

    def noun(self) -> str:
        return self.rng.choice(self.domain)

    def type_name(self) -> str:
        return _camel([self.noun()]) + self.rng.choice(_SUFFIXES)

    def entity_type(self) -> str:
        return _camel([self.noun(), self.rng.choice(["Record", "Entry", "Snapshot", "Request",
                                                      "Response", "Config", "Params"])])

    def func_name(self, exported: bool = True) -> str:
        words = [self.rng.choice(_VERBS), self.noun(), self.rng.choice(_FIELD_NOUNS)]
        return _camel(words) if exported else _lower_camel(words)

    def var_name(self) -> str:
        return _lower_camel([self.noun(), self.rng.choice(_FIELD_NOUNS)])

    def field_name(self) -> str:
        return _camel([self.noun(), self.rng.choice(_FIELD_NOUNS)])

    def package_name(self) -> str:
        return self.noun() + self.rng.choice(["svc", "srv", "api", "core", "lib"])

    def string_value(self) -> str:
        return f"{self.noun()}-{self.rng.randint(100, 999)}"


def make_vocabulary(seed: int) -> Vocabulary:
    """Create a deterministic vocabulary for a corpus case."""
    rng = random.Random(seed)
    domain = list(rng.choice(_DOMAINS))
    rng.shuffle(domain)
    return Vocabulary(domain=domain, rng=rng)


def noise_helper_functions(vocab: Vocabulary, count: int) -> str:
    """Generate ``count`` pure business-logic helper functions (no concurrency)."""
    chunks: List[str] = []
    for _ in range(max(0, count)):
        name = vocab.func_name(exported=vocab.rng.random() < 0.5)
        param = vocab.var_name()
        field = vocab.field_name()
        threshold = vocab.rng.randint(2, 40)
        factor = vocab.rng.randint(2, 9)
        label = vocab.string_value()
        chunks.append(
            f"""
func {name}({param} int) (int, string) {{
	adjusted := {param} * {factor}
	if adjusted > {threshold} {{
		adjusted = adjusted - {threshold}
	}}
	tag := "{label}"
	if adjusted == 0 {{
		tag = "{field}"
	}}
	return adjusted, tag
}}
"""
        )
    return "\n".join(chunk.strip("\n") for chunk in chunks)


def noise_struct(vocab: Vocabulary, field_count: int = 4) -> str:
    """Generate a plain data struct with domain fields (no concurrency)."""
    name = vocab.entity_type()
    fields = []
    used = set()
    for _ in range(field_count):
        field = vocab.field_name()
        if field in used:
            field = field + str(vocab.rng.randint(2, 99))
        used.add(field)
        type_name = vocab.rng.choice(["int", "string", "bool", "int64"])
        fields.append(f"\t{field} {type_name}")
    body = "\n".join(fields)
    return f"type {name} struct {{\n{body}\n}}"


def noise_comment(vocab: Vocabulary) -> str:
    """A plausible doc comment line."""
    return f"// {vocab.func_name()} adjusts {vocab.noun()} {vocab.rng.choice(_FIELD_NOUNS).lower()} before dispatch."
