"""LLM substrate: the generative model Dr.Fix orchestrates.

Because this reproduction runs offline, the OpenAI models of the paper are
replaced by :class:`~repro.llm.simulated.SimulatedLLM`: a model that parses the
exact prompt Dr.Fix constructs (Appendix E format), chooses a concurrency fix
*strategy*, applies it as a real AST transformation, and returns the entire
revised code — never seeing the ground truth.  Model *profiles* (gpt-4-turbo,
gpt-4o, o1-preview, and a weak open-source stand-in) differ in

* which strategies they can select without guidance (their "inherent
  capability", the paper's 47% no-RAG baseline),
* which strategies they can apply when the retrieved example demonstrates the
  pattern (the RAG uplift to 66%),
* how much large contexts degrade them (the function-vs-file scope ablation),
* how well they exploit validation-failure feedback (the retry ablation).

The orchestration layer talks to the model through the
:class:`~repro.llm.base.LLMClient` protocol, so a real API-backed client can be
swapped in without touching the pipeline.
"""

from repro.llm.base import ChatMessage, LLMClient, ModelResponse
from repro.llm.prompt_parser import FixTask, parse_fix_prompt
from repro.llm.simulated import MODEL_PROFILES, ModelProfile, SimulatedLLM
from repro.llm.strategies import STRATEGY_REGISTRY

__all__ = [
    "ChatMessage",
    "LLMClient",
    "ModelResponse",
    "FixTask",
    "parse_fix_prompt",
    "SimulatedLLM",
    "ModelProfile",
    "MODEL_PROFILES",
    "STRATEGY_REGISTRY",
]
