"""Recover a structured fix task from the Dr.Fix prompt text.

The simulated model receives exactly what a real model would receive: the
prompt that :mod:`repro.core.prompts` builds (Appendix E format).  This module
parses that text back into a :class:`FixTask` — the target code, the race
description (variable, lines, functions), the retrieved example pair, and any
validation-failure feedback — without any side channel to the ground truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_CODE_RE = re.compile(r"<code>\n?(?P<code>.*?)\n?</code>", re.DOTALL)
_EXAMPLE_RE = re.compile(
    r"Example (?P<index>\d+) \(Code with data race\):\n```go\n(?P<buggy>.*?)\n```\n"
    r"Example (?P=index) \(Code after fixing data race\):\n```go\n(?P<fixed>.*?)\n```",
    re.DOTALL,
)
_VARIABLE_RE = re.compile(r"shared variable `(?P<name>[^`]+)`")
_LINES_RE = re.compile(r"line (?P<line>\d+)")
_FUNCTIONS_RE = re.compile(r"racing functions are: (?P<names>[^\n]+)")
_FEEDBACK_RE = re.compile(
    r"Previous attempt feedback:\n```\n(?P<feedback>.*?)\n```", re.DOTALL
)
_SCOPE_RE = re.compile(r"fix the data race in the golang (?P<scope>function|file)")
_FILE_RE = re.compile(r"The code is from file `(?P<file>[^`]+)`")
_DIAGNOSIS_RE = re.compile(r"Race diagnosis: category=(?P<category>[a-z-]+)")


@dataclass
class FixTask:
    """Everything the model knows about one fix attempt."""

    code: str = ""
    scope: str = "function"  # "function" | "file"
    file_name: str = ""
    racy_variable: str = ""
    racy_lines: List[int] = field(default_factory=list)
    racy_functions: List[str] = field(default_factory=list)
    example: Optional[Tuple[str, str]] = None
    feedback: str = ""
    #: The diagnosis layer's category for this race (wire value, may be empty).
    diagnosis_category: str = ""

    @property
    def has_example(self) -> bool:
        return self.example is not None and bool(self.example[0].strip())

    @property
    def code_lines(self) -> int:
        return len(self.code.splitlines())


def parse_fix_prompt(system: str, user: str) -> FixTask:
    """Parse the (system, user) prompt pair into a :class:`FixTask`.

    Unknown or missing sections degrade gracefully to empty fields so the model
    behaves sensibly even on malformed prompts (it simply has less to go on).
    """
    del system  # The system prompt carries instructions, not task data.
    task = FixTask()
    # The prompt's instructions mention "<code> </code>" inline; the real code
    # block is the last (and largest) occurrence.
    code_match = None
    for candidate in _CODE_RE.finditer(user):
        if code_match is None or len(candidate.group("code")) > len(code_match.group("code")):
            code_match = candidate
    if code_match:
        task.code = code_match.group("code")
    scope_match = _SCOPE_RE.search(user)
    if scope_match:
        task.scope = "file" if scope_match.group("scope") == "file" else "function"
    file_match = _FILE_RE.search(user)
    if file_match:
        task.file_name = file_match.group("file")
    # Only consider the descriptive part (before the <code> block) for the race
    # description so variable names inside the code do not confuse parsing.
    description = user[: code_match.start()] if code_match else user
    variable_match = _VARIABLE_RE.search(description)
    if variable_match:
        task.racy_variable = variable_match.group("name")
    task.racy_lines = [int(m.group("line")) for m in _LINES_RE.finditer(description)]
    functions_match = _FUNCTIONS_RE.search(description)
    if functions_match:
        task.racy_functions = [
            name.strip() for name in functions_match.group("names").split(",") if name.strip()
        ]
    diagnosis_match = _DIAGNOSIS_RE.search(description)
    if diagnosis_match:
        task.diagnosis_category = diagnosis_match.group("category")
    example_match = _EXAMPLE_RE.search(user)
    if example_match:
        task.example = (example_match.group("buggy"), example_match.group("fixed"))
    feedback_match = _FEEDBACK_RE.search(user)
    if feedback_match:
        task.feedback = feedback_match.group("feedback").strip()
    return task
