"""The simulated LLM and its model profiles.

The simulated model behaves like the models the paper orchestrates, at the
level the evaluation measures:

* it reads only the prompt (no ground-truth side channel);
* without an example it can apply the widely-known idioms (its *base*
  strategies — the 47% "inherent capability" of Section 4.4);
* a retrieved example whose structure demonstrates a repair pattern unlocks
  that pattern (*guided* strategies — the RAG uplift);
* long, noisy contexts degrade it ("lost in the middle", Section 5.3's
  function-vs-file ablation); validation-failure feedback re-anchors it;
* everything is deterministic: stochastic effects are driven by a stable hash
  of (code, model, attempt), not a global RNG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.diagnosis import (
    category_from_value,
    infer_pattern_from_example,
    pattern_names,
    patterns_for_category,
)
from repro.llm.base import ChatMessage, ModelResponse
from repro.llm.prompt_parser import FixTask, parse_fix_prompt
from repro.llm.strategies import ordered_strategies, parse_scope


@dataclass(frozen=True)
class ModelProfile:
    """Capability profile of one underlying model."""

    name: str
    #: Strategies the model applies from its own training (no example needed).
    base_strategies: frozenset[str]
    #: Strategies the model can follow when a retrieved example demonstrates them.
    guided_strategies: frozenset[str]
    #: Lines of irrelevant context the model tolerates before degrading.
    context_capacity: int
    #: Fraction of context-induced failures eliminated by failure feedback.
    feedback_discipline: float
    #: Probability of correctly imitating a demonstrated complex pattern.
    guided_reliability: float

    def allowed_strategies(self, demonstrated: Optional[str]) -> Set[str]:
        allowed = set(self.base_strategies)
        if demonstrated and demonstrated in (self.guided_strategies | self.base_strategies):
            allowed.add(demonstrated)
        return allowed


# Every registered fix pattern: a newly registered @fix_pattern is guided-
# capable for the frontier profiles without touching this module.
_ALL_STRATEGIES = frozenset(pattern_names())

#: Profiles for the models used in the paper plus a weak open-source stand-in
#: (Section 5.6 notes open-source models were unpromising).
MODEL_PROFILES: Dict[str, ModelProfile] = {
    "gpt-4-turbo": ModelProfile(
        name="gpt-4-turbo",
        base_strategies=frozenset(
            {"redeclare", "loop_var_copy", "privatize_local_copy", "move_wg_add",
             "rand_per_request"}
        ),
        guided_strategies=_ALL_STRATEGIES,
        context_capacity=95,
        feedback_discipline=0.70,
        guided_reliability=0.85,
    ),
    "gpt-4o": ModelProfile(
        name="gpt-4o",
        base_strategies=frozenset(
            {"redeclare", "loop_var_copy", "privatize_local_copy", "move_wg_add",
             "rand_per_request", "mutex_guard"}
        ),
        guided_strategies=_ALL_STRATEGIES,
        context_capacity=115,
        feedback_discipline=0.78,
        guided_reliability=0.90,
    ),
    "o1-preview": ModelProfile(
        name="o1-preview",
        base_strategies=frozenset(
            {"redeclare", "loop_var_copy", "privatize_local_copy", "move_wg_add",
             "rand_per_request", "mutex_guard", "struct_copy", "channel_error",
             "complete_locking", "parallel_test_isolation"}
        ),
        guided_strategies=_ALL_STRATEGIES,
        context_capacity=170,
        feedback_discipline=0.88,
        guided_reliability=0.95,
    ),
    "oss-code-llama": ModelProfile(
        name="oss-code-llama",
        base_strategies=frozenset({"redeclare", "loop_var_copy"}),
        guided_strategies=frozenset(
            {"privatize_local_copy", "move_wg_add", "mutex_guard", "rand_per_request"}
        ),
        context_capacity=55,
        feedback_discipline=0.4,
        guided_reliability=0.6,
    ),
}


def _stable_unit_draw(*parts: str) -> float:
    """A deterministic pseudo-random number in [0, 1) derived from ``parts``."""
    digest = hashlib.blake2b("||".join(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2 ** 64


@dataclass
class SimulatedLLM:
    """An :class:`~repro.llm.base.LLMClient` backed by the strategy library."""

    profile: ModelProfile = field(default_factory=lambda: MODEL_PROFILES["gpt-4o"])
    #: Identifier mixed into deterministic draws so repeated attempts differ.
    attempt_salt: str = ""

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------

    def complete(self, messages: List[ChatMessage]) -> ModelResponse:
        system = next((m.content for m in messages if m.role == "system"), "")
        user = next((m.content for m in messages if m.role == "user"), "")
        task = parse_fix_prompt(system, user)
        return self.fix(task)

    def fix(self, task: FixTask) -> ModelResponse:
        """Attempt to produce a fixed version of ``task.code``."""
        scope = parse_scope(task.code)
        if scope is None or not task.code.strip():
            return ModelResponse(content=task.code, model=self.name, refused=True,
                                 notes=["could not parse the provided code"])

        demonstrated = None
        if task.has_example:
            demonstrated = infer_pattern_from_example(task.example[0], task.example[1])
        allowed = self.profile.allowed_strategies(demonstrated)

        # Context-length degradation: with too much irrelevant code and no
        # anchoring feedback, the model fails to localize the defect.
        distraction = self._distraction_probability(task)
        if distraction > 0:
            draw = _stable_unit_draw(task.code, self.name, task.scope, task.feedback,
                                     "distraction")
            if draw < distraction:
                return ModelResponse(
                    content=task.code,
                    model=self.name,
                    refused=True,
                    notes=[
                        f"context of {task.code_lines} lines exceeded reliable capacity; "
                        "fix applied to the wrong region"
                    ],
                )

        # Prefer the demonstrated strategy, then patterns matching the prompt's
        # race diagnosis (the category drives which pattern the model imitates),
        # then the remaining allowed ones in specificity order.
        strategies = ordered_strategies(allowed)
        category_patterns: Set[str] = set()
        if task.diagnosis_category:
            category = category_from_value(task.diagnosis_category)
            if category is not None:
                category_patterns = {p.name for p in patterns_for_category(category)}

        def preference(strategy) -> int:
            if demonstrated and demonstrated in allowed and strategy.name == demonstrated:
                return 0
            if strategy.name in category_patterns:
                return 1
            return 2

        strategies.sort(key=preference)
        for strategy in strategies:
            plan = strategy.detect(task, scope)
            if plan is None:
                continue
            guided = demonstrated == strategy.name and strategy.name not in self.profile.base_strategies
            if guided:
                draw = _stable_unit_draw(task.code, self.name, strategy.name,
                                         "imitation")
                if draw > self.profile.guided_reliability:
                    continue  # failed to imitate the demonstrated pattern
            revised = strategy.apply(task, scope, plan)
            if revised is None or revised.strip() == task.code.strip():
                continue
            return ModelResponse(
                content=revised,
                model=self.name,
                strategy=strategy.name,
                guided_by_example=guided,
                notes=[f"applied {strategy.name}"],
            )
        return ModelResponse(
            content=task.code,
            model=self.name,
            refused=True,
            notes=["no applicable repair pattern found"],
        )

    # ------------------------------------------------------------------

    def _distraction_probability(self, task: FixTask) -> float:
        relevant = self._relevant_lines(task)
        noise = max(0, task.code_lines - relevant)
        probability = min(0.9, noise / max(1, self.profile.context_capacity))
        if task.feedback:
            probability *= 1.0 - self.profile.feedback_discipline
        return probability

    def _relevant_lines(self, task: FixTask) -> int:
        if task.scope == "function":
            return task.code_lines
        if not task.racy_functions:
            return min(30, task.code_lines)
        # Report frames use qualified names ("Type.Method", "Parent.func1");
        # anchor on the plain declaration names.
        names: Set[str] = set()
        for qualified in task.racy_functions:
            for part in qualified.split("."):
                if part and not part.startswith("func"):
                    names.add(part)
            names.add(qualified.split(".")[0])
        lines = task.code.splitlines()
        relevant = 0
        inside = False
        depth = 0
        for line in lines:
            if not inside:
                if any(f"func {name}(" in line or f") {name}(" in line for name in names):
                    inside = True
                    depth = line.count("{") - line.count("}")
                    relevant += 1
            else:
                relevant += 1
                depth += line.count("{") - line.count("}")
                if depth <= 0:
                    inside = False
        return max(relevant, 10)


def make_client(model_name: str, attempt_salt: str = "") -> SimulatedLLM:
    """Construct a simulated client for a named model profile."""
    profile = MODEL_PROFILES.get(model_name)
    if profile is None:
        raise KeyError(f"unknown model profile: {model_name!r} "
                       f"(available: {sorted(MODEL_PROFILES)})")
    return SimulatedLLM(profile=profile, attempt_salt=attempt_salt)
