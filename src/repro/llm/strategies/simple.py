"""Single-function fix strategies: redeclaration, privatization, loop-variable
copies, ``wg.Add`` placement, and per-request ``rand.Source`` creation."""

from __future__ import annotations

from typing import List, Optional

from repro.diagnosis import examples
from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import fix_pattern
from repro.golang import ast_nodes as ast
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan


@fix_pattern(
    categories=(RaceCategory.CAPTURE_BY_REFERENCE,),
    specificity=60,
    example_rank=200,
    description="Re-declaring captured variables inside the goroutine",
    signature=examples.assignment_became_declaration,
)
class RedeclareStrategy(FixStrategy):
    """Listing 1 → Listing 2: re-declare the captured variable inside the goroutine.

    Applies when a goroutine closure assigns (with ``=``) to a variable captured
    from the enclosing function and the closure does not need the enclosing
    value: making the assignment a fresh ``:=`` declaration removes the sharing.
    """

    name = "redeclare"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        for func in self.functions(scope):
            for _, closure in self.go_closures(func):
                candidates = self._candidate_vars(func, closure, target)
                for name in candidates:
                    assigns = self.closure_assigns(closure, name)
                    simple = [a for a in assigns if all(isinstance(t, ast.Ident) for t in a.lhs)]
                    if simple and not self._read_before_assign(closure, name, simple[0]):
                        return StrategyPlan(
                            strategy=self.name,
                            data={"function": func.name, "variable": name},
                        )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        name = plan.data["variable"]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            for _, closure in self.go_closures(func):
                assigns = self.closure_assigns(closure, name)
                simple = [a for a in assigns if all(isinstance(t, ast.Ident) for t in a.lhs)]
                if simple:
                    simple[0].tok = ":="
                    return clone.render()
        return None

    def _candidate_vars(self, func: ast.FuncDecl, closure: ast.FuncLit,
                        target: str) -> List[str]:
        names: List[str] = []
        if target and self.declared_in_function(func, target) \
                and self.closure_assigns(closure, target):
            names.append(target)
        if not names:
            for node in ast.walk(closure.body):
                if isinstance(node, ast.AssignStmt) and node.tok != ":=":
                    for expr in node.lhs:
                        if isinstance(expr, ast.Ident) and self.declared_in_function(func, expr.name):
                            names.append(expr.name)
        return names

    def _read_before_assign(self, closure: ast.FuncLit, name: str,
                            assign: ast.AssignStmt) -> bool:
        """True when the closure reads the captured value before (re)assigning it —
        re-declaring would then change behaviour, so the strategy declines."""
        for node in ast.walk(closure.body):
            if node is assign:
                return False
            if isinstance(node, ast.Ident) and node.name == name:
                return True
        return False


@fix_pattern(
    categories=(RaceCategory.LOOP_VARIABLE_CAPTURE,),
    specificity=100,
    example_rank=170,
    description="Privatizing captured loop variables",
    signature=examples.added_loop_self_copy,
)
class LoopVarCopyStrategy(FixStrategy):
    """Listing 11: privatize a range variable captured by goroutines (``x := x``)."""

    name = "loop_var_copy"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        for func in self.functions(scope):
            for node in ast.walk(func.body):
                if not isinstance(node, ast.RangeStmt):
                    continue
                loop_vars = [
                    expr.name
                    for expr in (node.key, node.value)
                    if isinstance(expr, ast.Ident) and expr.name != "_"
                ]
                if not loop_vars:
                    continue
                captured = self._captured_loop_vars(node, loop_vars)
                if not captured:
                    continue
                variable = target if target in captured else captured[0]
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "variable": variable},
                )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        variable = plan.data["variable"]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            for node in ast.walk(func.body):
                if isinstance(node, ast.RangeStmt) and self._captured_loop_vars(
                    node, [variable]
                ):
                    already = any(
                        isinstance(stmt, ast.AssignStmt)
                        and stmt.tok == ":="
                        and len(stmt.lhs) == 1
                        and isinstance(stmt.lhs[0], ast.Ident)
                        and stmt.lhs[0].name == variable
                        for stmt in node.body.stmts
                    )
                    if not already:
                        copy_stmt = ast.AssignStmt(
                            lhs=[ast.ident(variable)], tok=":=", rhs=[ast.ident(variable)]
                        )
                        node.body.stmts.insert(0, copy_stmt)
                    return clone.render()
        return None

    def _captured_loop_vars(self, node: ast.RangeStmt, loop_vars: List[str]) -> List[str]:
        captured: List[str] = []
        for inner in ast.walk(node.body):
            if isinstance(inner, ast.GoStmt) and isinstance(inner.call.fun, ast.FuncLit):
                closure = inner.call.fun
                params = {name for field in closure.type_.params for name in field.names}
                arg_names = {
                    arg.name for arg in inner.call.args if isinstance(arg, ast.Ident)
                }
                for name in loop_vars:
                    if name in params or name in arg_names:
                        continue  # already passed as a parameter
                    if self.references_name(closure.body, name):
                        captured.append(name)
        return captured


@fix_pattern(
    categories=(RaceCategory.CAPTURE_BY_REFERENCE,),
    specificity=55,
    example_rank=190,
    description="Creating per-goroutine copies / passing values as parameters",
    signature=examples.privatized_local_copy,
)
class PrivatizeLocalCopyStrategy(FixStrategy):
    """Listing 5 / Listing 14: give each goroutine its own copy of the shared value."""

    name = "privatize_local_copy"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        for func in self.functions(scope):
            closures = self.go_closures(func)
            if not closures:
                continue
            candidates = self._candidates(func, closures, target)
            if candidates:
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "variable": candidates[0]},
                )
        return None

    def _candidates(self, func, closures, target: str) -> List[str]:
        names: List[str] = []
        writable: List[str] = []
        for _, closure in closures:
            for node in ast.walk(closure.body):
                if isinstance(node, ast.AssignStmt) and node.tok != ":=":
                    for expr in node.lhs:
                        base = ast.base_name(expr)
                        if base and self.declared_in_function(func, base):
                            writable.append(base)
        for name in writable:
            shared_readers = 0
            for _, closure in closures:
                if self.references_name(closure.body, name):
                    shared_readers += 1
            if shared_readers >= 1 and name not in names:
                names.append(name)
        if target:
            # The reported racy name may be a struct field; map it back to the
            # captured variable whose field is written.
            for name in writable:
                if name == target and name not in names:
                    names.insert(0, name)
            for _, closure in closures:
                for node in ast.walk(closure.body):
                    if isinstance(node, ast.SelectorExpr) and node.sel == target:
                        base = ast.base_name(node)
                        if base and self.declared_in_function(func, base) and base not in names:
                            names.insert(0, base)
        return names

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        variable = plan.data["variable"]
        local_name = "local" + variable[:1].upper() + variable[1:]
        changed = False
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            for _, closure in self.go_closures(func):
                if not self.references_name(closure.body, variable):
                    continue
                self.rename_in_node(closure.body, variable, local_name)
                copy_stmt = ast.AssignStmt(
                    lhs=[ast.ident(local_name)], tok=":=", rhs=[ast.ident(variable)]
                )
                insert_at = 0
                for index, stmt in enumerate(closure.body.stmts):
                    if isinstance(stmt, ast.DeferStmt):
                        insert_at = index + 1
                    else:
                        break
                closure.body.stmts.insert(insert_at, copy_stmt)
                changed = True
        return clone.render() if changed else None


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=110,
    example_rank=160,
    description="Relocating WaitGroup Add/Done/Wait to restore the intended ordering",
    signature=examples.moved_wg_add,
)
class MoveWaitGroupAddStrategy(FixStrategy):
    """Listing 6: move ``wg.Add`` from inside the goroutine to before the ``go``."""

    name = "move_wg_add"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            for go_stmt, closure in self.go_closures(func):
                add_stmt = self._find_add(closure)
                if add_stmt is not None:
                    return StrategyPlan(
                        strategy=self.name, data={"function": func.name}
                    )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        changed = False
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            for go_stmt, closure in self.go_closures(func):
                add_stmt = self._find_add(closure)
                if add_stmt is None:
                    continue
                closure.body.stmts = [s for s in closure.body.stmts if s is not add_stmt]
                if self._insert_before(func.body, go_stmt, add_stmt):
                    changed = True
        return clone.render() if changed else None

    def _find_add(self, closure: ast.FuncLit) -> Optional[ast.ExprStmt]:
        for stmt in closure.body.stmts:
            if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.x, ast.CallExpr):
                fun = stmt.x.fun
                if isinstance(fun, ast.SelectorExpr) and fun.sel == "Add":
                    return stmt
        return None

    def _insert_before(self, block: ast.BlockStmt, target: ast.Stmt,
                       new_stmt: ast.Stmt) -> bool:
        for container in ast.walk(block):
            if isinstance(container, ast.BlockStmt) and target in container.stmts:
                index = container.stmts.index(target)
                container.stmts.insert(index, new_stmt)
                return True
        return False


@fix_pattern(
    categories=(RaceCategory.OTHERS,),
    specificity=70,
    example_rank=130,
    description="Creating per-request instances of thread-unsafe library state",
    signature=examples.added_fresh_rand_source,
)
class RandPerRequestStrategy(FixStrategy):
    """Listing 12: create a fresh ``rand.Source`` per request instead of sharing one."""

    name = "rand_per_request"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            for node in ast.walk(func.body):
                if isinstance(node, ast.CallExpr) and self._is_rand_new(node):
                    arg = node.args[0] if node.args else None
                    if isinstance(arg, ast.Ident) and not self.declared_in_function(func, arg.name):
                        return StrategyPlan(
                            strategy=self.name,
                            data={"function": func.name, "source": arg.name},
                        )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        seed = self._global_seed(clone, plan.data["source"])
        changed = False
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            for node in ast.walk(func.body):
                if isinstance(node, ast.CallExpr) and self._is_rand_new(node):
                    arg = node.args[0] if node.args else None
                    if isinstance(arg, ast.Ident) and arg.name == plan.data["source"]:
                        node.args[0] = ast.call("rand.NewSource", ast.int_lit(seed))
                        changed = True
        return clone.render() if changed else None

    def _is_rand_new(self, call: ast.CallExpr) -> bool:
        fun = call.fun
        return (
            isinstance(fun, ast.SelectorExpr)
            and fun.sel == "New"
            and isinstance(fun.x, ast.Ident)
            and fun.x.name == "rand"
        )

    def _global_seed(self, scope: ScopeCode, source_name: str) -> int:
        for decl in scope.file.decls:
            if isinstance(decl, ast.GenDecl) and decl.tok == "var":
                for spec in decl.specs:
                    if isinstance(spec, ast.ValueSpec) and source_name in spec.names and spec.values:
                        for node in ast.walk(spec.values[0]):
                            if isinstance(node, ast.BasicLit) and node.kind == "INT":
                                return int(node.value)
        return 1
