"""Strategy registry and example-to-strategy inference.

``STRATEGY_REGISTRY`` maps strategy names to instances; ``ordered_strategies``
returns them in the order a model should try them (most specific first).
``infer_strategy_from_example`` inspects a retrieved (buggy, fixed) pair and
identifies which repair pattern it demonstrates — this is how a retrieved
example "unlocks" a guided strategy for the simulated model, mirroring how a
real LLM imitates the example's structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan, parse_scope
from repro.llm.strategies.locking import CompleteLockingStrategy, MutexGuardStrategy
from repro.llm.strategies.restructure import (
    ChannelErrorStrategy,
    ParallelTestIsolationStrategy,
    StructCopyStrategy,
    SyncMapConvertStrategy,
)
from repro.llm.strategies.simple import (
    LoopVarCopyStrategy,
    MoveWaitGroupAddStrategy,
    PrivatizeLocalCopyStrategy,
    RandPerRequestStrategy,
    RedeclareStrategy,
)

#: All strategies, keyed by name.
STRATEGY_REGISTRY: Dict[str, FixStrategy] = {
    strategy.name: strategy
    for strategy in (
        RedeclareStrategy(),
        LoopVarCopyStrategy(),
        MoveWaitGroupAddStrategy(),
        ParallelTestIsolationStrategy(),
        SyncMapConvertStrategy(),
        ChannelErrorStrategy(),
        CompleteLockingStrategy(),
        StructCopyStrategy(),
        RandPerRequestStrategy(),
        PrivatizeLocalCopyStrategy(),
        MutexGuardStrategy(),
    )
}

#: Detection order: most specific patterns first so a generic strategy does not
#: shadow a targeted one (e.g. mutex-guard would "fix" almost anything).
STRATEGY_ORDER: List[str] = [
    "move_wg_add",
    "loop_var_copy",
    "parallel_test_isolation",
    "sync_map_convert",
    "channel_error",
    "complete_locking",
    "rand_per_request",
    "struct_copy",
    "redeclare",
    "privatize_local_copy",
    "mutex_guard",
]


def ordered_strategies(allowed: Optional[set[str]] = None) -> List[FixStrategy]:
    """Strategies in detection order, optionally restricted to ``allowed`` names."""
    names = [name for name in STRATEGY_ORDER if allowed is None or name in allowed]
    return [STRATEGY_REGISTRY[name] for name in names]


# ---------------------------------------------------------------------------
# Example classification
# ---------------------------------------------------------------------------


def infer_strategy_from_example(buggy: str, fixed: str) -> Optional[str]:
    """Identify which repair pattern a (buggy, fixed) example demonstrates.

    The classification looks only at the example text — exactly the signal a
    real model would imitate.  Returns a strategy name or ``None`` when the
    example does not clearly demonstrate a known pattern.
    """
    if not buggy.strip() or not fixed.strip():
        return None

    def count(text: str, needle: str) -> int:
        return text.count(needle)

    # sync.Map conversion: the fix introduces sync.Map / Store / Range calls.
    if count(fixed, "sync.Map") > count(buggy, "sync.Map"):
        return "sync_map_convert"
    # Error channel: a new channel of error appears.
    if count(fixed, "chan error") > count(buggy, "chan error"):
        return "channel_error"
    # Parallel-test isolation: t.Parallel present and a shared fixture is now
    # constructed per case (the shared declaration disappears).
    if "t.Parallel()" in fixed and _removed_shared_fixture(buggy, fixed):
        return "parallel_test_isolation"
    # Fresh rand source per request.
    if count(fixed, "rand.NewSource(") > count(buggy, "rand.NewSource("):
        return "rand_per_request"
    # Mutex-related fixes.
    new_mutex_decls = count(fixed, "sync.Mutex") - count(buggy, "sync.Mutex")
    new_lock_calls = count(fixed, ".Lock()") - count(buggy, ".Lock()")
    if new_mutex_decls > 0:
        return "mutex_guard"
    if new_lock_calls > 0:
        return "complete_locking"
    # wg.Add moved out of the goroutine body.
    if _moved_wg_add(buggy, fixed):
        return "move_wg_add"
    # Loop-variable privatization: an `x := x` line appears.
    loop_copy = _added_self_copy(buggy, fixed)
    if loop_copy == "loop":
        return "loop_var_copy"
    # Struct copy: a `new... := *param` dereference copy appears.
    if _added_deref_copy(buggy, fixed):
        return "struct_copy"
    # Local copies / parameter passing inside goroutines.
    if loop_copy == "local" or _added_goroutine_param(buggy, fixed):
        return "privatize_local_copy"
    # Re-declaration: an `=` on a shared variable became `:=` inside a closure.
    if _assignment_became_declaration(buggy, fixed):
        return "redeclare"
    return None


def _removed_shared_fixture(buggy: str, fixed: str) -> bool:
    """A fixture shared across subtests either disappeared or moved inside the
    ``t.Run`` closure (after ``t.Parallel()``)."""
    fixed_lines = [line.strip() for line in fixed.splitlines()]
    buggy_lines = [line.strip() for line in buggy.splitlines()]

    def first_index(lines: list[str], needle: str) -> int:
        for index, line in enumerate(lines):
            if needle in line:
                return index
        return len(lines)

    buggy_run = first_index(buggy_lines, "t.Run(")
    fixed_parallel = first_index(fixed_lines, "t.Parallel()")
    for index, stripped in enumerate(buggy_lines):
        if ":=" not in stripped or index >= buggy_run:
            continue
        if not (".New(" in stripped or "New(" in stripped or "&" in stripped):
            continue
        name = stripped.split(":=")[0].strip()
        if not name or not name.isidentifier():
            continue
        # Shape (a): the shared declaration disappeared entirely.
        if stripped not in fixed_lines and buggy.count(name) > fixed.count(name):
            return True
        # Shape (b): the declaration moved inside the parallel subtest closure.
        if stripped in fixed_lines and fixed_lines.index(stripped) > fixed_parallel < len(fixed_lines):
            return True
    return False


def _moved_wg_add(buggy: str, fixed: str) -> bool:
    if ".Add(" not in buggy or ".Add(" not in fixed:
        return False

    def add_inside_go(text: str) -> bool:
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if ".Add(" in line:
                context = "\n".join(lines[max(0, index - 3):index])
                if "go func" in context:
                    return True
        return False

    return add_inside_go(buggy) and not add_inside_go(fixed)


def _added_self_copy(buggy: str, fixed: str) -> Optional[str]:
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped and stripped not in buggy:
            left, _, right = stripped.partition(":=")
            left, right = left.strip(), right.strip()
            if left and left == right:
                return "loop"
            if left.startswith("local") and right and right[0].islower() and right.isidentifier():
                return "local"
    return None


def _added_deref_copy(buggy: str, fixed: str) -> bool:
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped and stripped not in buggy:
            _, _, right = stripped.partition(":=")
            if right.strip().startswith("*"):
                return True
    return False


def _added_goroutine_param(buggy: str, fixed: str) -> bool:
    buggy_plain = buggy.count("go func() {") + buggy.count("}()")
    fixed_param = 0
    for line in fixed.splitlines():
        stripped = line.strip()
        if stripped.startswith("go func(") and not stripped.startswith("go func()"):
            if "go func(" + stripped[len("go func("):] not in buggy:
                fixed_param += 1
    return fixed_param > 0 and buggy_plain > 0


def _assignment_became_declaration(buggy: str, fixed: str) -> bool:
    buggy_lines = {line.strip() for line in buggy.splitlines()}
    for line in fixed.splitlines():
        stripped = line.strip()
        if ":=" in stripped:
            as_assignment = stripped.replace(":=", "=", 1)
            if as_assignment in buggy_lines and stripped not in buggy_lines:
                return True
    return False


__all__ = [
    "FixStrategy",
    "ScopeCode",
    "StrategyPlan",
    "parse_scope",
    "STRATEGY_REGISTRY",
    "STRATEGY_ORDER",
    "ordered_strategies",
    "infer_strategy_from_example",
]
