"""Strategy implementations behind the fix-pattern registry.

Every strategy class registers itself as a
:class:`~repro.diagnosis.registry.FixPattern` with the ``@fix_pattern``
decorator at its definition site; this package merely imports the strategy
modules (which triggers registration) and exposes the registry-backed views
the model layer consumes:

* :data:`STRATEGY_REGISTRY` — one shared strategy instance per pattern name;
* :data:`STRATEGY_ORDER` — pattern names in detection order (most specific
  first, from the patterns' declared specificity), so a generic strategy does
  not shadow a targeted one (e.g. mutex-guard would "fix" almost anything);
* :func:`ordered_strategies` — the instances in that order, optionally
  restricted to an allowed set.

Example-to-pattern inference lives in :mod:`repro.diagnosis.examples`
(:func:`~repro.diagnosis.examples.infer_pattern_from_example`), driven by the
same registrations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan, parse_scope
from repro.llm.strategies import atomics, families, locking, restructure, simple  # noqa: F401
from repro.diagnosis.registry import all_patterns

#: One shared strategy instance per pattern, keyed by name.
STRATEGY_REGISTRY: Dict[str, FixStrategy] = {
    pattern.name: pattern.make_strategy() for pattern in all_patterns()
}

#: Detection order (most specific patterns first), from the registry.
STRATEGY_ORDER: List[str] = [pattern.name for pattern in all_patterns()]


def ordered_strategies(allowed: Optional[set[str]] = None) -> List[FixStrategy]:
    """Strategies in detection order, optionally restricted to ``allowed`` names."""
    names = [name for name in STRATEGY_ORDER if allowed is None or name in allowed]
    return [STRATEGY_REGISTRY[name] for name in names]


__all__ = [
    "FixStrategy",
    "ScopeCode",
    "StrategyPlan",
    "parse_scope",
    "STRATEGY_REGISTRY",
    "STRATEGY_ORDER",
    "ordered_strategies",
]
