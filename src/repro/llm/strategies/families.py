"""Fix strategies for the PR-6 race families: double-checked locking,
channel-close completion signalling, bulk ``wg.Add`` accounting, and
``sync.Map`` value-level locking.

Each strategy mirrors one template in
``repro.corpus.templates.new_families`` and registers itself in the
fix-pattern registry, which makes it guided-capable for every frontier
model profile automatically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.diagnosis import examples
from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import fix_pattern
from repro.golang import ast_nodes as ast
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan


def _is_true_literal(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Ident):
        return expr.name == "true"
    return isinstance(expr, ast.BasicLit) and expr.value == "true"


def _is_false_literal(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Ident):
        return expr.name == "false"
    return isinstance(expr, ast.BasicLit) and expr.value == "false"


def _is_nil_check(cond: ast.Expr, receiver: str, field_name: str) -> bool:
    return (
        isinstance(cond, ast.BinaryExpr)
        and cond.op == "=="
        and isinstance(cond.x, ast.SelectorExpr)
        and cond.x.sel == field_name
        and ast.base_name(cond.x) == receiver
        and isinstance(cond.y, ast.Ident)
        and cond.y.name == "nil"
    )


def _calls_method(node: ast.Node, method: str) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.CallExpr) and isinstance(inner.fun, ast.SelectorExpr) \
                and inner.fun.sel == method:
            return True
    return False


def _writes_selector(body: ast.Node, base: str, field_name: Optional[str] = None) -> bool:
    """``base.field = ...`` (or ``++``/``--``) anywhere in ``body``; any field
    counts when ``field_name`` is None."""
    for node in ast.walk(body):
        targets: List[ast.Expr] = []
        if isinstance(node, ast.AssignStmt):
            targets = node.lhs
        elif isinstance(node, ast.IncDecStmt):
            targets = [node.x]
        for target in targets:
            if isinstance(target, ast.SelectorExpr) and ast.base_name(target) == base:
                if field_name is None or target.sel == field_name:
                    return True
    return False


def _replace_in_blocks(root: ast.Node, target: ast.Stmt,
                       replacement: List[ast.Stmt]) -> bool:
    """Splice ``replacement`` in place of ``target`` in whichever block (or
    select/switch clause body) holds it."""
    for container in ast.walk(root):
        stmts = None
        if isinstance(container, ast.BlockStmt):
            stmts = container.stmts
        elif isinstance(container, (ast.CaseClause, ast.CommClause)):
            stmts = container.body
        if stmts is not None and target in stmts:
            index = stmts.index(target)
            stmts[index:index + 1] = replacement
            return True
    return False


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=84,
    example_rank=40,
    description="Hoisting a double-checked nil check under the lock that guards it",
    signature=examples.hoisted_nil_check_under_lock,
)
class DoubleCheckedLockingStrategy(FixStrategy):
    """Double-checked locking: drop the unsynchronized outer nil check and
    always take the slow path (lock, check, initialize, unlock)."""

    name = "double_checked_locking"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            found = self._find_outer_check(func)
            if found is not None:
                _, field_name = found
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "field": field_name},
                )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            found = self._find_outer_check(func)
            if found is None:
                continue
            outer, _ = found
            # The outer body is the complete locked slow path; executing it
            # unconditionally removes the unsynchronized check.
            if _replace_in_blocks(func.body, outer, list(outer.body.stmts)):
                return clone.render()
        return None

    def _find_outer_check(
        self, func: ast.FuncDecl
    ) -> Optional[Tuple[ast.IfStmt, str]]:
        if func.recv is None or func.body is None:
            return None
        receiver = func.recv.names[0] if func.recv.names else ""
        for node in ast.walk(func.body):
            if not isinstance(node, ast.IfStmt):
                continue
            cond = node.cond
            if not isinstance(cond, ast.BinaryExpr) or not isinstance(cond.x, ast.SelectorExpr):
                continue
            field_name = cond.x.sel
            if not _is_nil_check(cond, receiver, field_name):
                continue
            if _calls_method(node.body, "Lock") and _calls_method(node.body, "Unlock") \
                    and _writes_selector(node.body, receiver, field_name):
                return node, field_name
        return None


@fix_pattern(
    categories=(RaceCategory.CAPTURE_BY_REFERENCE,),
    specificity=83,
    example_rank=50,
    description="Replacing a shared completion flag with a close()-signalled channel",
    signature=examples.closed_channel_signal,
)
class ChannelCloseSignalStrategy(FixStrategy):
    """A producer goroutine sets a captured boolean flag that the parent polls
    bare; the fix turns the flag into a channel closed on completion and reads
    it through a non-blocking ``select``."""

    name = "channel_close_signal"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            shape = self._find_shape(func, task.racy_variable)
            if shape is not None:
                flag, reader = shape
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "flag": flag, "reader": reader},
                )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        flag = plan.data["flag"]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            parts = self._collect_parts(func, flag)
            if parts is None:
                continue
            decl, setter, closure, reader = parts
            # 1. ``flag := false``  →  ``flag := make(chan bool)``
            decl.rhs = [ast.call("make", ast.ChanType(value=ast.ident("bool")))]
            # 2. ``flag = true`` inside the goroutine  →  ``close(flag)``
            close_stmt = ast.ExprStmt(x=ast.call("close", ast.ident(flag)))
            if not _replace_in_blocks(closure.body, setter, [close_stmt]):
                return None
            # 3. ``x := flag``  →  ``x := false`` + non-blocking select.
            reader_name = plan.data["reader"]
            init = ast.AssignStmt(
                lhs=[ast.ident(reader_name)], tok=":=", rhs=[ast.ident("false")]
            )
            recv = ast.ExprStmt(x=ast.UnaryExpr(op="<-", x=ast.ident(flag)))
            mark = ast.AssignStmt(
                lhs=[ast.ident(reader_name)], tok="=", rhs=[ast.ident("true")]
            )
            select = ast.SelectStmt(cases=[
                ast.CommClause(comm=recv, body=[mark]),
                ast.CommClause(comm=None, body=[]),
            ])
            if not _replace_in_blocks(func.body, reader, [init, select]):
                return None
            return clone.render()
        return None

    def _find_shape(self, func: ast.FuncDecl, target: str) -> Optional[Tuple[str, str]]:
        if func.body is None:
            return None
        for _, closure in self.go_closures(func):
            for stmt in closure.body.stmts:
                if not (isinstance(stmt, ast.AssignStmt) and stmt.tok == "="
                        and len(stmt.lhs) == 1 and isinstance(stmt.lhs[0], ast.Ident)
                        and len(stmt.rhs) == 1 and _is_true_literal(stmt.rhs[0])):
                    continue
                flag = stmt.lhs[0].name
                if target and flag != target:
                    continue
                parts = self._collect_parts(func, flag)
                if parts is not None:
                    reader = parts[3]
                    return flag, reader.lhs[0].name
        return None

    def _collect_parts(self, func: ast.FuncDecl, flag: str):
        """(flag declaration, in-closure setter, that closure, bare reader)."""
        decl = setter = closure_found = reader = None
        closures = self.go_closures(func)
        closure_nodes = [c for _, c in closures]
        for _, closure in closures:
            for stmt in closure.body.stmts:
                if isinstance(stmt, ast.AssignStmt) and stmt.tok == "=" \
                        and len(stmt.lhs) == 1 and isinstance(stmt.lhs[0], ast.Ident) \
                        and stmt.lhs[0].name == flag \
                        and len(stmt.rhs) == 1 and _is_true_literal(stmt.rhs[0]):
                    setter, closure_found = stmt, closure
        in_closures = set()
        for closure in closure_nodes:
            for node in ast.walk(closure):
                in_closures.add(id(node))
        for node in ast.walk(func.body):
            if id(node) in in_closures or not isinstance(node, ast.AssignStmt):
                continue
            if node.tok == ":=" and len(node.lhs) == 1 and len(node.rhs) == 1:
                if isinstance(node.lhs[0], ast.Ident) and node.lhs[0].name == flag \
                        and _is_false_literal(node.rhs[0]):
                    decl = node
                elif isinstance(node.rhs[0], ast.Ident) and node.rhs[0].name == flag \
                        and isinstance(node.lhs[0], ast.Ident):
                    reader = node
        if decl is None or setter is None or reader is None:
            return None
        return decl, setter, closure_found, reader


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=112,
    example_rank=35,
    description="Accounting for the whole goroutine batch with one wg.Add(n) before the loop",
    signature=examples.added_bulk_wg_add,
)
class BulkWaitGroupAddStrategy(FixStrategy):
    """``wg.Add(1)`` inside each spawned goroutine of a counted loop; the fix
    hoists the accounting to a single ``wg.Add(n)`` before the loop."""

    name = "bulk_wg_add"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            found = self._find_loop(func)
            if found is not None:
                _, _, _, wg_name, bound = found
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "wg": wg_name, "bound": bound},
                )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            found = self._find_loop(func)
            if found is None:
                continue
            loop, closure, add_stmt, wg_name, bound = found
            closure.body.stmts = [s for s in closure.body.stmts if s is not add_stmt]
            bulk = ast.ExprStmt(x=ast.call(f"{wg_name}.Add", ast.ident(bound)))
            if _replace_in_blocks(func.body, loop, [bulk, loop]):
                return clone.render()
        return None

    def _find_loop(self, func: ast.FuncDecl):
        if func.body is None:
            return None
        for node in ast.walk(func.body):
            if not isinstance(node, ast.ForStmt):
                continue
            bound = self._counted_bound(node)
            if bound is None:
                continue
            for inner in ast.walk(node.body):
                if not (isinstance(inner, ast.GoStmt) and isinstance(inner.call.fun, ast.FuncLit)):
                    continue
                closure = inner.call.fun
                for stmt in closure.body.stmts:
                    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.x, ast.CallExpr):
                        fun = stmt.x.fun
                        if isinstance(fun, ast.SelectorExpr) and fun.sel == "Add" \
                                and isinstance(fun.x, ast.Ident) \
                                and len(stmt.x.args) == 1 \
                                and isinstance(stmt.x.args[0], ast.BasicLit) \
                                and stmt.x.args[0].value == "1":
                            return node, closure, stmt, fun.x.name, bound
        return None

    @staticmethod
    def _counted_bound(loop: ast.ForStmt) -> Optional[str]:
        """``for i := 0; i < n; i++`` — returns ``n`` (the bound must equal
        the iteration count, so the init has to start at zero)."""
        init, cond = loop.init, loop.cond
        if not (isinstance(init, ast.AssignStmt) and init.tok == ":="
                and len(init.rhs) == 1 and isinstance(init.rhs[0], ast.BasicLit)
                and init.rhs[0].value == "0"):
            return None
        if isinstance(cond, ast.BinaryExpr) and cond.op == "<" \
                and isinstance(cond.y, ast.Ident):
            return cond.y.name
        return None


@fix_pattern(
    categories=(RaceCategory.CONCURRENT_MAP_ACCESS,),
    specificity=92,
    example_rank=45,
    description="Guarding mutations of values held in a sync.Map with a value-level mutex",
    signature=examples.locked_syncmap_value,
)
class SyncMapValueLockStrategy(FixStrategy):
    """``sync.Map`` misuse: the map operations are safe but the mutable entry
    they return is not; the fix adds a mutex to the entry type and locks it
    around the mutation."""

    name = "syncmap_value_lock"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            found = self._find_entry(func)
            if found is None:
                continue
            _, var, type_name = found
            spec = self._struct_named(scope, type_name)
            if spec is None or self.has_mutex_field(spec) is not None:
                continue
            return StrategyPlan(
                strategy=self.name,
                data={"function": func.name, "var": var, "type": type_name},
            )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        spec = self._struct_named(clone, plan.data["type"])
        if spec is None:
            return None
        spec.type_.fields.insert(
            0, ast.Field(names=["mu"], type_=ast.selector("sync.Mutex"))
        )
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            found = self._find_entry(func)
            if found is None:
                continue
            decl, var, _ = found
            lock, unlock = self.make_lock_pair(var, "mu")
            deferred = ast.DeferStmt(call=unlock.x)
            if _replace_in_blocks(func.body, decl, [decl, lock, deferred]):
                self.ensure_import(clone, "sync")
                return clone.render()
        return None

    def _find_entry(self, func: ast.FuncDecl):
        """The ``entry := value.(*T)`` declaration whose value flows out of a
        ``Load``/``LoadOrStore`` call and whose fields the function writes."""
        if func.body is None:
            return None
        loaded: set = set()
        for node in ast.walk(func.body):
            if not (isinstance(node, ast.AssignStmt) and node.tok == ":="):
                continue
            from_load = any(
                isinstance(inner, ast.CallExpr)
                and isinstance(inner.fun, ast.SelectorExpr)
                and inner.fun.sel in ("Load", "LoadOrStore")
                for value in node.rhs
                for inner in ast.walk(value)
            )
            if from_load:
                for target in node.lhs:
                    if isinstance(target, ast.Ident) and target.name != "_":
                        loaded.add(target.name)
                continue
            if len(node.rhs) == 1 and isinstance(node.rhs[0], ast.TypeAssertExpr) \
                    and len(node.lhs) == 1 and isinstance(node.lhs[0], ast.Ident):
                assertion = node.rhs[0]
                if isinstance(assertion.x, ast.Ident) and assertion.x.name in loaded \
                        and isinstance(assertion.type_, ast.StarExpr) \
                        and isinstance(assertion.type_.x, ast.Ident):
                    var = node.lhs[0].name
                    if _writes_selector(func.body, var):
                        return node, var, assertion.type_.x.name
        return None

    @staticmethod
    def _struct_named(scope: ScopeCode, type_name: str) -> Optional[ast.TypeSpec]:
        for spec in scope.file.type_decls():
            if spec.name == type_name and isinstance(spec.type_, ast.StructType):
                return spec
        return None
