"""Restructuring strategies: sync.Map conversion, error channels, struct
copies, and parallel-test isolation (the RAG-pivotal patterns of Table 4)."""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from repro.diagnosis import examples
from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import fix_pattern
from repro.golang import ast_nodes as ast
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan


@fix_pattern(
    categories=(RaceCategory.CONCURRENT_MAP_ACCESS,),
    specificity=90,
    example_rank=100,
    description="Changing data types (map vs sync.Map) and propagating the change to all references",
    signature=examples.added_sync_map,
)
class SyncMapConvertStrategy(FixStrategy):
    """Listing 8: convert a built-in map field to ``sync.Map`` and rewrite every
    map operation (index, assignment, ``delete``, ``range``) accordingly."""

    name = "sync_map_convert"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        candidates = [target] if target else []
        for spec in scope.file.type_decls():
            if not isinstance(spec.type_, ast.StructType):
                continue
            for field in spec.type_.fields:
                if not isinstance(field.type_, ast.MapType):
                    continue
                for name in field.names:
                    if candidates and name not in candidates:
                        continue
                    return StrategyPlan(
                        strategy=self.name,
                        data={"type": spec.name, "field": name},
                    )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        type_name = plan.data["type"]
        field_name = plan.data["field"]
        spec = None
        for candidate in clone.file.type_decls():
            if candidate.name == type_name:
                spec = candidate
        if spec is None or not isinstance(spec.type_, ast.StructType):
            return None
        for field in spec.type_.fields:
            if field_name in field.names:
                field.type_ = ast.selector("sync.Map")
        for decl in clone.file.func_decls():
            if decl.body is None:
                continue
            self._rewrite_block(decl.body, field_name)
            self._rewrite_composites(decl, type_name, field_name)
        self.ensure_import(clone, "sync")
        return clone.render()

    # -- per-operation rewrites ------------------------------------------------------------

    def _is_field_access(self, expr: ast.Expr, field_name: str) -> bool:
        return isinstance(expr, ast.SelectorExpr) and expr.sel == field_name

    def _rewrite_block(self, block: ast.BlockStmt, field_name: str) -> None:
        new_stmts: List[ast.Stmt] = []
        for stmt in block.stmts:
            replacement = self._rewrite_stmt(stmt, field_name)
            if isinstance(replacement, list):
                new_stmts.extend(replacement)
            else:
                new_stmts.append(replacement)
        block.stmts = new_stmts
        for stmt in block.stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.BlockStmt) and node is not block:
                    self._rewrite_block(node, field_name)

    def _rewrite_stmt(self, stmt: ast.Stmt, field_name: str):
        # for k := range x.field { ... }  →  x.field.Range(func(k, _ interface{}) bool { ...; return true })
        if isinstance(stmt, ast.RangeStmt) and self._is_field_access(stmt.x, field_name):
            key_name = stmt.key.name if isinstance(stmt.key, ast.Ident) else "key"
            value_name = stmt.value.name if isinstance(stmt.value, ast.Ident) else "_"
            body = ast.BlockStmt(stmts=list(stmt.body.stmts))
            self._rewrite_block(body, field_name)
            body.stmts.append(ast.ReturnStmt(results=[ast.ident("true")]))
            callback = ast.FuncLit(
                type_=ast.FuncType(
                    params=[ast.Field(names=[key_name, value_name],
                                      type_=ast.InterfaceType(methods=[]))],
                    results=[ast.Field(type_=ast.ident("bool"))],
                ),
                body=body,
            )
            call = ast.CallExpr(fun=ast.SelectorExpr(x=stmt.x, sel="Range"), args=[callback])
            return ast.ExprStmt(x=call)
        # delete(x.field, k) → x.field.Delete(k)
        if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.x, ast.CallExpr):
            call = stmt.x
            if isinstance(call.fun, ast.Ident) and call.fun.name == "delete" and call.args \
                    and self._is_field_access(call.args[0], field_name):
                return ast.ExprStmt(
                    x=ast.CallExpr(
                        fun=ast.SelectorExpr(x=call.args[0], sel="Delete"),
                        args=list(call.args[1:]),
                    )
                )
        # x.field[k] = v → x.field.Store(k, v)
        if isinstance(stmt, ast.AssignStmt) and len(stmt.lhs) == 1 and stmt.tok == "=":
            target = stmt.lhs[0]
            if isinstance(target, ast.IndexExpr) and self._is_field_access(target.x, field_name):
                return ast.ExprStmt(
                    x=ast.CallExpr(
                        fun=ast.SelectorExpr(x=target.x, sel="Store"),
                        args=[target.index] + list(stmt.rhs),
                    )
                )
        # v := x.field[k] / v, ok := x.field[k] → Load
        if isinstance(stmt, ast.AssignStmt) and len(stmt.rhs) == 1:
            rhs = stmt.rhs[0]
            if isinstance(rhs, ast.IndexExpr) and self._is_field_access(rhs.x, field_name):
                load = ast.CallExpr(fun=ast.SelectorExpr(x=rhs.x, sel="Load"), args=[rhs.index])
                lhs = list(stmt.lhs)
                if len(lhs) == 1:
                    lhs.append(ast.ident("_"))
                return ast.AssignStmt(lhs=lhs, tok=stmt.tok, rhs=[load])
        return stmt

    def _rewrite_composites(self, decl: ast.FuncDecl, type_name: str, field_name: str) -> None:
        """``return &T{field: map[...]{...}, other: v}`` → build, Store, return."""
        if decl.body is None:
            return
        new_stmts: List[ast.Stmt] = []
        for stmt in decl.body.stmts:
            handled = False
            if isinstance(stmt, ast.ReturnStmt) and len(stmt.results) == 1:
                composite = stmt.results[0]
                inner = composite.x if isinstance(composite, ast.UnaryExpr) else composite
                if isinstance(inner, ast.CompositeLit) and self._composite_of_type(inner, type_name):
                    entries = self._pop_field_entries(inner, field_name)
                    if entries is not None:
                        temp = "built"
                        new_stmts.append(
                            ast.AssignStmt(lhs=[ast.ident(temp)], tok=":=", rhs=[composite])
                        )
                        for key_expr, value_expr in entries:
                            new_stmts.append(
                                ast.ExprStmt(
                                    x=ast.CallExpr(
                                        fun=ast.SelectorExpr(
                                            x=ast.SelectorExpr(x=ast.ident(temp), sel=field_name),
                                            sel="Store",
                                        ),
                                        args=[key_expr, value_expr],
                                    )
                                )
                            )
                        new_stmts.append(ast.ReturnStmt(results=[ast.ident(temp)]))
                        handled = True
            if not handled:
                new_stmts.append(stmt)
        decl.body.stmts = new_stmts

    def _composite_of_type(self, lit: ast.CompositeLit, type_name: str) -> bool:
        type_expr = lit.type_
        if isinstance(type_expr, ast.Ident):
            return type_expr.name == type_name
        if isinstance(type_expr, ast.SelectorExpr):
            return type_expr.sel == type_name
        return False

    def _pop_field_entries(self, lit: ast.CompositeLit,
                           field_name: str) -> Optional[List[Tuple[ast.Expr, ast.Expr]]]:
        for index, elt in enumerate(lit.elts):
            if isinstance(elt, ast.KeyValueExpr) and isinstance(elt.key, ast.Ident) \
                    and elt.key.name == field_name:
                entries: List[Tuple[ast.Expr, ast.Expr]] = []
                if isinstance(elt.value, ast.CompositeLit):
                    for item in elt.value.elts:
                        if isinstance(item, ast.KeyValueExpr):
                            entries.append((item.key, item.value))
                lit.elts.pop(index)
                return entries
        return None


@fix_pattern(
    categories=(RaceCategory.CAPTURE_BY_REFERENCE,),
    specificity=85,
    example_rank=110,
    description="Appropriately placing send/recv on channels instead of sharing variables",
    signature=examples.added_error_channel,
)
class ChannelErrorStrategy(FixStrategy):
    """Listing 10: stop sharing ``err`` across the goroutine boundary by sending
    it over a dedicated buffered error channel."""

    name = "channel_error"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable or "err"
        for func in self.functions(scope):
            has_select = any(isinstance(n, ast.SelectStmt) for n in ast.walk(func.body))
            if not has_select:
                continue
            closure_info = self._find_worker_closure(func, target)
            if closure_info is None:
                continue
            return StrategyPlan(strategy=self.name, data={"function": func.name, "variable": target})
        return None

    def _find_worker_closure(self, func: ast.FuncDecl, target: str):
        for node in ast.walk(func.body):
            if isinstance(node, ast.FuncLit):
                for inner in ast.walk(node.body):
                    if isinstance(inner, ast.AssignStmt) and inner.tok == "=" \
                            and any(isinstance(t, ast.Ident) and t.name == target for t in inner.lhs) \
                            and any(isinstance(s, ast.SendStmt) for s in ast.walk(node.body)):
                        return node, inner
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        target = plan.data["variable"]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            closure_info = self._find_worker_closure(func, target)
            if closure_info is None:
                return None
            closure, assign = closure_info
            # 1. errChan := make(chan error, 1) right before the closure definition.
            err_chan = "errChan"
            make_chan = ast.AssignStmt(
                lhs=[ast.ident(err_chan)],
                tok=":=",
                rhs=[ast.call("make", ast.ChanType(value=ast.ident("error")), ast.int_lit(1))],
            )
            self._insert_before_closure_stmt(func, closure, make_chan)
            # 2. In the closure: make the assignment a fresh declaration and send the error.
            assign.tok = ":="
            self._drop_local_var_decl(closure, assign)
            send_err = ast.SendStmt(chan=ast.ident(err_chan), value=ast.ident(target))
            closure.body.stmts.append(send_err)
            # 3. In the select: read the error back in the result arm, stop
            #    returning the shared variable in the ctx.Done() arm.
            for node in ast.walk(func.body):
                if isinstance(node, ast.SelectStmt):
                    self._patch_select(node, target, err_chan)
            return clone.render()
        return None

    def _insert_before_closure_stmt(self, func: ast.FuncDecl, closure: ast.FuncLit,
                                    new_stmt: ast.Stmt) -> None:
        for block in ast.walk(func.body):
            if not isinstance(block, ast.BlockStmt):
                continue
            for index, stmt in enumerate(block.stmts):
                if any(inner is closure for inner in ast.walk(stmt)):
                    block.stmts.insert(index, new_stmt)
                    return
        func.body.stmts.insert(0, new_stmt)

    def _drop_local_var_decl(self, closure: ast.FuncLit, assign: ast.AssignStmt) -> None:
        """Remove ``var result T`` when the assignment now declares it via ``:=``."""
        declared = {t.name for t in assign.lhs if isinstance(t, ast.Ident)}
        kept: List[ast.Stmt] = []
        for stmt in closure.body.stmts:
            if isinstance(stmt, ast.DeclStmt):
                specs = [
                    spec for spec in stmt.decl.specs
                    if not (isinstance(spec, ast.ValueSpec) and set(spec.names) <= declared
                            and not spec.values)
                ]
                if not specs:
                    continue
                stmt.decl.specs = specs
            kept.append(stmt)
        closure.body.stmts = kept

    def _patch_select(self, select: ast.SelectStmt, target: str, err_chan: str) -> None:
        for case in select.cases:
            if case.comm is None:
                continue
            is_done_arm = any(
                isinstance(node, ast.SelectorExpr) and node.sel == "Done"
                for node in ast.walk(case.comm)
            )
            if is_done_arm:
                for stmt in case.body:
                    if isinstance(stmt, ast.ReturnStmt):
                        stmt.results = [
                            ast.ident("nil") if isinstance(r, ast.Ident) and r.name == target else r
                            for r in stmt.results
                        ]
            else:
                recv_err = ast.AssignStmt(
                    lhs=[ast.ident(target)],
                    tok="=",
                    rhs=[ast.UnaryExpr(op="<-", x=ast.ident(err_chan))],
                )
                case.body.insert(0, recv_err)


@fix_pattern(
    categories=(RaceCategory.OTHERS,),
    specificity=65,
    example_rank=180,
    description="Creating copies of complex data structures to avoid unwanted sharing",
    signature=examples.added_deref_copy,
)
class StructCopyStrategy(FixStrategy):
    """Listing 22: copy the shared struct before mutating it."""

    name = "struct_copy"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        for func in self.functions(scope):
            pointer_params = self._pointer_params(func)
            for param in pointer_params:
                writes = self._field_writes(func, param)
                if not writes:
                    continue
                if target and target not in {w.sel for w in writes}:
                    continue
                return StrategyPlan(strategy=self.name, data={"function": func.name, "param": param})
        return None

    def _pointer_params(self, func: ast.FuncDecl) -> List[str]:
        names = []
        for param in func.type_.params:
            if isinstance(param.type_, ast.StarExpr):
                names.extend(param.names)
        return names

    def _field_writes(self, func: ast.FuncDecl, param: str) -> List[ast.SelectorExpr]:
        writes = []
        for node in ast.walk(func.body):
            if isinstance(node, ast.AssignStmt):
                for target in node.lhs:
                    if isinstance(target, ast.SelectorExpr) and ast.base_name(target) == param:
                        writes.append(target)
        return writes

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        param = plan.data["param"]
        copy_name = "new" + param[:1].upper() + param[1:]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            self.rename_in_node(func.body, param, copy_name)
            copy_stmt = ast.AssignStmt(
                lhs=[ast.ident(copy_name)],
                tok=":=",
                rhs=[ast.StarExpr(x=ast.ident(param))],
            )
            func.body.stmts.insert(0, copy_stmt)
            return clone.render()
        return None


@fix_pattern(
    categories=(RaceCategory.PARALLEL_TEST_SUITE,),
    specificity=95,
    example_rank=120,
    description="Privatizing shared fixtures across parallel subtests",
    signature=examples.isolated_parallel_fixture,
)
class ParallelTestIsolationStrategy(FixStrategy):
    """Listing 7: give each parallel subtest its own instance of the shared fixture."""

    name = "parallel_test_isolation"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            if not func.name.startswith("Test"):
                continue
            if not self._has_parallel_run(func):
                continue
            shared = self._shared_fixture(func, task.racy_variable)
            if shared is not None:
                name, kind = shared
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "variable": name, "kind": kind},
                )
        return None

    def _has_parallel_run(self, func: ast.FuncDecl) -> bool:
        has_run = False
        has_parallel = False
        for node in ast.walk(func.body):
            if isinstance(node, ast.CallExpr) and isinstance(node.fun, ast.SelectorExpr):
                if node.fun.sel == "Run":
                    has_run = True
                if node.fun.sel == "Parallel":
                    has_parallel = True
        return has_run and has_parallel

    def _shared_fixture(self, func: ast.FuncDecl, target: str) -> Optional[Tuple[str, str]]:
        """Find a variable declared before the subtest loop that subtests share.

        Returns ``(name, kind)`` with ``kind`` being ``"table"`` when the value
        is referenced from the test-table composite literal and ``"closure"``
        when it is referenced directly inside the ``t.Run`` closure.
        """
        declared: dict[str, ast.AssignStmt] = {}
        for stmt in func.body.stmts:
            if isinstance(stmt, ast.AssignStmt) and stmt.tok == ":=" and len(stmt.lhs) == 1 \
                    and isinstance(stmt.lhs[0], ast.Ident):
                declared[stmt.lhs[0].name] = stmt
        if not declared:
            return None
        table_names: set[str] = set()
        closure_names: set[str] = set()
        for node in ast.walk(func.body):
            if isinstance(node, ast.CompositeLit):
                for name in self.expr_names(node):
                    table_names.add(name)
            if isinstance(node, ast.CallExpr) and isinstance(node.fun, ast.SelectorExpr) \
                    and node.fun.sel == "Run":
                for arg in node.args:
                    if isinstance(arg, ast.FuncLit):
                        closure_names.update(self.expr_names(arg.body))
        candidates: List[Tuple[str, str]] = []
        for name, stmt in declared.items():
            if name in ("tests", "cases", "tt", "tc"):
                continue
            init = stmt.rhs[0] if stmt.rhs else None
            constructible = isinstance(init, (ast.CallExpr, ast.CompositeLit, ast.UnaryExpr))
            if not constructible:
                continue
            if name in closure_names:
                candidates.append((name, "closure"))
            elif name in table_names:
                candidates.append((name, "table"))
        if not candidates:
            return None
        if target:
            for name, kind in candidates:
                if name == target:
                    return name, kind
        return candidates[0]

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        variable = plan.data["variable"]
        kind = plan.data["kind"]
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            decl_stmt = None
            for stmt in func.body.stmts:
                if isinstance(stmt, ast.AssignStmt) and stmt.tok == ":=" and len(stmt.lhs) == 1 \
                        and isinstance(stmt.lhs[0], ast.Ident) and stmt.lhs[0].name == variable:
                    decl_stmt = stmt
                    break
            if decl_stmt is None:
                return None
            init_expr = decl_stmt.rhs[0]
            func.body.stmts = [s for s in func.body.stmts if s is not decl_stmt]
            if kind == "table":
                self._replace_in_tables(func, variable, init_expr)
            else:
                self._move_into_closures(func, variable, init_expr)
            return clone.render()
        return None

    def _replace_in_tables(self, func: ast.FuncDecl, variable: str, init_expr: ast.Expr) -> None:
        for node in ast.walk(func.body):
            if isinstance(node, ast.KeyValueExpr) and isinstance(node.value, ast.Ident) \
                    and node.value.name == variable:
                node.value = copy.deepcopy(init_expr)

    def _move_into_closures(self, func: ast.FuncDecl, variable: str, init_expr: ast.Expr) -> None:
        for node in ast.walk(func.body):
            if isinstance(node, ast.CallExpr) and isinstance(node.fun, ast.SelectorExpr) \
                    and node.fun.sel == "Run":
                for arg in node.args:
                    if isinstance(arg, ast.FuncLit) and self.references_name(arg.body, variable):
                        fresh = ast.AssignStmt(
                            lhs=[ast.ident(variable)], tok=":=",
                            rhs=[copy.deepcopy(init_expr)],
                        )
                        insert_at = 0
                        for index, stmt in enumerate(arg.body.stmts):
                            if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.x, ast.CallExpr) \
                                    and isinstance(stmt.x.fun, ast.SelectorExpr) \
                                    and stmt.x.fun.sel == "Parallel":
                                insert_at = index + 1
                                break
                        arg.body.stmts.insert(insert_at, fresh)
