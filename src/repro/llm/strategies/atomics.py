"""Lock-free and initialization repair patterns: ``sync/atomic`` counter
rewrites, ``sync.RWMutex`` read-path locking, and ``sync.Once`` lazy-init.

These three strategies ship as the proof of the fix-pattern registry's
extensibility: each is one ``@fix_pattern``-decorated class (plus a corpus
template), and detection ordering, example inference, prompt hints, CLI
introspection, and per-category evaluation follow from the registration.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.diagnosis import examples
from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import fix_pattern
from repro.golang import ast_nodes as ast
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=80,
    example_rank=10,
    description="Rewriting an unguarded counter to sync/atomic Add/Load operations",
    signature=examples.added_atomic_calls,
)
class AtomicCounterStrategy(FixStrategy):
    """Rewrite a plain counter field to ``sync/atomic``: increments become
    ``atomic.AddInt64(&recv.field, n)`` and bare reads become
    ``atomic.LoadInt64(&recv.field)`` in every method of the type."""

    name = "atomic_counter"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        if not target:
            return None
        spec = self.find_struct(scope, target)
        if spec is None or self.has_mutex_field(spec) is not None:
            return None
        # atomic.AddInt64/LoadInt64 take *int64: a counter of any other
        # declared type would produce a patch that real Go rejects.
        if not _field_is_int64(spec, target):
            return None
        methods = []
        incrementers = 0
        for decl in self.methods_of(scope, spec.name):
            receiver = self.receiver_name(decl)
            increments = _find_increments(decl.body, receiver, target)
            reads = _reads_field(decl.body, receiver, target)
            if increments:
                incrementers += 1
            if increments or reads:
                methods.append(decl.name)
        if not incrementers:
            return None
        return StrategyPlan(
            strategy=self.name,
            data={"type": spec.name, "field": target, "methods": methods},
        )

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        field_name = plan.data["field"]
        changed = False
        for decl in self.methods_of(clone, plan.data["type"]):
            if decl.name not in plan.data["methods"]:
                continue
            receiver = self.receiver_name(decl)
            if _rewrite_atomic_block(decl.body, receiver, field_name):
                changed = True
        if not changed:
            return None
        self.ensure_import(clone, "sync/atomic")
        return clone.render()


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=82,
    example_rank=20,
    description="Guarding bare read paths of an RWMutex-protected type with RLock/RUnlock",
    signature=examples.added_read_locking,
)
class RWMutexReadLockStrategy(FixStrategy):
    """The type already owns a ``sync.RWMutex`` and its write path locks, but
    read-only methods access the shared field bare: take the read lock
    (``RLock``/deferred ``RUnlock``) in every unguarded read-only method."""

    name = "rwmutex_read_lock"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        if not target:
            return None
        spec = self.find_struct(scope, target)
        if spec is None:
            return None
        rw_field = _rwmutex_field(spec)
        if rw_field is None:
            return None
        readers: List[str] = []
        for decl in self.methods_of(scope, spec.name):
            receiver = self.receiver_name(decl)
            if not _reads_field(decl.body, receiver, target):
                continue
            if _writes_field(decl.body, receiver, target):
                continue
            if _uses_lock(decl.body):
                continue
            readers.append(decl.name)
        if not readers:
            return None
        return StrategyPlan(
            strategy=self.name,
            data={"type": spec.name, "field": target, "mutex": rw_field, "methods": readers},
        )

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        mutex_field = plan.data["mutex"]
        changed = False
        for decl in self.methods_of(clone, plan.data["type"]):
            if decl.name not in plan.data["methods"]:
                continue
            receiver = self.receiver_name(decl)
            rlock = ast.ExprStmt(x=ast.call(f"{receiver}.{mutex_field}.RLock"))
            runlock = ast.DeferStmt(call=ast.call(f"{receiver}.{mutex_field}.RUnlock"))
            decl.body.stmts.insert(0, runlock)
            decl.body.stmts.insert(0, rlock)
            changed = True
        return clone.render() if changed else None


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=78,
    example_rank=30,
    description="Replacing a racy nil-checked lazy initialization with sync.Once",
    signature=examples.added_once_guard,
)
class OnceLazyInitStrategy(FixStrategy):
    """A package-level value is lazily initialized behind a bare nil check
    (``if x == nil { x = ... }``) reached from several goroutines: introduce a
    ``sync.Once`` and run the initialization under ``once.Do``."""

    name = "once_lazy_init"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        if scope.wrapped:
            return None  # The package-level declarations are not in scope.
        target = task.racy_variable
        for func in self.functions(scope):
            for stmt in ast.walk(func.body):
                if not isinstance(stmt, ast.IfStmt) or stmt.else_ is not None:
                    continue
                variable = _nil_checked_var(stmt.cond)
                if variable is None:
                    continue
                if target and variable != target:
                    continue
                if not _package_level_var(scope.file, variable):
                    continue
                if not _assigns_var(stmt.body, variable):
                    continue
                return StrategyPlan(
                    strategy=self.name,
                    data={"function": func.name, "variable": variable},
                )
        return None

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        variable = plan.data["variable"]
        once_name = variable + "Once"
        if not _declare_once_var(clone.file, variable, once_name):
            return None
        changed = False
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            changed = _wrap_in_once(func.body, variable, once_name)
        if not changed:
            return None
        self.ensure_import(clone, "sync")
        return clone.render()


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _field_is_int64(spec: ast.TypeSpec, field_name: str) -> bool:
    if not isinstance(spec.type_, ast.StructType):
        return False
    for struct_field in spec.type_.fields:
        if field_name in struct_field.names:
            return isinstance(struct_field.type_, ast.Ident) \
                and struct_field.type_.name == "int64"
    return False


def _is_field_selector(expr: ast.Expr, receiver: str, field_name: str) -> bool:
    return (
        isinstance(expr, ast.SelectorExpr)
        and expr.sel == field_name
        and ast.base_name(expr) == receiver
    )


def _find_increments(body: ast.BlockStmt, receiver: str,
                     field_name: str) -> List[ast.Stmt]:
    """Increment/decrement statements of ``receiver.field`` under ``body``."""
    found: List[ast.Stmt] = []
    for node in ast.walk(body):
        if isinstance(node, ast.IncDecStmt) and _is_field_selector(node.x, receiver, field_name):
            found.append(node)
        elif isinstance(node, ast.AssignStmt) and len(node.lhs) == 1 \
                and _is_field_selector(node.lhs[0], receiver, field_name):
            if node.tok in ("+=", "-="):
                found.append(node)
            elif node.tok == "=" and _self_add_delta(node, receiver, field_name) is not None:
                found.append(node)
    return found


def _self_add_delta(stmt: ast.AssignStmt, receiver: str,
                    field_name: str) -> Optional[Tuple[ast.Expr, str]]:
    """For ``recv.f = recv.f + d`` (or ``d + recv.f`` / ``recv.f - d``),
    return ``(d, op)``; otherwise None."""
    if len(stmt.rhs) != 1 or not isinstance(stmt.rhs[0], ast.BinaryExpr):
        return None
    expr = stmt.rhs[0]
    if expr.op not in ("+", "-"):
        return None
    if _is_field_selector(expr.x, receiver, field_name):
        return expr.y, expr.op
    if expr.op == "+" and _is_field_selector(expr.y, receiver, field_name):
        return expr.x, expr.op
    return None


def _reads_field(body: ast.BlockStmt, receiver: str, field_name: str) -> bool:
    """Does ``body`` read ``receiver.field`` outside of increment statements?"""
    increments = set(map(id, _find_increments(body, receiver, field_name)))
    for node in ast.walk(body):
        if id(node) in increments:
            continue
        if isinstance(node, (ast.ReturnStmt, ast.IfStmt, ast.BinaryExpr, ast.CallExpr)):
            for inner in ast.walk(node):
                if _is_field_selector(inner, receiver, field_name):
                    return True
    return False


def _writes_field(body: ast.BlockStmt, receiver: str, field_name: str) -> bool:
    for node in ast.walk(body):
        if isinstance(node, ast.IncDecStmt) and _is_field_selector(node.x, receiver, field_name):
            return True
        if isinstance(node, ast.AssignStmt):
            for target in node.lhs:
                if _is_field_selector(target, receiver, field_name):
                    return True
    return False


def _uses_lock(body: ast.BlockStmt) -> bool:
    for node in ast.walk(body):
        if isinstance(node, ast.CallExpr) and isinstance(node.fun, ast.SelectorExpr) \
                and node.fun.sel in ("Lock", "RLock"):
            return True
    return False


def _atomic_add_call(receiver: str, field_name: str, delta: ast.Expr,
                     op: str) -> ast.ExprStmt:
    address = ast.UnaryExpr(op="&", x=ast.SelectorExpr(x=ast.ident(receiver), sel=field_name))
    if op == "-":
        delta = ast.UnaryExpr(op="-", x=delta)
    return ast.ExprStmt(x=ast.call("atomic.AddInt64", address, delta))


def _atomic_load_call(receiver: str, field_name: str) -> ast.CallExpr:
    address = ast.UnaryExpr(op="&", x=ast.SelectorExpr(x=ast.ident(receiver), sel=field_name))
    return ast.call("atomic.LoadInt64", address)


def _rewrite_atomic_block(block: ast.BlockStmt, receiver: str, field_name: str) -> bool:
    """Rewrite increments and reads of ``receiver.field`` under ``block``."""
    changed = False
    for container in ast.walk(block):
        if not isinstance(container, ast.BlockStmt):
            continue
        new_stmts: List[ast.Stmt] = []
        for stmt in container.stmts:
            replacement = _atomic_increment_for(stmt, receiver, field_name)
            if replacement is not None:
                new_stmts.append(replacement)
                changed = True
                continue
            if _rewrite_reads_in_stmt(stmt, receiver, field_name):
                changed = True
            new_stmts.append(stmt)
        container.stmts = new_stmts
    return changed


def _atomic_increment_for(stmt: ast.Stmt, receiver: str,
                          field_name: str) -> Optional[ast.Stmt]:
    if isinstance(stmt, ast.IncDecStmt) and _is_field_selector(stmt.x, receiver, field_name):
        delta: ast.Expr = ast.int_lit(1)
        return _atomic_add_call(receiver, field_name, delta,
                                "-" if stmt.op == "--" else "+")
    if isinstance(stmt, ast.AssignStmt) and len(stmt.lhs) == 1 \
            and _is_field_selector(stmt.lhs[0], receiver, field_name):
        if stmt.tok in ("+=", "-=") and len(stmt.rhs) == 1:
            return _atomic_add_call(receiver, field_name, stmt.rhs[0],
                                    "-" if stmt.tok == "-=" else "+")
        if stmt.tok == "=":
            delta_op = _self_add_delta(stmt, receiver, field_name)
            if delta_op is not None:
                delta, op = delta_op
                return _atomic_add_call(receiver, field_name, delta, op)
    return None


def _rewrite_reads_in_stmt(stmt: ast.Stmt, receiver: str, field_name: str) -> bool:
    """Replace value reads of the field inside ``stmt`` with atomic loads."""

    def replace(expr: ast.Expr) -> Tuple[ast.Expr, bool]:
        if _is_field_selector(expr, receiver, field_name):
            return _atomic_load_call(receiver, field_name), True
        changed = False
        for attr in ("x", "y"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expr):
                new_child, child_changed = replace(child)
                if child_changed:
                    setattr(expr, attr, new_child)
                    changed = True
        if isinstance(expr, ast.CallExpr):
            for index, arg in enumerate(expr.args):
                new_arg, arg_changed = replace(arg)
                if arg_changed:
                    expr.args[index] = new_arg
                    changed = True
        return expr, changed

    changed = False
    if isinstance(stmt, ast.ReturnStmt):
        for index, result in enumerate(stmt.results):
            new_result, result_changed = replace(result)
            if result_changed:
                stmt.results[index] = new_result
                changed = True
    elif isinstance(stmt, ast.AssignStmt):
        for index, value in enumerate(stmt.rhs):
            new_value, value_changed = replace(value)
            if value_changed:
                stmt.rhs[index] = new_value
                changed = True
    elif isinstance(stmt, ast.IfStmt):
        new_cond, cond_changed = replace(stmt.cond)
        if cond_changed:
            stmt.cond = new_cond
            changed = True
    elif isinstance(stmt, ast.ExprStmt):
        new_expr, expr_changed = replace(stmt.x)
        if expr_changed:
            stmt.x = new_expr
            changed = True
    return changed


def _rwmutex_field(spec: ast.TypeSpec) -> Optional[str]:
    """Name of a ``sync.RWMutex`` field, if any (plain Mutex does not count)."""
    if not isinstance(spec.type_, ast.StructType):
        return None
    for struct_field in spec.type_.fields:
        type_expr = struct_field.type_
        if isinstance(type_expr, ast.SelectorExpr) and isinstance(type_expr.x, ast.Ident) \
                and type_expr.x.name == "sync" and type_expr.sel == "RWMutex":
            if struct_field.names:
                return struct_field.names[0]
    return None


def _nil_checked_var(cond: ast.Expr) -> Optional[str]:
    if not isinstance(cond, ast.BinaryExpr) or cond.op != "==":
        return None
    left, right = cond.x, cond.y
    if isinstance(left, ast.Ident) and isinstance(right, ast.Ident):
        if right.name == "nil" and left.name != "nil":
            return left.name
        if left.name == "nil" and right.name != "nil":
            return right.name
    return None


def _package_level_var(file: ast.File, variable: str) -> bool:
    for decl in file.decls:
        if isinstance(decl, ast.GenDecl) and decl.tok == "var":
            for spec in decl.specs:
                if isinstance(spec, ast.ValueSpec) and variable in spec.names:
                    return True
    return False


def _assigns_var(body: ast.BlockStmt, variable: str) -> bool:
    for node in ast.walk(body):
        if isinstance(node, ast.AssignStmt) and node.tok != ":=":
            for target in node.lhs:
                if isinstance(target, ast.Ident) and target.name == variable:
                    return True
    return False


def _declare_once_var(file: ast.File, variable: str, once_name: str) -> bool:
    """Insert ``var <once_name> sync.Once`` after ``variable``'s declaration."""
    if _package_level_var(file, once_name):
        return True  # Already declared (idempotent re-application).
    once_decl = ast.GenDecl(
        tok="var",
        specs=[ast.ValueSpec(names=[once_name], type_=ast.selector("sync.Once"))],
    )
    for index, decl in enumerate(file.decls):
        if isinstance(decl, ast.GenDecl) and decl.tok == "var":
            for spec in decl.specs:
                if isinstance(spec, ast.ValueSpec) and variable in spec.names:
                    file.decls.insert(index + 1, once_decl)
                    return True
    file.decls.insert(0, once_decl)
    return True


def _wrap_in_once(block: ast.BlockStmt, variable: str, once_name: str) -> bool:
    """Replace the ``if variable == nil { ... }`` guard with ``once.Do``."""
    for container in ast.walk(block):
        if not isinstance(container, ast.BlockStmt):
            continue
        for index, stmt in enumerate(container.stmts):
            if not isinstance(stmt, ast.IfStmt) or stmt.else_ is not None:
                continue
            if _nil_checked_var(stmt.cond) != variable or not _assigns_var(stmt.body, variable):
                continue
            closure = ast.FuncLit(type_=ast.FuncType(), body=stmt.body)
            do_call = ast.CallExpr(
                fun=ast.SelectorExpr(x=ast.ident(once_name), sel="Do"), args=[closure]
            )
            container.stmts[index] = ast.ExprStmt(x=do_call)
            return True
    return False
