"""Strategy framework and shared AST helpers.

A *fix strategy* is one concurrency-repair recipe (privatize the shared value,
move ``wg.Add``, convert a map to ``sync.Map``, ...).  Each strategy knows how
to *detect* whether it applies to a :class:`~repro.llm.prompt_parser.FixTask`
and how to *apply* itself as a genuine AST transformation that returns the
entire revised code — the response format Dr.Fix's prompt demands.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_file
from repro.golang.printer import print_file, print_node
from repro.llm.prompt_parser import FixTask

_WRAPPER_PACKAGE = "drfixscope"


@dataclass
class ScopeCode:
    """Parsed representation of the code handed to the model."""

    file: ast.File
    wrapped: bool

    def render(self) -> str:
        text = print_file(self.file)
        if not self.wrapped:
            return text
        lines = text.splitlines()
        # Drop the synthetic "package drfixscope" line (and the blank after it).
        while lines and (lines[0].startswith("package ") or lines[0] == ""):
            lines.pop(0)
        return "\n".join(lines) + "\n"


def parse_scope(code: str) -> Optional[ScopeCode]:
    """Parse a function- or file-scoped code item; returns None on syntax errors."""
    stripped = code.lstrip()
    wrapped = not stripped.startswith("package ")
    source = code if not wrapped else f"package {_WRAPPER_PACKAGE}\n\n" + code
    try:
        file = parse_file(source, "<scope>")
    except Exception:  # noqa: BLE001 - the model simply fails to parse odd scopes
        return None
    return ScopeCode(file=file, wrapped=wrapped)


@dataclass
class StrategyPlan:
    """What a strategy decided to do (opaque payload interpreted by apply)."""

    strategy: str
    confidence: float = 1.0
    data: Dict[str, Any] = field(default_factory=dict)


class FixStrategy:
    """Base class for fix strategies."""

    #: Unique strategy name (referenced by model profiles and ground truth).
    name: str = "abstract"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        raise NotImplementedError

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    @staticmethod
    def clone_scope(scope: ScopeCode) -> ScopeCode:
        return ScopeCode(file=copy.deepcopy(scope.file), wrapped=scope.wrapped)

    @staticmethod
    def functions(scope: ScopeCode) -> List[ast.FuncDecl]:
        return [d for d in scope.file.func_decls() if d.body is not None]

    @staticmethod
    def expr_names(node: ast.Node) -> set[str]:
        return {n.name for n in ast.walk(node) if isinstance(n, ast.Ident)}

    @staticmethod
    def selector_fields(node: ast.Node) -> set[str]:
        return {n.sel for n in ast.walk(node) if isinstance(n, ast.SelectorExpr)}

    @staticmethod
    def references_name(node: ast.Node, name: str) -> bool:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Ident) and inner.name == name:
                return True
            if isinstance(inner, ast.SelectorExpr) and inner.sel == name:
                return True
        return False

    @staticmethod
    def go_closures(func: ast.FuncDecl) -> List[Tuple[ast.GoStmt, ast.FuncLit]]:
        """(go statement, closure) pairs inside ``func``."""
        result = []
        if func.body is None:
            return result
        for node in ast.walk(func.body):
            if isinstance(node, ast.GoStmt) and isinstance(node.call.fun, ast.FuncLit):
                result.append((node, node.call.fun))
        return result

    @staticmethod
    def closure_assigns(closure: ast.FuncLit, name: str) -> List[ast.AssignStmt]:
        """Assignments (with ``=``) to ``name`` or ``name.field`` inside the closure."""
        matches = []
        for node in ast.walk(closure.body):
            if isinstance(node, ast.AssignStmt) and node.tok != ":=":
                for target in node.lhs:
                    if ast.base_name(target) == name:
                        matches.append(node)
                        break
        return matches

    @staticmethod
    def declared_in_function(func: ast.FuncDecl, name: str) -> bool:
        if func.body is None:
            return False
        for node in ast.walk(func.body):
            if isinstance(node, ast.AssignStmt) and node.tok == ":=":
                for target in node.lhs:
                    if isinstance(target, ast.Ident) and target.name == name:
                        return True
            if isinstance(node, ast.DeclStmt):
                for spec in node.decl.specs:
                    if isinstance(spec, ast.ValueSpec) and name in spec.names:
                        return True
        for param in func.type_.params:
            if name in param.names:
                return True
        return False

    @staticmethod
    def rename_in_node(node: ast.Node, old: str, new: str) -> int:
        """Rename identifier ``old`` to ``new`` everywhere under ``node``."""
        count = 0
        for inner in ast.walk(node):
            if isinstance(inner, ast.Ident) and inner.name == old:
                inner.name = new
                count += 1
        return count

    @staticmethod
    def find_struct(scope: ScopeCode, field_name: str) -> Optional[ast.TypeSpec]:
        """The struct type spec declaring a field named ``field_name``."""
        for spec in scope.file.type_decls():
            if isinstance(spec.type_, ast.StructType):
                for struct_field in spec.type_.fields:
                    if field_name in struct_field.names:
                        return spec
        return None

    @staticmethod
    def methods_of(scope: ScopeCode, type_name: str) -> List[ast.FuncDecl]:
        result = []
        for decl in scope.file.func_decls():
            if decl.recv is None or decl.body is None:
                continue
            recv_type = decl.recv.type_
            if isinstance(recv_type, ast.StarExpr):
                recv_type = recv_type.x
            if isinstance(recv_type, ast.Ident) and recv_type.name == type_name:
                result.append(decl)
        return result

    @staticmethod
    def receiver_name(decl: ast.FuncDecl) -> str:
        if decl.recv is not None and decl.recv.names:
            return decl.recv.names[0]
        return ""

    @staticmethod
    def has_mutex_field(spec: ast.TypeSpec) -> Optional[str]:
        """Name of a ``sync.Mutex``/``sync.RWMutex`` field, if any."""
        if not isinstance(spec.type_, ast.StructType):
            return None
        for struct_field in spec.type_.fields:
            type_expr = struct_field.type_
            if isinstance(type_expr, ast.SelectorExpr) and isinstance(type_expr.x, ast.Ident) \
                    and type_expr.x.name == "sync" and type_expr.sel in ("Mutex", "RWMutex"):
                if struct_field.names:
                    return struct_field.names[0]
        return None

    @staticmethod
    def make_call_stmt(path: str, *args: ast.Expr) -> ast.ExprStmt:
        return ast.ExprStmt(x=ast.call(path, *args))

    @staticmethod
    def make_lock_pair(receiver: str, mutex_field: str) -> Tuple[ast.ExprStmt, ast.ExprStmt]:
        lock = ast.ExprStmt(x=ast.call(f"{receiver}.{mutex_field}.Lock"))
        unlock = ast.ExprStmt(x=ast.call(f"{receiver}.{mutex_field}.Unlock"))
        return lock, unlock

    @staticmethod
    def ensure_import(scope: ScopeCode, path: str) -> None:
        if scope.wrapped:
            return  # Function-scoped code has no import block to extend.
        for spec in scope.file.imports:
            if spec.path == path:
                return
        scope.file.imports.append(ast.ImportSpec(path=path))

    @staticmethod
    def stmt_contains_call(stmt: ast.Stmt, method: str) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.CallExpr) and isinstance(node.fun, ast.SelectorExpr) \
                    and node.fun.sel == method:
                return True
        return False

    @staticmethod
    def render_node(node: ast.Node) -> str:
        return print_node(node)
