"""Lock-introducing strategies: adding a mutex to a type or a function, and
completing partial locking disciplines (Table 4 items 5 and 6)."""

from __future__ import annotations

from typing import List, Optional

from repro.diagnosis import examples
from repro.diagnosis.categories import RaceCategory
from repro.diagnosis.registry import fix_pattern
from repro.golang import ast_nodes as ast
from repro.llm.prompt_parser import FixTask
from repro.llm.strategies.base import FixStrategy, ScopeCode, StrategyPlan


@fix_pattern(
    categories=(
        RaceCategory.MISSING_SYNCHRONIZATION,
        RaceCategory.CONCURRENT_MAP_ACCESS,
        RaceCategory.CONCURRENT_SLICE_ACCESS,
    ),
    specificity=50,
    example_rank=140,
    description="Introducing a new mutex into a larger aggregate type and guarding all usage points",
    signature=examples.added_mutex_decl,
)
class MutexGuardStrategy(FixStrategy):
    """Introduce a mutex and guard every access to the shared datum.

    Two shapes are supported:

    * **struct field** — the racy variable is a field of a struct declared in
      scope: add a ``mu sync.Mutex`` field and lock/unlock in every method that
      touches the field (requires the type declaration, i.e. file scope);
    * **local variable** — the racy variable is local to a function whose
      goroutines access it: declare a local ``sync.Mutex`` and guard the
      accesses inside the goroutine closures.
    """

    name = "mutex_guard"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        if target:
            spec = self.find_struct(scope, target)
            if spec is not None and self.has_mutex_field(spec) is None:
                methods = [
                    decl.name
                    for decl in self.methods_of(scope, spec.name)
                    if self._method_touches_field(decl, target)
                ]
                if methods:
                    return StrategyPlan(
                        strategy=self.name,
                        data={"shape": "field", "type": spec.name, "field": target,
                              "methods": methods},
                    )
        local = self._find_local_candidate(scope, target)
        if local is not None:
            return local
        return None

    # -- detection helpers ---------------------------------------------------------------

    def _method_touches_field(self, decl: ast.FuncDecl, field_name: str) -> bool:
        receiver = self.receiver_name(decl)
        if not receiver or decl.body is None:
            return False
        for node in ast.walk(decl.body):
            if isinstance(node, ast.SelectorExpr) and node.sel == field_name \
                    and ast.base_name(node) == receiver:
                return True
        return False

    def _find_local_candidate(self, scope: ScopeCode, target: str) -> Optional[StrategyPlan]:
        for func in self.functions(scope):
            closures = self.go_closures(func)
            if not closures:
                continue
            names: List[str] = []
            if target and self.declared_in_function(func, target):
                names.append(target)
            for _, closure in closures:
                for node in ast.walk(closure.body):
                    if isinstance(node, (ast.AssignStmt, ast.IncDecStmt)):
                        targets = node.lhs if isinstance(node, ast.AssignStmt) else [node.x]
                        for expr in targets:
                            base = ast.base_name(expr)
                            if base and self.declared_in_function(func, base) and base not in names:
                                # Only guard container/variable writes, not
                                # writes the closure owns outright.
                                if isinstance(expr, (ast.IndexExpr, ast.Ident)):
                                    names.append(base)
            if names:
                return StrategyPlan(
                    strategy=self.name,
                    data={"shape": "local", "function": func.name, "variable": names[0]},
                )
        return None

    # -- application ----------------------------------------------------------------------

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        if plan.data.get("shape") == "field":
            return self._apply_field(scope, plan)
        return self._apply_local(scope, plan)

    def _apply_field(self, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        type_name = plan.data["type"]
        field_name = plan.data["field"]
        spec = None
        for candidate in clone.file.type_decls():
            if candidate.name == type_name:
                spec = candidate
                break
        if spec is None or not isinstance(spec.type_, ast.StructType):
            return None
        mutex_name = "mu"
        existing = {name for f in spec.type_.fields for name in f.names}
        while mutex_name in existing:
            mutex_name = "_" + mutex_name
        spec.type_.fields.insert(
            0, ast.Field(names=[mutex_name], type_=ast.selector("sync.Mutex"))
        )
        for decl in self.methods_of(clone, type_name):
            if not self._method_touches_field(decl, field_name):
                continue
            receiver = self.receiver_name(decl)
            lock, _ = self.make_lock_pair(receiver, mutex_name)
            unlock_defer = ast.DeferStmt(call=ast.call(f"{receiver}.{mutex_name}.Unlock"))
            decl.body.stmts.insert(0, unlock_defer)
            decl.body.stmts.insert(0, lock)
        self.ensure_import(clone, "sync")
        return clone.render()

    def _apply_local(self, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        variable = plan.data["variable"]
        mutex_name = "mu"
        changed = False
        for func in self.functions(clone):
            if func.name != plan.data["function"]:
                continue
            if self._declares_name(func, mutex_name):
                mutex_name = variable + "Mu"
            declared = self._insert_mutex_decl(func, variable, mutex_name)
            if not declared:
                continue
            for _, closure in self.go_closures(func):
                new_stmts: List[ast.Stmt] = []
                for stmt in closure.body.stmts:
                    if isinstance(stmt, ast.DeferStmt) or not self.references_name(stmt, variable) \
                            or self.stmt_contains_call(stmt, "Lock"):
                        new_stmts.append(stmt)
                        continue
                    lock = ast.ExprStmt(x=ast.call(f"{mutex_name}.Lock"))
                    unlock = ast.ExprStmt(x=ast.call(f"{mutex_name}.Unlock"))
                    new_stmts.extend([lock, stmt, unlock])
                    changed = True
                closure.body.stmts = new_stmts
        self.ensure_import(clone, "sync")
        return clone.render() if changed else None

    def _declares_name(self, func: ast.FuncDecl, name: str) -> bool:
        return self.declared_in_function(func, name)

    def _insert_mutex_decl(self, func: ast.FuncDecl, after_variable: str,
                           mutex_name: str) -> bool:
        decl_stmt = ast.DeclStmt(
            decl=ast.GenDecl(
                tok="var",
                specs=[ast.ValueSpec(names=[mutex_name], type_=ast.selector("sync.Mutex"))],
            )
        )
        for index, stmt in enumerate(func.body.stmts):
            declares = False
            if isinstance(stmt, ast.AssignStmt) and stmt.tok == ":=":
                declares = any(
                    isinstance(t, ast.Ident) and t.name == after_variable for t in stmt.lhs
                )
            elif isinstance(stmt, ast.DeclStmt):
                declares = any(
                    isinstance(spec, ast.ValueSpec) and after_variable in spec.names
                    for spec in stmt.decl.specs
                )
            if declares:
                func.body.stmts.insert(index + 1, decl_stmt)
                return True
        func.body.stmts.insert(0, decl_stmt)
        return True


@fix_pattern(
    categories=(RaceCategory.MISSING_SYNCHRONIZATION,),
    specificity=75,
    example_rank=150,
    description="Managing locks consistently across multiple code regions",
    signature=examples.added_lock_calls,
)
class CompleteLockingStrategy(FixStrategy):
    """Listings 30-32: the type already has a mutex, but some accesses to the
    shared field bypass it; hoist the unguarded reads under the lock."""

    name = "complete_locking"

    def detect(self, task: FixTask, scope: ScopeCode) -> Optional[StrategyPlan]:
        target = task.racy_variable
        if not target:
            return None
        spec = self.find_struct(scope, target)
        if spec is None:
            return None
        mutex_field = self.has_mutex_field(spec)
        if mutex_field is None:
            return None
        unguarded = []
        for decl in self.methods_of(scope, spec.name):
            if self._touches_unguarded(decl, target, mutex_field):
                unguarded.append(decl.name)
        if not unguarded:
            return None
        return StrategyPlan(
            strategy=self.name,
            data={"type": spec.name, "field": target, "mutex": mutex_field,
                  "methods": unguarded},
        )

    def _touches_unguarded(self, decl: ast.FuncDecl, field_name: str, mutex_field: str) -> bool:
        receiver = self.receiver_name(decl)
        if not receiver or decl.body is None:
            return False
        return bool(self._unguarded_statements(decl, field_name, mutex_field))

    def _unguarded_statements(self, decl: ast.FuncDecl, field_name: str,
                              mutex_field: str) -> List[ast.Stmt]:
        """Top-level statements of ``decl`` that touch the field while the
        method's mutex is not held (tracked linearly through Lock/Unlock calls)."""
        receiver = self.receiver_name(decl)
        unguarded: List[ast.Stmt] = []
        lock_held = False
        for stmt in decl.body.stmts:
            if self._is_lock_call(stmt, receiver, mutex_field, "Lock"):
                lock_held = True
                continue
            if self._is_lock_call(stmt, receiver, mutex_field, "Unlock"):
                lock_held = False
                continue
            if isinstance(stmt, ast.DeferStmt) and self.stmt_contains_call(stmt, "Unlock"):
                continue
            touches = any(
                isinstance(node, ast.SelectorExpr) and node.sel == field_name
                and ast.base_name(node) == receiver
                for node in ast.walk(stmt)
            )
            if not touches or lock_held:
                continue
            if isinstance(stmt, ast.IfStmt):
                cond_touch = any(
                    isinstance(node, ast.SelectorExpr) and node.sel == field_name
                    for node in ast.walk(stmt.cond)
                )
                if cond_touch:
                    unguarded.append(stmt)
                continue
            if self.stmt_contains_call(stmt, "Lock"):
                continue
            unguarded.append(stmt)
        return unguarded

    @staticmethod
    def _is_lock_call(stmt: ast.Stmt, receiver: str, mutex_field: str, method: str) -> bool:
        if not isinstance(stmt, ast.ExprStmt) or not isinstance(stmt.x, ast.CallExpr):
            return False
        fun = stmt.x.fun
        return (
            isinstance(fun, ast.SelectorExpr)
            and fun.sel == method
            and isinstance(fun.x, ast.SelectorExpr)
            and fun.x.sel == mutex_field
            and ast.base_name(fun.x) == receiver
        )

    def apply(self, task: FixTask, scope: ScopeCode, plan: StrategyPlan) -> Optional[str]:
        clone = self.clone_scope(scope)
        field_name = plan.data["field"]
        mutex_field = plan.data["mutex"]
        changed = False
        for decl in self.methods_of(clone, plan.data["type"]):
            if decl.name not in plan.data["methods"]:
                continue
            receiver = self.receiver_name(decl)
            targets = set(map(id, self._unguarded_statements(decl, field_name, mutex_field)))
            new_stmts: List[ast.Stmt] = []
            for stmt in decl.body.stmts:
                if id(stmt) not in targets:
                    new_stmts.append(stmt)
                    continue
                if isinstance(stmt, ast.IfStmt) and self._cond_reads_field(stmt, receiver, field_name):
                    local_name = field_name + "Snapshot"
                    lock, unlock = self.make_lock_pair(receiver, mutex_field)
                    snapshot = ast.AssignStmt(
                        lhs=[ast.ident(local_name)],
                        tok=":=",
                        rhs=[ast.SelectorExpr(x=ast.ident(receiver), sel=field_name)],
                    )
                    self._replace_cond_field(stmt, receiver, field_name, local_name)
                    new_stmts.extend([lock, snapshot, unlock, stmt])
                    changed = True
                    continue
                lock, unlock = self.make_lock_pair(receiver, mutex_field)
                new_stmts.extend([lock, stmt, unlock])
                changed = True
            decl.body.stmts = new_stmts
        return clone.render() if changed else None

    def _cond_reads_field(self, stmt: ast.IfStmt, receiver: str, field_name: str) -> bool:
        return any(
            isinstance(node, ast.SelectorExpr) and node.sel == field_name
            and ast.base_name(node) == receiver
            for node in ast.walk(stmt.cond)
        )

    def _replace_cond_field(self, stmt: ast.IfStmt, receiver: str, field_name: str,
                            local_name: str) -> None:
        def replace(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.SelectorExpr) and expr.sel == field_name \
                    and ast.base_name(expr) == receiver:
                return ast.ident(local_name)
            return expr

        cond = stmt.cond
        if isinstance(cond, ast.SelectorExpr):
            stmt.cond = replace(cond)
            return
        for node in ast.walk(cond):
            for attr in ("x", "y"):
                child = getattr(node, attr, None)
                if isinstance(child, ast.SelectorExpr) and child.sel == field_name \
                        and ast.base_name(child) == receiver:
                    setattr(node, attr, ast.ident(local_name))
