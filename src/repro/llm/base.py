"""Model-facing interfaces: chat messages, responses, and the client protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, runtime_checkable


@dataclass(frozen=True)
class ChatMessage:
    """One chat message, mirroring the OpenAI chat format used in Appendix E."""

    role: str  # "system" | "user" | "assistant"
    content: str


@dataclass
class ModelResponse:
    """The model's reply plus bookkeeping the evaluation inspects."""

    content: str
    model: str = ""
    #: Which fix strategy the (simulated) model applied, if any.
    strategy: str = ""
    #: True when the model used the retrieved example to pick the strategy.
    guided_by_example: bool = False
    #: True when the model reports it could not produce a meaningful change.
    refused: bool = False
    #: Free-form diagnostics (used by tests and the failure analysis).
    notes: List[str] = field(default_factory=list)


@runtime_checkable
class LLMClient(Protocol):
    """What the Dr.Fix orchestration needs from a model.

    A production deployment would implement this with an API-backed client;
    the reproduction provides :class:`repro.llm.simulated.SimulatedLLM`.
    """

    name: str

    def complete(self, messages: List[ChatMessage]) -> ModelResponse:
        """Produce a completion for a chat prompt."""
        ...  # pragma: no cover - protocol definition
