"""Goroutine bookkeeping for the cooperative scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

StackFrameTuple = Tuple[str, str, int]  # (function, file, line)


class GoroutineState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass(slots=True)
class Frame:
    """An interpreter call-stack frame."""

    func_name: str
    file: str
    line: int = 0
    #: Deferred ``(callee, args)`` pairs, LIFO.  ``None`` until the first
    #: ``defer`` — most frames never defer, so the list is lazy (see
    #: :meth:`push_deferred`).
    deferred: Optional[List[Any]] = None

    def snapshot(self) -> StackFrameTuple:
        return (self.func_name, self.file, self.line)

    def push_deferred(self, entry: Any) -> None:
        if self.deferred is None:
            self.deferred = [entry]
        else:
            self.deferred.append(entry)


@dataclass(slots=True)
class SchedulePoint:
    """A value yielded by interpreter coroutines to the scheduler.

    ``kind`` is ``"step"`` for a plain preemption point or ``"block"`` when the
    goroutine cannot make progress; in the latter case ``predicate`` tells the
    scheduler when the goroutine becomes runnable again and ``reason`` is used
    for deadlock diagnostics.
    """

    kind: str = "step"
    predicate: Optional[Callable[[], bool]] = None
    reason: str = ""


STEP = SchedulePoint(kind="step")


def blocked(predicate: Callable[[], bool], reason: str) -> SchedulePoint:
    return SchedulePoint(kind="block", predicate=predicate, reason=reason)


@dataclass(slots=True)
class Goroutine:
    """One logical Go thread of execution."""

    gid: int
    name: str = "main"
    parent_gid: Optional[int] = None
    creation_stack: Tuple[StackFrameTuple, ...] = ()
    state: GoroutineState = GoroutineState.RUNNABLE
    generator: Optional[Generator[SchedulePoint, None, Any]] = None
    stack: List[Frame] = field(default_factory=list)
    block_point: Optional[SchedulePoint] = None
    failure: Optional[BaseException] = None
    result: Any = None
    steps: int = 0
    #: Memoized snapshots (see :meth:`stack_snapshot`).  ``_parents`` caches
    #: the snapshot tuples of every non-leaf frame — those frames' lines are
    #: frozen while a call is in flight, so the cache is invalidated only by
    #: :meth:`push_frame`/:meth:`pop_frame`.  ``_snap``/``_snap_line`` cache
    #: the full snapshot for repeated accesses at the same leaf line (the
    #: common case: consecutive memory accesses of one statement).
    _parents: Optional[Tuple[StackFrameTuple, ...]] = field(
        default=None, repr=False, compare=False)
    _snap: Optional[Tuple[StackFrameTuple, ...]] = field(
        default=None, repr=False, compare=False)
    _snap_line: int = field(default=-1, repr=False, compare=False)
    _snap_file: str = field(default="", repr=False, compare=False)

    # -- call-stack maintenance -----------------------------------------------------------

    def push_frame(self, frame: Frame) -> None:
        self.stack.append(frame)
        self._parents = None
        self._snap = None

    def pop_frame(self) -> Frame:
        frame = self.stack.pop()
        self._parents = None
        self._snap = None
        return frame

    def stack_snapshot(self, leaf_line: int | None = None) -> Tuple[StackFrameTuple, ...]:
        """Return the current call stack, leaf frame first."""
        stack = self.stack
        if not stack:
            return ()
        leaf = stack[-1]
        line = leaf_line if leaf_line else leaf.line
        parents = self._parents
        if (parents is not None and self._snap is not None
                and self._snap_line == line and self._snap_file == leaf.file):
            return self._snap
        if parents is None:
            parents = tuple(frame.snapshot() for frame in stack[-2::-1])
            self._parents = parents
        snap = ((leaf.func_name, leaf.file, line),) + parents
        self._snap = snap
        self._snap_line = line
        self._snap_file = leaf.file
        return snap

    @property
    def is_live(self) -> bool:
        return self.state in (GoroutineState.RUNNABLE, GoroutineState.BLOCKED)

    def describe(self) -> str:
        return f"goroutine {self.gid} [{self.name}] ({self.state.value})"
