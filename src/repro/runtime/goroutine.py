"""Goroutine bookkeeping for the cooperative scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

StackFrameTuple = Tuple[str, str, int]  # (function, file, line)


class GoroutineState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Frame:
    """An interpreter call-stack frame."""

    func_name: str
    file: str
    line: int = 0
    deferred: List[Any] = field(default_factory=list)

    def snapshot(self) -> StackFrameTuple:
        return (self.func_name, self.file, self.line)


@dataclass
class SchedulePoint:
    """A value yielded by interpreter coroutines to the scheduler.

    ``kind`` is ``"step"`` for a plain preemption point or ``"block"`` when the
    goroutine cannot make progress; in the latter case ``predicate`` tells the
    scheduler when the goroutine becomes runnable again and ``reason`` is used
    for deadlock diagnostics.
    """

    kind: str = "step"
    predicate: Optional[Callable[[], bool]] = None
    reason: str = ""


STEP = SchedulePoint(kind="step")


def blocked(predicate: Callable[[], bool], reason: str) -> SchedulePoint:
    return SchedulePoint(kind="block", predicate=predicate, reason=reason)


@dataclass
class Goroutine:
    """One logical Go thread of execution."""

    gid: int
    name: str = "main"
    parent_gid: Optional[int] = None
    creation_stack: Tuple[StackFrameTuple, ...] = ()
    state: GoroutineState = GoroutineState.RUNNABLE
    generator: Optional[Generator[SchedulePoint, None, Any]] = None
    stack: List[Frame] = field(default_factory=list)
    block_point: Optional[SchedulePoint] = None
    failure: Optional[BaseException] = None
    result: Any = None
    steps: int = 0

    def stack_snapshot(self, leaf_line: int | None = None) -> Tuple[StackFrameTuple, ...]:
        """Return the current call stack, leaf frame first."""
        frames = [frame.snapshot() for frame in reversed(self.stack)]
        if frames and leaf_line:
            func, file, _ = frames[0]
            frames[0] = (func, file, leaf_line)
        return tuple(frames)

    @property
    def is_live(self) -> bool:
        return self.state in (GoroutineState.RUNNABLE, GoroutineState.BLOCKED)

    def describe(self) -> str:
        return f"goroutine {self.gid} [{self.name}] ({self.state.value})"
