"""ThreadSanitizer-format data-race reports: rendering, parsing, and hashing.

The Go race detector prints reports of the form::

    WARNING: DATA RACE
    Write at 0x00c0000b4010 by goroutine 7:
      mypkg.SomeFunction.func1()
          /path/service/handler.go:15 +0x44
      ...
    Previous write at 0x00c0000b4010 by goroutine 6:
      mypkg.SomeFunction()
          /path/service/handler.go:23 +0x88
    Goroutine 7 (running) created at:
      mypkg.SomeFunction()
          /path/service/handler.go:12

Dr.Fix's frontend consumes such reports (Section 4.2).  This module produces
them from detector :class:`~repro.runtime.race_detector.RaceRecord` objects,
parses them back into structured :class:`RaceReport` values, and computes the
*stable bug hash* from the function names in both stacks, which the validator
uses to decide whether the targeted race is gone (Section 4.4.1).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.runtime.race_detector import AccessRecord, RaceRecord


@dataclass(frozen=True)
class StackFrame:
    """One frame of a goroutine stack trace."""

    function: str
    file: str
    line: int

    def render(self) -> str:
        return f"  {self.function}()\n      {self.file}:{self.line} +0x0"


@dataclass
class GoroutineTrace:
    """One racing access: goroutine id, access kind, and its stack."""

    goroutine_id: int
    is_write: bool
    frames: List[StackFrame] = field(default_factory=list)
    creation_frames: List[StackFrame] = field(default_factory=list)

    @property
    def leaf(self) -> Optional[StackFrame]:
        return self.frames[0] if self.frames else None

    @property
    def root(self) -> Optional[StackFrame]:
        return self.frames[-1] if self.frames else None


@dataclass
class RaceReport:
    """A structured data-race report (two unordered conflicting accesses)."""

    first: GoroutineTrace
    second: GoroutineTrace
    variable: str = ""
    address: int = 0
    package: str = ""

    # -- identity -----------------------------------------------------------------------

    def bug_hash(self) -> str:
        """A stable hash derived from the function names in both stacks.

        Per Section 4.2 of the paper, the hash intentionally ignores line
        numbers and addresses so that a fix that moves code (but leaves the
        racing functions present) still maps to the same bug, and reports for
        the same root cause observed in different runs coincide.
        """
        names = sorted(
            [
                "|".join(frame.function for frame in self.first.frames),
                "|".join(frame.function for frame in self.second.frames),
            ]
        )
        digest = hashlib.sha256(("\n".join(names) + "\n" + self.variable).encode("utf-8"))
        return digest.hexdigest()[:16]

    def involved_functions(self) -> List[str]:
        seen: List[str] = []
        for trace in (self.first, self.second):
            for frame in trace.frames + trace.creation_frames:
                if frame.function not in seen:
                    seen.append(frame.function)
        return seen

    def involved_files(self) -> List[str]:
        seen: List[str] = []
        for trace in (self.first, self.second):
            for frame in trace.frames + trace.creation_frames:
                if frame.file not in seen:
                    seen.append(frame.file)
        return seen

    def racy_lines(self, file: str | None = None) -> List[int]:
        lines = []
        for trace in (self.first, self.second):
            leaf = trace.leaf
            if leaf is not None and (file is None or leaf.file == file):
                lines.append(leaf.line)
        return lines

    # -- rendering ----------------------------------------------------------------------

    def render(self) -> str:
        lines = ["WARNING: DATA RACE"]
        lines.append(self._render_access(self.second, previous=False))
        lines.append(self._render_access(self.first, previous=True))
        for trace in (self.second, self.first):
            if trace.creation_frames:
                lines.append(f"Goroutine {trace.goroutine_id} (running) created at:")
                lines.extend(frame.render() for frame in trace.creation_frames)
        lines.append("==================")
        return "\n".join(lines)

    def _render_access(self, trace: GoroutineTrace, previous: bool) -> str:
        kind = "write" if trace.is_write else "read"
        prefix = "Previous " + kind if previous else kind.capitalize()
        header = (
            f"{prefix} at 0x{self.address:012x} by goroutine {trace.goroutine_id}:"
        )
        body = "\n".join(frame.render() for frame in trace.frames)
        return f"{header}\n{body}"


# ---------------------------------------------------------------------------
# Construction from detector records
# ---------------------------------------------------------------------------


def _trace_from_record(record: AccessRecord) -> GoroutineTrace:
    frames = [StackFrame(function=f, file=file, line=line) for f, file, line in record.stack]
    creation = [
        StackFrame(function=f, file=file, line=line) for f, file, line in record.creation_stack
    ]
    return GoroutineTrace(
        goroutine_id=record.goroutine_id,
        is_write=record.is_write,
        frames=frames,
        creation_frames=creation,
    )


def report_from_race(record: RaceRecord, package: str = "") -> RaceReport:
    """Build a :class:`RaceReport` from a detector :class:`RaceRecord`."""
    return RaceReport(
        first=_trace_from_record(record.previous),
        second=_trace_from_record(record.current),
        variable=record.variable,
        address=record.current.address,
        package=package,
    )


# ---------------------------------------------------------------------------
# Parsing (round-trip of the textual format)
# ---------------------------------------------------------------------------

_ACCESS_RE = re.compile(
    r"^(Previous )?(read|write|Read|Write) at 0x(?P<addr>[0-9a-f]+) by goroutine (?P<gid>\d+):",
)
_FRAME_FUNC_RE = re.compile(r"^  (?P<func>.+)\(\)$")
_FRAME_LOC_RE = re.compile(r"^      (?P<file>.+):(?P<line>\d+)( \+0x[0-9a-f]+)?$")
_CREATED_RE = re.compile(r"^Goroutine (?P<gid>\d+) \((running|finished)\) created at:")


def parse_report(text: str) -> RaceReport:
    """Parse a ThreadSanitizer-format report produced by :meth:`RaceReport.render`.

    Only the structure Dr.Fix consumes is recovered: access kinds, goroutine
    ids, stack frames, and goroutine creation frames.
    """
    lines = text.splitlines()
    traces: List[GoroutineTrace] = []
    creation_map: dict[int, List[StackFrame]] = {}
    address = 0
    index = 0
    current_frames: Optional[List[StackFrame]] = None
    pending_func: Optional[str] = None

    def flush_pending() -> None:
        nonlocal pending_func
        pending_func = None

    while index < len(lines):
        line = lines[index]
        access_match = _ACCESS_RE.match(line)
        created_match = _CREATED_RE.match(line)
        if access_match:
            flush_pending()
            address = int(access_match.group("addr"), 16)
            trace = GoroutineTrace(
                goroutine_id=int(access_match.group("gid")),
                is_write="write" in access_match.group(2).lower(),
            )
            traces.append(trace)
            current_frames = trace.frames
        elif created_match:
            flush_pending()
            gid = int(created_match.group("gid"))
            creation_map[gid] = []
            current_frames = creation_map[gid]
        else:
            func_match = _FRAME_FUNC_RE.match(line)
            loc_match = _FRAME_LOC_RE.match(line)
            if func_match:
                pending_func = func_match.group("func")
            elif loc_match and pending_func is not None and current_frames is not None:
                current_frames.append(
                    StackFrame(
                        function=pending_func,
                        file=loc_match.group("file"),
                        line=int(loc_match.group("line")),
                    )
                )
                pending_func = None
        index += 1

    if len(traces) < 2:
        raise ValueError("race report does not contain two access stacks")
    for trace in traces:
        trace.creation_frames = creation_map.get(trace.goroutine_id, [])
    # render() prints the *current* access first and the previous one second;
    # reconstruct the original (first=previous, second=current) order.
    second, first = traces[0], traces[1]
    return RaceReport(first=first, second=second, address=address)


def merge_reports(reports: Sequence[RaceReport]) -> List[RaceReport]:
    """Deduplicate reports by bug hash, preserving first occurrence order."""
    seen: dict[str, RaceReport] = {}
    for report in reports:
        seen.setdefault(report.bug_hash(), report)
    return list(seen.values())


def call_paths(report: RaceReport) -> Tuple[List[str], List[str]]:
    """Root-first call paths of the two racing goroutines (for LCA analysis)."""
    first = [frame.function for frame in reversed(report.first.frames)]
    second = [frame.function for frame in reversed(report.second.frames)]
    return first, second
