"""Runtime objects for the ``sync`` package: Mutex, RWMutex, WaitGroup,
sync.Map, and Once.

Each primitive owns a :class:`~repro.runtime.vector_clock.SyncVar` so that the
detector can establish the happens-before edges the Go memory model
guarantees (unlock → subsequent lock, ``Done`` → ``Wait`` return, etc.).  The
interpreter performs the blocking (via scheduler predicates); these classes
only hold state and answer readiness questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import GoRuntimeError
from repro.runtime.vector_clock import SyncVar


@dataclass
class Mutex:
    """``sync.Mutex``."""

    locked: bool = False
    owner: Optional[int] = None
    sync: SyncVar = field(default_factory=SyncVar)

    def can_lock(self) -> bool:
        return not self.locked

    def lock(self, tid: int) -> None:
        if self.locked:
            raise AssertionError("lock() called while mutex is held")
        self.locked = True
        self.owner = tid

    def unlock(self) -> None:
        if not self.locked:
            raise GoRuntimeError("sync: unlock of unlocked mutex")
        self.locked = False
        self.owner = None


@dataclass
class RWMutex:
    """``sync.RWMutex`` — a writer excludes readers and other writers."""

    readers: int = 0
    writer: bool = False
    writer_owner: Optional[int] = None
    sync: SyncVar = field(default_factory=SyncVar)

    def can_lock(self) -> bool:
        return not self.writer and self.readers == 0

    def lock(self, tid: int) -> None:
        self.writer = True
        self.writer_owner = tid

    def unlock(self) -> None:
        if not self.writer:
            raise GoRuntimeError("sync: Unlock of unlocked RWMutex")
        self.writer = False
        self.writer_owner = None

    def can_rlock(self) -> bool:
        return not self.writer

    def rlock(self) -> None:
        self.readers += 1

    def runlock(self) -> None:
        if self.readers <= 0:
            raise GoRuntimeError("sync: RUnlock of unlocked RWMutex")
        self.readers -= 1


@dataclass
class WaitGroup:
    """``sync.WaitGroup``.

    ``Add`` carries no happens-before edge; ``Done`` releases into the group's
    clock and a ``Wait`` that observes the counter reach zero acquires it.
    This faithfully reproduces the "``Add`` placed inside the goroutine"
    mis-synchronization from Listing 6: if the parent reaches ``Wait`` before
    any child executed ``Add`` the counter is already zero and ``Wait`` returns
    without ordering the parent after the children.
    """

    counter: int = 0
    sync: SyncVar = field(default_factory=SyncVar)

    def add(self, delta: int) -> None:
        self.counter += delta
        if self.counter < 0:
            raise GoRuntimeError("sync: negative WaitGroup counter")

    def done(self) -> None:
        self.add(-1)

    def ready(self) -> bool:
        return self.counter <= 0


@dataclass
class SyncMap:
    """``sync.Map`` — internally synchronized; accesses never race."""

    entries: Dict[Any, Any] = field(default_factory=dict)
    sync: SyncVar = field(default_factory=SyncVar)

    def load(self, key: Any) -> tuple[Any, bool]:
        if key in self.entries:
            return self.entries[key], True
        return None, False

    def store(self, key: Any, value: Any) -> None:
        self.entries[key] = value

    def load_or_store(self, key: Any, value: Any) -> tuple[Any, bool]:
        if key in self.entries:
            return self.entries[key], True
        self.entries[key] = value
        return value, False

    def delete(self, key: Any) -> None:
        self.entries.pop(key, None)

    def snapshot(self) -> list[tuple[Any, Any]]:
        """Items for ``Range`` iteration (copied, like sync.Map's semantics)."""
        return list(self.entries.items())


@dataclass
class Once:
    """``sync.Once``."""

    done: bool = False
    running: bool = False
    sync: SyncVar = field(default_factory=SyncVar)

    def can_enter(self) -> bool:
        return not self.running

    def should_run(self) -> bool:
        return not self.done


def is_sync_object(value: Any) -> bool:
    """True for any runtime object from this module (used by value copy logic)."""
    return isinstance(value, (Mutex, RWMutex, WaitGroup, SyncMap, Once))
