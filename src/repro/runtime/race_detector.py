"""FastTrack-style dynamic happens-before race detection.

The detector mirrors the algorithm used by ThreadSanitizer/FastTrack
(Flanagan & Freund, PLDI 2009) at the granularity the interpreter needs:

* every goroutine ``t`` carries a vector clock ``C_t``;
* every synchronization object (mutex, channel, WaitGroup, atomic cell)
  carries a clock that is joined on release/acquire edges;
* every memory cell records the epoch of its last write and the clock of
  reads since that write;
* an access races with a previous access when the previous access's epoch is
  not ordered before the current goroutine's clock.

On detecting a race the detector records a :class:`RaceRecord` with both
access snapshots (goroutine id, read/write, call stack) which the harness then
renders as a ThreadSanitizer-format report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.memory import Cell
from repro.runtime.vector_clock import Epoch, SyncVar, VectorClock


@dataclass
class AccessRecord:
    """A snapshot of one memory access, retained for race reporting."""

    goroutine_id: int
    is_write: bool
    stack: Tuple[Tuple[str, str, int], ...]  # (function, file, line) frames, leaf first
    variable: str
    address: int
    creation_stack: Tuple[Tuple[str, str, int], ...] = ()


@dataclass
class RaceRecord:
    """Two conflicting, unordered accesses to the same location."""

    current: AccessRecord
    previous: AccessRecord

    @property
    def variable(self) -> str:
        return self.current.variable or self.previous.variable

    def key(self) -> Tuple[str, ...]:
        """A coarse dedup key: the leaf frames of both stacks plus the variable."""
        cur = self.current.stack[0] if self.current.stack else ("?", "?", 0)
        prev = self.previous.stack[0] if self.previous.stack else ("?", "?", 0)
        frames = sorted([f"{cur[0]}:{cur[2]}", f"{prev[0]}:{prev[2]}"])
        return (self.variable, *frames)


@dataclass
class _LocationState:
    """Per-cell detector metadata."""

    write_epoch: Optional[Epoch] = None
    write_record: Optional[AccessRecord] = None
    read_clock: VectorClock = field(default_factory=VectorClock)
    read_records: Dict[int, AccessRecord] = field(default_factory=dict)


class RaceDetector:
    """Tracks happens-before and flags conflicting unordered accesses."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.races: List[RaceRecord] = []
        self._thread_clocks: Dict[int, VectorClock] = {}
        self._locations: Dict[int, _LocationState] = {}
        self._reported_keys: set[Tuple[str, ...]] = set()

    # ------------------------------------------------------------------
    # Goroutine lifecycle
    # ------------------------------------------------------------------

    def register_goroutine(self, tid: int) -> None:
        if tid not in self._thread_clocks:
            clock = VectorClock()
            clock.increment(tid)
            self._thread_clocks[tid] = clock

    def clock_of(self, tid: int) -> VectorClock:
        self.register_goroutine(tid)
        return self._thread_clocks[tid]

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        """``go`` statement: the child inherits the parent's knowledge."""
        parent = self.clock_of(parent_tid)
        child = self.clock_of(child_tid)
        child.join(parent)
        child.increment(child_tid)
        parent.increment(parent_tid)

    def on_join(self, waiter_tid: int, finished_tid: int) -> None:
        """A join edge (e.g. WaitGroup.Wait observing a goroutine's Done)."""
        waiter = self.clock_of(waiter_tid)
        finished = self.clock_of(finished_tid)
        waiter.join(finished)
        waiter.increment(waiter_tid)

    # ------------------------------------------------------------------
    # Synchronization objects
    # ------------------------------------------------------------------

    def on_release(self, tid: int, sync: SyncVar) -> None:
        """Unlock / channel send / WaitGroup.Done / atomic store."""
        clock = self.clock_of(tid)
        sync.release(clock)
        clock.increment(tid)

    def on_acquire(self, tid: int, sync: SyncVar) -> None:
        """Lock / channel receive / WaitGroup.Wait return / atomic load."""
        clock = self.clock_of(tid)
        sync.acquire(clock)

    # ------------------------------------------------------------------
    # Memory accesses
    # ------------------------------------------------------------------

    def _state_for(self, cell: Cell) -> _LocationState:
        state = self._locations.get(cell.address)
        if state is None:
            state = _LocationState()
            self._locations[cell.address] = state
        return state

    def _record(self, race: RaceRecord) -> None:
        key = race.key()
        if key in self._reported_keys:
            return
        self._reported_keys.add(key)
        self.races.append(race)

    def on_read(self, tid: int, cell: Cell, record: AccessRecord) -> None:
        if not self.enabled or cell.synchronized:
            return
        clock = self.clock_of(tid)
        state = self._state_for(cell)
        if state.write_epoch is not None and state.write_epoch.tid != tid:
            if not state.write_epoch.happens_before(clock):
                assert state.write_record is not None
                self._record(RaceRecord(current=record, previous=state.write_record))
        state.read_clock.set(tid, clock.get(tid))
        state.read_records[tid] = record

    def on_write(self, tid: int, cell: Cell, record: AccessRecord) -> None:
        if not self.enabled or cell.synchronized:
            return
        clock = self.clock_of(tid)
        state = self._state_for(cell)
        if state.write_epoch is not None and state.write_epoch.tid != tid:
            if not state.write_epoch.happens_before(clock):
                assert state.write_record is not None
                self._record(RaceRecord(current=record, previous=state.write_record))
        for reader_tid, read_record in list(state.read_records.items()):
            if reader_tid == tid:
                continue
            read_epoch = Epoch(reader_tid, state.read_clock.get(reader_tid))
            if not read_epoch.happens_before(clock):
                self._record(RaceRecord(current=record, previous=read_record))
        state.write_epoch = clock.epoch(tid)
        state.write_record = record
        state.read_clock = VectorClock()
        state.read_records = {}

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def has_races(self) -> bool:
        return bool(self.races)

    def reset(self) -> None:
        self.races.clear()
        self._locations.clear()
        self._thread_clocks.clear()
        self._reported_keys.clear()
