"""FastTrack dynamic happens-before race detection.

The detector implements the FastTrack protocol (Flanagan & Freund, PLDI 2009)
at the granularity the interpreter needs:

* every goroutine ``t`` carries a vector clock ``C_t``;
* every synchronization object (mutex, channel, WaitGroup, atomic cell)
  carries a clock that is joined on release/acquire edges;
* every memory cell records the *epoch* of its last write (a single
  ``(tid, clock)`` pair, not a full vector clock) and an **adaptive read
  state**: a single read epoch while one goroutine is reading, promoted to a
  per-goroutine read map only when concurrent readers appear and demoted back
  on the next write — FastTrack's read-share/read-exclusive transitions;
* an access races with a previous access when the previous access's epoch is
  not ordered before the current goroutine's clock.

Fast paths mirror FastTrack's: a repeated read by the owning goroutine updates
the read epoch in place (no dict or clock allocation), and a write updates the
write epoch in place (no ``Epoch``/``VectorClock`` objects are allocated per
access, and clearing the read state never copies records).  One deliberate
deviation from the letter of the paper keeps the engine bit-identical to the
reference tree-walk: access *records* (stack snapshots used for ThreadSanitizer
-style reports) are refreshed even on same-epoch accesses, because a later
race must report the most recent conflicting source line, exactly as the
pre-FastTrack detector did.

On detecting a race the detector records a :class:`RaceRecord` with both
access snapshots (goroutine id, read/write, call stack) which the harness then
renders as a ThreadSanitizer-format report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.memory import Cell
from repro.runtime.vector_clock import Epoch, SyncVar, VectorClock


@dataclass(slots=True)
class AccessRecord:
    """A snapshot of one memory access, retained for race reporting."""

    goroutine_id: int
    is_write: bool
    stack: Tuple[Tuple[str, str, int], ...]  # (function, file, line) frames, leaf first
    variable: str
    address: int
    creation_stack: Tuple[Tuple[str, str, int], ...] = ()


@dataclass
class RaceRecord:
    """Two conflicting, unordered accesses to the same location."""

    current: AccessRecord
    previous: AccessRecord

    @property
    def variable(self) -> str:
        return self.current.variable or self.previous.variable

    def key(self) -> Tuple[str, ...]:
        """A coarse dedup key: the leaf frames of both stacks plus the variable."""
        cur = self.current.stack[0] if self.current.stack else ("?", "?", 0)
        prev = self.previous.stack[0] if self.previous.stack else ("?", "?", 0)
        frames = sorted([f"{cur[0]}:{cur[2]}", f"{prev[0]}:{prev[2]}"])
        return (self.variable, *frames)


#: Sync-event prefix hashes are snapshotted at power-of-two event depths;
#: this caps how many snapshots a very long run retains (2**24 events).
_MAX_PREFIX_DEPTHS = 24

#: ``read_tid`` sentinel: no reads since the last write.
_NO_READER = -1
#: ``read_tid`` sentinel: concurrent readers — the read state is the
#: ``read_clocks``/``read_records`` maps (FastTrack's read-shared mode).
_SHARED = -2


class _LocationState:
    """Per-cell detector metadata in FastTrack form.

    The write state is a bare epoch (two ints plus the report record).  The
    read state is adaptive: ``read_tid >= 0`` means a single goroutine has
    read since the last write and its epoch lives inline; ``_SHARED`` means
    concurrent readers promoted the state to per-goroutine maps.
    """

    __slots__ = (
        "write_tid", "write_clock", "write_record",
        "read_tid", "read_clock", "read_record",
        "read_clocks", "read_records",
    )

    def __init__(self) -> None:
        self.write_tid = _NO_READER
        self.write_clock = 0
        self.write_record: Optional[AccessRecord] = None
        self.read_tid = _NO_READER
        self.read_clock = 0
        self.read_record: Optional[AccessRecord] = None
        self.read_clocks: Optional[Dict[int, int]] = None
        self.read_records: Optional[Dict[int, AccessRecord]] = None

    # -- compatibility views (diagnostics/tests; not used on hot paths) ----------------

    @property
    def write_epoch(self) -> Optional[Epoch]:
        if self.write_tid < 0:
            return None
        return Epoch(self.write_tid, self.write_clock)


#: FNV-1a 64-bit parameters for the schedule-class trace hash.  Arithmetic
#: (not Python ``hash()``) so the value is stable across processes whatever
#: ``PYTHONHASHSEED`` the pool workers inherit.
_FNV_OFFSET = 14695981039346656037
_FNV_PRIME = 1099511628211
_FNV_MASK = (1 << 64) - 1

#: Chain tags (disjoint from the event kinds 1-4): a thread chain and a sync
#: chain with the same numeric key must contribute differently.
_THREAD_CHAIN = 5
_SYNC_CHAIN = 6
_PREFIX_TAG = 7
_VAR_CHAIN = 8

#: Access-event kinds for the per-variable chains (disjoint from the sync
#: event kinds 1-4 so a read can never alias a fork in a chain fold).
_READ_EVENT = 9
_WRITE_EVENT = 10


def _mix(tag: int, key: int, chain: int) -> int:
    """One chain's commutative contribution to the combined class hash."""
    h = _FNV_OFFSET
    for part in (tag, key, chain):
        h = ((h ^ part) * _FNV_PRIME) & _FNV_MASK
    return h


class RaceDetector:
    """Tracks happens-before and flags conflicting unordered accesses.

    Alongside the clocks, the detector folds every synchronization event
    (fork/join/release/acquire) **and every unsynchronized memory access**
    into a **schedule-class hash**.  The hash is a Mazurkiewicz-trace digest
    over the dependence alphabet race detection actually observes: each sync
    event is appended (order-sensitively) to the rolling chain of every
    *participant* it touches — the acting goroutine(s) and the
    synchronization object — each plain access is appended to the chain of
    the cell it touches, and the class hash combines the per-chain hashes
    commutatively (XOR of keyed contributions).  Two interleavings that
    merely commute **independent** events (no shared goroutine, no shared
    sync object, no shared cell) therefore hash identically, while
    reordering two events on the same chain — the reorderings that change
    happens-before or the reads-from relation — changes the hash.  The
    per-cell chains matter for soundness, not just precision: two
    interleavings with identical sync traces can still order conflicting
    accesses differently, and FastTrack then reports *different access
    pairs* — a class keyed on sync events alone would let the dedup layer
    substitute one run's reports for the other's.  Two runs with the same
    refined hash established the same happens-before edges *and* the same
    per-variable access orders, so their detection outcomes coincide; the
    schedule-class dedup layer (:mod:`repro.runtime.schedule_index`)
    memoizes outcomes by this hash.

    The detector also snapshots the combined hash at power-of-two event
    depths (:attr:`prefix_hashes`): a run whose every prefix was already seen
    replayed explored territory end to end — the conservative novelty signal
    the harness's saturation early-stop consumes."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.races: List[RaceRecord] = []
        self._thread_clocks: Dict[int, VectorClock] = {}
        self._locations: Dict[int, _LocationState] = {}
        self._reported_keys: set[Tuple[str, ...]] = set()
        self._combined_hash = _FNV_OFFSET
        self._thread_chains: Dict[int, int] = {}
        self._sync_chains: Dict[int, int] = {}
        self._var_chains: Dict[int, int] = {}
        #: Per-run cell numbering by first access: raw addresses advance
        #: monotonically across runs (the counter is process-global), so two
        #: executions of the same interleaving only hash identically when
        #: cells are named by appearance order, like sync objects below.
        self._var_ids: Dict[int, int] = {}
        self._event_count = 0
        self._next_prefix_depth = 1
        self._prefix_hashes: List[int] = []
        #: Per-run sync-object numbering: ``id(sync)`` is only stable while
        #: the object is alive, so each object is pinned for the run's
        #: duration and numbered by first appearance (deterministic across
        #: processes, unlike the raw id).
        self._sync_ids: Dict[int, int] = {}
        self._sync_pins: List[SyncVar] = []

    @property
    def schedule_class_hash(self) -> int:
        """The commutative digest over this run's synchronization chains."""
        return self._combined_hash

    @property
    def prefix_hashes(self) -> Tuple[int, ...]:
        """Class-hash snapshots at power-of-two sync-event depths."""
        return tuple(self._prefix_hashes)

    def _fold_chain(self, chains: Dict[int, int], tag: int, key: int,
                    kind: int, a: int, b: int) -> None:
        old = chains.get(key)
        h = _FNV_OFFSET if old is None else old
        for part in (kind, a, b):
            h = ((h ^ part) * _FNV_PRIME) & _FNV_MASK
        chains[key] = h
        combined = self._combined_hash
        if old is not None:
            combined ^= _mix(tag, key, old)
        self._combined_hash = combined ^ _mix(tag, key, h)

    def _note_event(self) -> None:
        self._event_count += 1
        if self._event_count == self._next_prefix_depth:
            if len(self._prefix_hashes) < _MAX_PREFIX_DEPTHS:
                self._prefix_hashes.append(
                    _mix(_PREFIX_TAG, self._event_count, self._combined_hash))
            self._next_prefix_depth <<= 1

    def _trace(self, kind: int, a: int, b: int) -> None:
        """A fork/join edge between goroutines ``a`` and ``b``."""
        self._fold_chain(self._thread_chains, _THREAD_CHAIN, a, kind, a, b)
        self._fold_chain(self._thread_chains, _THREAD_CHAIN, b, kind, a, b)
        self._note_event()

    def _trace_sync(self, kind: int, tid: int, sid: int) -> None:
        """A release/acquire edge between goroutine ``tid`` and sync ``sid``."""
        self._fold_chain(self._thread_chains, _THREAD_CHAIN, tid, kind, tid, sid)
        self._fold_chain(self._sync_chains, _SYNC_CHAIN, sid, kind, tid, sid)
        self._note_event()

    def _trace_access(self, kind: int, tid: int, address: int) -> None:
        """A plain read/write folded into the touched cell's chain.

        Accesses deliberately do not bump :meth:`_note_event`: prefix hashes
        stay snapshots at *sync-event* depths (the novelty signal the
        saturation early-stop consumes), though each snapshot digests the
        access chains folded so far."""
        vid = self._var_ids.get(address)
        if vid is None:
            vid = len(self._var_ids)
            self._var_ids[address] = vid
        self._fold_chain(self._var_chains, _VAR_CHAIN, vid, kind, tid, vid)

    def _sync_id(self, sync: SyncVar) -> int:
        key = id(sync)
        number = self._sync_ids.get(key)
        if number is None:
            number = len(self._sync_pins)
            self._sync_ids[key] = number
            self._sync_pins.append(sync)
        return number

    # ------------------------------------------------------------------
    # Goroutine lifecycle
    # ------------------------------------------------------------------

    def register_goroutine(self, tid: int) -> None:
        if tid not in self._thread_clocks:
            clock = VectorClock()
            clock.increment(tid)
            self._thread_clocks[tid] = clock

    def clock_of(self, tid: int) -> VectorClock:
        clock = self._thread_clocks.get(tid)
        if clock is None:
            self.register_goroutine(tid)
            clock = self._thread_clocks[tid]
        return clock

    def on_fork(self, parent_tid: int, child_tid: int) -> None:
        """``go`` statement: the child inherits the parent's knowledge."""
        self._trace(1, parent_tid, child_tid)
        parent = self.clock_of(parent_tid)
        child = self.clock_of(child_tid)
        child.join(parent)
        child.increment(child_tid)
        parent.increment(parent_tid)

    def on_join(self, waiter_tid: int, finished_tid: int) -> None:
        """A join edge (e.g. WaitGroup.Wait observing a goroutine's Done)."""
        self._trace(2, waiter_tid, finished_tid)
        waiter = self.clock_of(waiter_tid)
        finished = self.clock_of(finished_tid)
        waiter.join(finished)
        waiter.increment(waiter_tid)

    # ------------------------------------------------------------------
    # Synchronization objects
    # ------------------------------------------------------------------

    def on_release(self, tid: int, sync: SyncVar) -> None:
        """Unlock / channel send / WaitGroup.Done / atomic store."""
        self._trace_sync(3, tid, self._sync_id(sync))
        clock = self.clock_of(tid)
        sync.release(clock)
        clock.increment(tid)

    def on_acquire(self, tid: int, sync: SyncVar) -> None:
        """Lock / channel receive / WaitGroup.Wait return / atomic load."""
        self._trace_sync(4, tid, self._sync_id(sync))
        clock = self.clock_of(tid)
        sync.acquire(clock)

    # ------------------------------------------------------------------
    # Memory accesses
    # ------------------------------------------------------------------

    def _state_for(self, cell: Cell) -> _LocationState:
        state = self._locations.get(cell.address)
        if state is None:
            state = _LocationState()
            self._locations[cell.address] = state
        return state

    def _record(self, race: RaceRecord) -> None:
        key = race.key()
        if key in self._reported_keys:
            return
        self._reported_keys.add(key)
        self.races.append(race)

    def on_read(self, tid: int, cell: Cell, record: AccessRecord) -> None:
        if not self.enabled or cell.synchronized:
            return
        self._trace_access(_READ_EVENT, tid, cell.address)
        clock = self._thread_clocks.get(tid)
        if clock is None:
            clock = self.clock_of(tid)
        state = self._locations.get(cell.address)
        if state is None:
            state = _LocationState()
            self._locations[cell.address] = state
        clocks = clock._clocks
        write_tid = state.write_tid
        if write_tid >= 0 and write_tid != tid:
            # Write-read conflict check: the stored write epoch must be
            # ordered before this goroutine's clock.
            if state.write_clock > clocks.get(write_tid, 0):
                self._record(RaceRecord(current=record, previous=state.write_record))
        own = clocks.get(tid, 0)
        read_tid = state.read_tid
        if read_tid == tid:
            # Same-reader fast path: refresh the inline read epoch in place.
            state.read_clock = own
            state.read_record = record
        elif read_tid == _NO_READER:
            # Read-exclusive: this goroutine becomes the sole tracked reader.
            state.read_tid = tid
            state.read_clock = own
            state.read_record = record
        elif read_tid == _SHARED:
            state.read_clocks[tid] = own
            state.read_records[tid] = record
        else:
            # Second distinct reader since the last write: promote to the
            # read-shared maps (insertion order: prior reader first, which
            # preserves report ordering on a later racing write).
            state.read_clocks = {read_tid: state.read_clock, tid: own}
            state.read_records = {read_tid: state.read_record, tid: record}
            state.read_tid = _SHARED
            state.read_record = None

    def on_write(self, tid: int, cell: Cell, record: AccessRecord) -> None:
        if not self.enabled or cell.synchronized:
            return
        self._trace_access(_WRITE_EVENT, tid, cell.address)
        clock = self._thread_clocks.get(tid)
        if clock is None:
            clock = self.clock_of(tid)
        state = self._locations.get(cell.address)
        if state is None:
            state = _LocationState()
            self._locations[cell.address] = state
        clocks = clock._clocks
        write_tid = state.write_tid
        if write_tid >= 0 and write_tid != tid:
            if state.write_clock > clocks.get(write_tid, 0):
                self._record(RaceRecord(current=record, previous=state.write_record))
        read_tid = state.read_tid
        if read_tid != _NO_READER:
            if read_tid == _SHARED:
                # Write after read-shared: every reader epoch must be ordered
                # before this write.  Iterate in place (insertion order) —
                # the maps are dropped right after, so no defensive copy.
                read_clocks = state.read_clocks
                for reader_tid, read_record in state.read_records.items():
                    if reader_tid == tid:
                        continue
                    if read_clocks[reader_tid] > clocks.get(reader_tid, 0):
                        self._record(RaceRecord(current=record, previous=read_record))
                state.read_clocks = None
                state.read_records = None
            elif read_tid != tid:
                if state.read_clock > clocks.get(read_tid, 0):
                    self._record(RaceRecord(current=record, previous=state.read_record))
            # Demote to read-free (FastTrack's write-exclusive state).
            state.read_tid = _NO_READER
            state.read_record = None
        # Same-epoch write fast path: only the report record refreshes; the
        # epoch ints are written in place, no Epoch/VectorClock allocation.
        state.write_tid = tid
        state.write_clock = clocks.get(tid, 0)
        state.write_record = record

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def has_races(self) -> bool:
        return bool(self.races)

    def reset(self) -> None:
        self.races.clear()
        self._locations.clear()
        self._thread_clocks.clear()
        self._reported_keys.clear()
        self._combined_hash = _FNV_OFFSET
        self._thread_chains.clear()
        self._sync_chains.clear()
        self._var_chains.clear()
        self._var_ids.clear()
        self._event_count = 0
        self._next_prefix_depth = 1
        self._prefix_hashes.clear()
        self._sync_ids.clear()
        self._sync_pins.clear()
